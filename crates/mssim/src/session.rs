//! The unified entry point for running analyses.
//!
//! [`Session`] borrows a circuit once and exposes every analysis the
//! simulator knows — DC operating point, DC sweep, AC, noise and
//! transient — behind one builder. It owns the cross-cutting concerns the
//! free functions used to duplicate: lint pre-flight, stamp-plan
//! compilation, solver-flavour selection and observer registration
//! ([`Session::observe`]), so instrumentation configured once applies to
//! every analysis run through the session.
//!
//! ```
//! use mssim::prelude::*;
//!
//! # fn main() -> Result<(), mssim::Error> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
//! ckt.resistor("R1", vin, out, 1e3);
//! ckt.capacitor("C1", out, Circuit::GND, 1e-6);
//!
//! let mut session = Session::new(&ckt);
//! let op = session.dc_operating_point()?;
//! assert!((op.voltage(out) - 1.0).abs() < 1e-9);
//! let tran = Transient::new(1e-5, 10e-3).use_initial_conditions();
//! let result = session.transient(&tran)?;
//! assert!((result.voltage(out).last_value() - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

use crate::analysis::ac::{ac_analysis_impl, AcResult};
use crate::analysis::dcop::{dc_operating_point_opts, DcSolution};
use crate::analysis::dcsweep::{dc_sweep_impl, DcSweepResult};
use crate::analysis::noise::{noise_analysis_impl, NoiseResult};
use crate::analysis::plan::{DeviceEval, EngineSel};
use crate::analysis::{RescuePolicy, Transient, TransientOutcome, TransientResult};
use crate::analyze::{analyze_circuit, AnalyzeReport, Ranges};
use crate::error::Error;
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::telemetry::{dispatch, Event, Observer, Probe};
use crate::verify::{verify_circuit, VerifyReport};

pub use crate::analysis::plan::LimitOpts;

/// One circuit, every analysis: the unified analysis entry point.
///
/// A session borrows the circuit for `'c` and optionally an observer for
/// `'o`; each analysis method lints the netlist, compiles the solver for
/// the analysis, threads the observer through every instrumentation
/// point and returns the analysis result. The session is reusable — run
/// as many analyses through it as needed; each gets a fresh solver.
///
/// See the [crate-level quickstart](crate) and
/// [`telemetry`](crate::telemetry) for observer examples.
pub struct Session<'c, 'o> {
    circuit: &'c Circuit,
    observer: Option<&'o mut dyn Observer>,
    reference: bool,
    limited: bool,
    limit_opts: Option<LimitOpts>,
    dc_max_iter: Option<usize>,
}

impl<'c, 'o> Session<'c, 'o> {
    /// Starts a session on `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        Session {
            circuit,
            observer: None,
            reference: false,
            limited: false,
            limit_opts: None,
            dc_max_iter: None,
        }
    }

    /// Caps the Newton iteration budget of every DC solve run through
    /// this session (the default budget is 200 iterations per solve).
    ///
    /// Starving the budget forces the DC homotopy ladder to exercise its
    /// gmin and source-stepping fallback stages, which is useful for
    /// testing convergence telemetry and for probing how close a circuit
    /// sails to non-convergence.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_dc_max_iterations(mut self, n: usize) -> Self {
        assert!(n > 0, "DC iteration budget must be at least 1");
        self.dc_max_iter = Some(n);
        self
    }

    /// Attaches an [`Observer`] receiving counters, histograms and typed
    /// events from every analysis run through this session. With no
    /// observer attached instrumentation costs a single branch per Newton
    /// solve.
    pub fn observe(mut self, observer: &'o mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs every analysis on the naive per-iteration assembler instead
    /// of the compiled stamp plan. Kept for golden-equivalence tests and
    /// as the benchmark baseline; not part of the supported API.
    #[doc(hidden)]
    pub fn with_reference_solver(mut self, on: bool) -> Self {
        self.reference = on;
        self
    }

    /// Runs every analysis in this session with SPICE-style device
    /// limiting and latency on the compiled stamp plan: MOSFET trial
    /// voltages are clamped by the `fetlim`/`limvds` heuristics (taming
    /// Newton overshoot on large steps) and devices whose terminal
    /// voltages stayed inside a tolerance band with the operating region
    /// unchanged reuse their previous linearisation, keeping the
    /// factorization cache hot. Results agree with the default exact mode
    /// to solver tolerance (typically within microvolts) but are not
    /// bitwise identical; circuits without MOSFETs are unaffected.
    /// Ignored when the reference solver is selected.
    pub fn with_device_limiting(mut self, on: bool) -> Self {
        self.limited = on;
        self
    }

    /// [`with_device_limiting`](Self::with_device_limiting) with explicit
    /// latency bands instead of the shipped defaults. Test and tuning
    /// hook: the golden-equivalence and mutation tests use it to prove
    /// the equivalence gate notices a broken (over-wide) latency check.
    /// DC sweeps clamp the bands down to their own tighter defaults
    /// regardless of what is passed here.
    #[doc(hidden)]
    pub fn with_limit_opts(mut self, opts: LimitOpts) -> Self {
        self.limited = true;
        self.limit_opts = Some(opts);
        self
    }

    fn sel(&self) -> EngineSel {
        EngineSel {
            reference: self.reference,
            eval: if self.limited {
                DeviceEval::Limited(self.limit_opts.unwrap_or_default())
            } else {
                DeviceEval::Exact
            },
        }
    }

    fn probe(&mut self) -> Probe<'_> {
        // Through the `&mut T: Observer` blanket impl: the trait-object
        // lifetime behind `&mut` is invariant and cannot shrink directly.
        match &mut self.observer {
            Some(o) => Probe::new(Some(o)),
            None => Probe::none(),
        }
    }

    /// Computes the DC operating point (capacitors open, inductors
    /// shorted), falling back to gmin and source stepping for circuits
    /// that refuse to converge from a cold start.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LintRejected`] for structurally broken netlists,
    /// [`Error::SingularMatrix`] for under-determined ones, and
    /// [`Error::NonConvergence`] if every continuation strategy fails.
    pub fn dc_operating_point(&mut self) -> Result<DcSolution, Error> {
        let sel = self.sel();
        let max_iter = self.dc_max_iter;
        dc_operating_point_opts(self.circuit, sel, max_iter, self.probe())
    }

    /// Sweeps the DC value of `source` through `values`, solving the
    /// operating point at each step. The session's circuit is unchanged;
    /// the sweep mutates an internal copy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `source` is not a voltage
    /// source, and propagates operating-point errors.
    pub fn dc_sweep(&mut self, source: ElementId, values: &[f64]) -> Result<DcSweepResult, Error> {
        let sel = self.sel();
        let circuit = self.circuit.clone();
        dc_sweep_impl(circuit, source, values, sel, self.probe())
    }

    /// Small-signal AC analysis: linearises every nonlinear device around
    /// the DC operating point and sweeps `frequencies` with a unit
    /// stimulus at `source`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `source` is not a voltage
    /// source, and propagates operating-point and solver errors.
    pub fn ac(&mut self, source: ElementId, frequencies: &[f64]) -> Result<AcResult, Error> {
        let sel = self.sel();
        ac_analysis_impl(self.circuit, source, frequencies, sel, self.probe())
    }

    /// Output-referred noise density at `output` across `frequencies`,
    /// summing every device's noise shaped by its transfer function to
    /// the output (adjoint method).
    ///
    /// # Errors
    ///
    /// Propagates DC-operating-point and solver errors.
    ///
    /// # Panics
    ///
    /// Panics if `output` is the ground node.
    pub fn noise(&mut self, output: NodeId, frequencies: &[f64]) -> Result<NoiseResult, Error> {
        let sel = self.sel();
        noise_analysis_impl(self.circuit, output, frequencies, sel, self.probe())
    }

    /// Runs the configured transient analysis `tran` on the session's
    /// circuit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LintRejected`] for broken netlists (see
    /// [`crate::lint`]), [`Error::NonConvergence`] if Newton iteration
    /// fails at some time point, and [`Error::SingularMatrix`] for
    /// under-determined systems.
    pub fn transient(&mut self, tran: &Transient) -> Result<TransientResult, Error> {
        let sel = self.sel();
        tran.run_with(self.circuit, sel, self.probe())
    }

    /// Runs `tran` under the convergence-rescue ladder `policy`.
    ///
    /// Each time step that fails Newton iteration enters the ladder —
    /// timestep cutting with exponential backoff, a backward-Euler
    /// fallback, then per-point gmin shunting — and the run degrades
    /// gracefully: instead of aborting with [`Error::NonConvergence`], an
    /// unrescuable step yields [`TransientOutcome::Partial`] carrying the
    /// waveform up to the last accepted point plus a structured
    /// [`RescueReport`](crate::analysis::RescueReport). Every rung tried
    /// is emitted to the session observer as
    /// [`Event::RescueAttempt`](crate::telemetry::Event::RescueAttempt) /
    /// [`Event::RescueOutcome`](crate::telemetry::Event::RescueOutcome)
    /// telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LintRejected`] for broken netlists and
    /// [`Error::SingularMatrix`] for under-determined systems; those are
    /// structural faults no amount of rescue can fix. Non-convergence of
    /// the *initial* DC solve also propagates as an error — the ladder
    /// only guards time stepping.
    pub fn transient_rescued(
        &mut self,
        tran: &Transient,
        policy: &RescuePolicy,
    ) -> Result<TransientOutcome, Error> {
        let sel = self.sel();
        tran.run_rescued(self.circuit, sel, policy, self.probe())
    }

    /// Statically verifies the session's circuit: full lint report plus
    /// the stamp-plan soundness proof, without running any solve. See
    /// [`verify_circuit`].
    pub fn verify(&self) -> VerifyReport {
        verify_circuit(self.circuit)
    }

    /// Abstractly interprets both compiled stamp plans over point ranges
    /// (no parameter widening) and reports the MS030–MS033 findings,
    /// without running any solve. See [`crate::analyze`].
    ///
    /// An attached observer receives an
    /// [`Event::AnalyzeReport`](crate::telemetry::Event::AnalyzeReport)
    /// summarising the findings.
    pub fn analyze(&mut self) -> AnalyzeReport {
        self.analyze_with(&Ranges::default())
    }

    /// Abstractly interprets both compiled stamp plans with every device
    /// parameter widened to `ranges` and reports the MS030–MS033
    /// findings. See [`crate::analyze`].
    pub fn analyze_with(&mut self, ranges: &Ranges) -> AnalyzeReport {
        let report = analyze_circuit(self.circuit, ranges);
        if let Some(obs) = &mut self.observer {
            dispatch(
                *obs,
                &Event::AnalyzeReport {
                    denials: report.denials().count() as u32,
                    warnings: report.warnings().count() as u32,
                },
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::linspace;
    use crate::telemetry::{Event, MemoryRecorder};
    use crate::waveform::Waveform;

    fn rc_circuit() -> (Circuit, NodeId, NodeId, ElementId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let v1 = ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor("R1", vin, out, 1e3);
        ckt.resistor("R2", out, Circuit::GND, 1e3);
        (ckt, vin, out, v1)
    }

    #[test]
    fn one_session_runs_many_analyses() {
        let (mut ckt, _, out, v1) = rc_circuit();
        ckt.capacitor("C1", out, Circuit::GND, 1e-9);
        let mut session = Session::new(&ckt);
        let op = session.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 1.0).abs() < 1e-9);
        let sweep = session.dc_sweep(v1, &linspace(0.0, 2.0, 3)).unwrap();
        assert_eq!(sweep.values().len(), 3);
        let ac = session.ac(v1, &[1e3, 1e6]).unwrap();
        assert_eq!(ac.frequencies().len(), 2);
        let noise = session.noise(out, &[1e3]).unwrap();
        assert_eq!(noise.density().len(), 1);
        let tran = session.transient(&Transient::new(1e-9, 10e-9)).unwrap();
        assert!(tran.samples() > 1);
        assert!(session.verify().is_sound());
        assert!(!session.analyze().has_denials());
    }

    #[test]
    fn analyze_reports_through_the_session_observer() {
        let (ckt, _, _, _) = rc_circuit();
        let mut rec = MemoryRecorder::new();
        let mut session = Session::new(&ckt).observe(&mut rec);
        let report = session.analyze_with(&Ranges::default().with_tolerance(0.05));
        assert!(!report.has_denials());
        assert_eq!(rec.counter_value("analyze.runs"), 1);
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, Event::AnalyzeReport { denials: 0, .. })));
    }

    #[test]
    fn observer_sees_every_analysis_in_one_session() {
        let (mut ckt, _, out, v1) = rc_circuit();
        ckt.capacitor("C1", out, Circuit::GND, 1e-9);
        let mut rec = MemoryRecorder::new();
        let mut session = Session::new(&ckt).observe(&mut rec);
        session.dc_operating_point().unwrap();
        session.ac(v1, &[1e3]).unwrap();
        session.transient(&Transient::new(1e-9, 10e-9)).unwrap();
        let starts: Vec<&'static str> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::AnalysisStart { analysis } => Some(*analysis),
                _ => None,
            })
            .collect();
        // AC and transient each nest a DC operating point.
        assert_eq!(starts, ["dc", "ac", "dc", "transient", "dc"]);
        assert!(rec.counter_value("newton.solves") >= 3);
        assert!(rec.counter_value("tran.steps_accepted") == 10);
    }

    #[test]
    fn session_without_observer_matches_observed_run() {
        let (ckt, _, out, _) = rc_circuit();
        let plain = Session::new(&ckt).dc_operating_point().unwrap();
        let mut rec = MemoryRecorder::new();
        let observed = Session::new(&ckt)
            .observe(&mut rec)
            .dc_operating_point()
            .unwrap();
        assert_eq!(plain.raw(), observed.raw());
        assert!((plain.voltage(out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reference_solver_produces_equivalent_results() {
        let (ckt, _, out, _) = rc_circuit();
        let plan = Session::new(&ckt).dc_operating_point().unwrap();
        let reference = Session::new(&ckt)
            .with_reference_solver(true)
            .dc_operating_point()
            .unwrap();
        assert!((plan.voltage(out) - reference.voltage(out)).abs() < 1e-12);
    }
}
