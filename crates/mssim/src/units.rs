//! Physical-quantity newtypes.
//!
//! The simulator core works in raw `f64` SI units for speed, but public
//! cell-library and perceptron APIs use these newtypes so that a resistance
//! can never be passed where a capacitance is expected (C-NEWTYPE).
//!
//! Each newtype wraps an `f64` in base SI units, exposes the raw value via
//! [`Volts::value`] (etc.), supports the arithmetic that is physically
//! meaningful (`Volts / Ohms = Amps`, `Volts * Amps = Watts`, ...) and
//! formats with an engineering-notation suffix.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Creates a quantity from a raw value in base SI units.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base SI units.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let (scaled, prefix) = eng_prefix(self.0);
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*}{}{}", prec, scaled, prefix, $unit)
                } else {
                    write!(f, "{:.4}{}{}", scaled, prefix, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Hertz {
    /// Period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period(self) -> Seconds {
        assert!(self.0 != 0.0, "period of zero frequency");
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// Frequency whose cycle lasts this long.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    pub fn frequency(self) -> Hertz {
        assert!(self.0 != 0.0, "frequency of zero period");
        Hertz(1.0 / self.0)
    }
}

/// Splits a value into an engineering-scaled mantissa and SI-prefix string.
fn eng_prefix(value: f64) -> (f64, &'static str) {
    const PREFIXES: [(f64, &str); 9] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = value.abs();
    if mag == 0.0 || !mag.is_finite() {
        return (value, "");
    }
    for &(scale, prefix) in &PREFIXES {
        if mag >= scale {
            return (value / scale, prefix);
        }
    }
    (value / 1e-15, "f")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law() {
        let i = Volts(2.5) / Ohms(100e3);
        assert!((i.value() - 25e-6).abs() < 1e-12);
    }

    #[test]
    fn power_product_commutes() {
        let p1 = Volts(2.5) * Amps(1e-3);
        let p2 = Amps(1e-3) * Volts(2.5);
        assert_eq!(p1, p2);
        assert!((p1.value() - 2.5e-3).abs() < 1e-15);
    }

    #[test]
    fn period_frequency_roundtrip() {
        let f = Hertz(500e6);
        let t = f.period();
        assert!((t.value() - 2e-9).abs() < 1e-18);
        assert!((t.frequency().value() - 500e6).abs() < 1e-3);
    }

    #[test]
    fn display_uses_engineering_prefix() {
        assert_eq!(format!("{:.1}", Farads(1e-12)), "1.0pF");
        assert_eq!(format!("{:.0}", Ohms(100e3)), "100kΩ");
        assert_eq!(format!("{:.2}", Volts(2.5)), "2.50V");
        assert_eq!(format!("{:.0}", Hertz(500e6)), "500MHz");
    }

    #[test]
    fn display_zero() {
        assert_eq!(format!("{:.1}", Volts(0.0)), "0.0V");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Volts(1.0) + Volts(2.0), Volts(3.0));
        assert_eq!(Volts(5.0) - Volts(2.0), Volts(3.0));
        assert_eq!(-Volts(1.5), Volts(-1.5));
        assert_eq!(Volts(2.0) * 3.0, Volts(6.0));
        assert_eq!(3.0 * Volts(2.0), Volts(6.0));
        assert_eq!(Volts(6.0) / 3.0, Volts(2.0));
        assert!((Volts(6.0) / Volts(3.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn energy_from_power_and_time() {
        let e = Watts(1e-3) * Seconds(2.0);
        assert!((e.value() - 2e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "period of zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Hertz(0.0).period();
    }
}
