//! Simulator error types.

use std::fmt;

/// Errors produced by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The MNA matrix became singular (e.g. a floating node or a loop of
    /// ideal voltage sources).
    SingularMatrix {
        /// Pivot row at which elimination failed.
        row: usize,
    },
    /// Newton–Raphson failed to converge within the iteration limit.
    NonConvergence {
        /// Analysis that failed (`"dc"` or `"transient"`).
        analysis: &'static str,
        /// Simulation time at which convergence failed (seconds); `0.0`
        /// for DC analyses.
        time: f64,
        /// Iterations spent before giving up.
        iterations: usize,
        /// Strategy that was active when convergence was abandoned:
        /// `"newton"` for a bare solve, `"source"` when the whole DC
        /// homotopy ladder (direct → gmin → source stepping) ran dry,
        /// `"rescue"` when the transient rescue ladder was exhausted.
        stage: &'static str,
        /// Continuation attempts made before giving up: homotopy steps
        /// for DC, rescue-ladder rungs for transient; `0` for a bare
        /// solve.
        attempts: usize,
    },
    /// The netlist is structurally invalid.
    InvalidCircuit {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// An element parameter is out of its physical domain
    /// (negative resistance magnitude, zero capacitance, ...).
    InvalidParameter {
        /// Element whose parameter is invalid.
        element: String,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A requested probe (node or element) does not exist in the result.
    UnknownProbe {
        /// The name or index that failed to resolve.
        what: String,
    },
    /// The pre-flight lint (see [`crate::lint`]) found deny-level
    /// diagnostics and refused to start the analysis.
    LintRejected {
        /// Analysis that was about to run (`"dc"`, `"transient"`, ...).
        analysis: &'static str,
        /// Rendered deny-level diagnostics, e.g.
        /// `"deny: MS005 [voltage-source-loop]: ..."`.
        violations: Vec<String>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularMatrix { row } => {
                write!(
                    f,
                    "singular MNA matrix at pivot row {row} (floating node or voltage-source loop)"
                )
            }
            Error::NonConvergence {
                analysis,
                time,
                iterations,
                stage,
                attempts,
            } => {
                write!(
                    f,
                    "{analysis} analysis failed to converge at t={time:.3e}s after {iterations} iterations (stage: {stage}"
                )?;
                if *attempts > 0 {
                    write!(f, ", {attempts} continuation attempts")?;
                }
                write!(f, ")")
            }
            Error::InvalidCircuit { reason } => write!(f, "invalid circuit: {reason}"),
            Error::InvalidParameter { element, reason } => {
                write!(f, "invalid parameter on element {element}: {reason}")
            }
            Error::UnknownProbe { what } => write!(f, "unknown probe: {what}"),
            Error::LintRejected {
                analysis,
                violations,
            } => {
                write!(
                    f,
                    "{analysis} analysis rejected by pre-flight lint ({} violation{}): {}",
                    violations.len(),
                    if violations.len() == 1 { "" } else { "s" },
                    violations.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::SingularMatrix { row: 3 };
        assert!(e.to_string().contains("pivot row 3"));

        let e = Error::NonConvergence {
            analysis: "transient",
            time: 1e-9,
            iterations: 100,
            stage: "newton",
            attempts: 0,
        };
        assert!(e.to_string().contains("transient"));
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("stage: newton"));
        assert!(!e.to_string().contains("continuation attempts"));

        let e = Error::NonConvergence {
            analysis: "dc",
            time: 0.0,
            iterations: 200,
            stage: "source",
            attempts: 17,
        };
        assert!(e.to_string().contains("stage: source"));
        assert!(e.to_string().contains("17 continuation attempts"));

        let e = Error::InvalidCircuit {
            reason: "no ground reference".into(),
        };
        assert!(e.to_string().contains("no ground reference"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
