//! Non-destructive fault injection for robustness campaigns.
//!
//! A [`Fault`] describes a single hardware defect — a stuck switch, an
//! open resistor, a browning-out supply, a jittery PWM generator — and
//! [`Fault::apply`] materialises it on a *copy* of a borrowed
//! [`Circuit`]: the pristine netlist is never mutated, so one golden
//! circuit can fan out across an arbitrary fault universe in parallel.
//!
//! [`single_fault_universe`] enumerates a sensible single-fault universe
//! for any netlist (one faulty element at a time, the classic stuck-at
//! model of switch-level testing); domain crates curate richer universes
//! on top — see `pwmcell::faults` for the PWM perceptron cells.
//!
//! ```
//! use mssim::prelude::*;
//! use mssim::faults::{single_fault_universe, UniverseConfig};
//!
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! let out = ckt.node("out");
//! ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
//! ckt.resistor("R1", vdd, out, 1e3);
//! ckt.capacitor("C1", out, Circuit::GND, 1e-12);
//!
//! let universe = single_fault_universe(&ckt, &UniverseConfig::default());
//! assert!(!universe.is_empty());
//! for lf in &universe {
//!     let faulty = lf.fault.apply(&ckt).unwrap(); // `ckt` untouched
//!     assert!(faulty.element_count() >= ckt.element_count());
//! }
//! ```

use crate::elements::Element;
use crate::error::Error;
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::waveform::{Jitter, Waveform};

/// Resistance modelling an open circuit, ohms. High enough to starve any
/// load the cells use, low enough to keep the MNA matrix comfortably
/// conditioned.
pub const OPEN_OHMS: f64 = 1e12;

/// Resistance modelling a hard short, ohms.
pub const SHORT_OHMS: f64 = 1e-3;

/// A single injectable hardware defect.
///
/// Every variant is applied by [`Fault::apply`] to a copy of the target
/// circuit; the borrowed original is never modified.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Fault {
    /// Voltage-controlled switch stuck open: both resistances forced to
    /// [`OPEN_OHMS`], so the control voltage no longer matters.
    SwitchStuckOpen(ElementId),
    /// Switch stuck closed: both resistances forced to [`SHORT_OHMS`].
    SwitchStuckClosed(ElementId),
    /// MOSFET stuck open: channel width collapsed so the device cannot
    /// conduct regardless of gate drive.
    MosfetStuckOpen(ElementId),
    /// MOSFET stuck short: a [`SHORT_OHMS`] resistor bridges drain and
    /// source.
    MosfetStuckShort(ElementId),
    /// Resistor failed open (resistance forced to [`OPEN_OHMS`]).
    ResistorOpen(ElementId),
    /// Resistor failed short (resistance forced to [`SHORT_OHMS`]).
    ResistorShort(ElementId),
    /// Resistor drifted by a multiplicative `factor` (aging, process).
    ResistorDrift {
        /// The drifting resistor.
        id: ElementId,
        /// Multiplicative drift; must be positive and finite.
        factor: f64,
    },
    /// Capacitor developed a parallel leakage path of `ohms`.
    CapacitorLeak {
        /// The leaking capacitor.
        id: ElementId,
        /// Leakage resistance in ohms.
        ohms: f64,
    },
    /// Two nets bridged by a resistive defect of `ohms`.
    NetBridge {
        /// First bridged net.
        a: NodeId,
        /// Second bridged net.
        b: NodeId,
        /// Bridge resistance in ohms.
        ohms: f64,
    },
    /// Supply droop: every value of the source's waveform scaled by
    /// `factor` (e.g. `0.9` for a 10 % sag).
    SupplyDroop {
        /// The drooping source.
        id: ElementId,
        /// Multiplicative scale; must be finite.
        factor: f64,
    },
    /// Supply brownout: a DC supply dips to `v_low` between `t_start`
    /// and `t_end`, ramping over `t_ramp` on each side.
    SupplyBrownout {
        /// The browning-out source (must drive a DC waveform).
        id: ElementId,
        /// Voltage during the brownout window.
        v_low: f64,
        /// Start of the dip, seconds.
        t_start: f64,
        /// End of the dip, seconds.
        t_end: f64,
        /// Ramp time of each slope, seconds.
        t_ramp: f64,
    },
    /// PWM generator with timing jitter: the source's pulse train is
    /// replaced by [`Waveform::pwm_with_jitter`] with the same
    /// amplitude, frequency and duty cycle.
    PwmJitter {
        /// The jittering PWM source (must drive a pulse waveform).
        id: ElementId,
        /// Deterministic jitter description.
        jitter: Jitter,
    },
    /// PWM generator with a systematic duty-cycle error of `delta`
    /// (result clamped to `0..=1`).
    PwmDutyShift {
        /// The mis-calibrated PWM source (must drive a pulse waveform).
        id: ElementId,
        /// Signed duty shift.
        delta: f64,
    },
}

impl Fault {
    /// Applies the fault to a copy of `circuit` and returns the faulty
    /// netlist; the borrowed original is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the fault does not match
    /// its target (e.g. a switch fault aimed at a resistor, a brownout
    /// aimed at a pulsed source) or a numeric parameter is out of domain.
    pub fn apply(&self, circuit: &Circuit) -> Result<Circuit, Error> {
        let mut ckt = circuit.clone();
        match *self {
            Fault::SwitchStuckOpen(id) => {
                ckt.set_switch_resistances(id, OPEN_OHMS, OPEN_OHMS)?;
            }
            Fault::SwitchStuckClosed(id) => {
                ckt.set_switch_resistances(id, SHORT_OHMS, SHORT_OHMS)?;
            }
            Fault::MosfetStuckOpen(id) => {
                let params = match ckt.element(id) {
                    Element::Mosfet { params, .. } => *params,
                    _ => {
                        return Err(Error::InvalidParameter {
                            element: ckt.element_name(id).to_owned(),
                            reason: "mosfet fault targets a non-mosfet element".into(),
                        })
                    }
                };
                let mut dead = params;
                // A vanishing W/L ratio starves the channel: the device
                // stays in the netlist (keeping node connectivity) but
                // conducts nanoamps at most.
                dead.w = params.w * 1e-9;
                ckt.set_mos_params(id, dead)?;
            }
            Fault::MosfetStuckShort(id) => {
                let (d, s) = match ckt.element(id) {
                    Element::Mosfet { d, s, .. } => (*d, *s),
                    _ => {
                        return Err(Error::InvalidParameter {
                            element: ckt.element_name(id).to_owned(),
                            reason: "mosfet fault targets a non-mosfet element".into(),
                        })
                    }
                };
                let name = format!("FAULT_SHORT_{}", ckt.element_name(id));
                ckt.resistor(&name, d, s, SHORT_OHMS);
            }
            Fault::ResistorOpen(id) => ckt.set_resistance(id, OPEN_OHMS)?,
            Fault::ResistorShort(id) => ckt.set_resistance(id, SHORT_OHMS)?,
            Fault::ResistorDrift { id, factor } => {
                if !(factor > 0.0 && factor.is_finite()) {
                    return Err(Error::InvalidParameter {
                        element: ckt.element_name(id).to_owned(),
                        reason: format!("drift factor must be positive and finite, got {factor}"),
                    });
                }
                let ohms = match ckt.element(id) {
                    Element::Resistor { ohms, .. } => *ohms,
                    _ => {
                        return Err(Error::InvalidParameter {
                            element: ckt.element_name(id).to_owned(),
                            reason: "drift fault targets a non-resistor element".into(),
                        })
                    }
                };
                ckt.set_resistance(id, ohms * factor)?;
            }
            Fault::CapacitorLeak { id, ohms } => {
                let (a, b) = match ckt.element(id) {
                    Element::Capacitor { a, b, .. } => (*a, *b),
                    _ => {
                        return Err(Error::InvalidParameter {
                            element: ckt.element_name(id).to_owned(),
                            reason: "leak fault targets a non-capacitor element".into(),
                        })
                    }
                };
                let name = format!("FAULT_LEAK_{}", ckt.element_name(id));
                if !(ohms > 0.0 && ohms.is_finite()) {
                    return Err(Error::InvalidParameter {
                        element: name,
                        reason: format!("leak resistance must be positive and finite, got {ohms}"),
                    });
                }
                ckt.resistor(&name, a, b, ohms);
            }
            Fault::NetBridge { a, b, ohms } => {
                if a == b {
                    return Err(Error::InvalidParameter {
                        element: "FAULT_BRIDGE".into(),
                        reason: "bridge fault needs two distinct nets".into(),
                    });
                }
                if !(ohms > 0.0 && ohms.is_finite()) {
                    return Err(Error::InvalidParameter {
                        element: "FAULT_BRIDGE".into(),
                        reason: format!(
                            "bridge resistance must be positive and finite, got {ohms}"
                        ),
                    });
                }
                let name = format!(
                    "FAULT_BRIDGE_{}_{}",
                    ckt.node_name(a).to_owned(),
                    ckt.node_name(b).to_owned()
                );
                ckt.resistor(&name, a, b, ohms);
            }
            Fault::SupplyDroop { id, factor } => {
                if !factor.is_finite() {
                    return Err(Error::InvalidParameter {
                        element: ckt.element_name(id).to_owned(),
                        reason: format!("droop factor must be finite, got {factor}"),
                    });
                }
                let w = source_waveform(&ckt, id)?.clone();
                ckt.set_waveform(id, scale_waveform(&w, factor))?;
            }
            Fault::SupplyBrownout {
                id,
                v_low,
                t_start,
                t_end,
                t_ramp,
            } => {
                let nominal = match source_waveform(&ckt, id)? {
                    Waveform::Dc(v) => *v,
                    _ => {
                        return Err(Error::InvalidParameter {
                            element: ckt.element_name(id).to_owned(),
                            reason: "brownout fault requires a DC supply".into(),
                        })
                    }
                };
                if !(t_ramp > 0.0 && t_start > 0.0 && t_end > t_start + t_ramp) {
                    return Err(Error::InvalidParameter {
                        element: ckt.element_name(id).to_owned(),
                        reason: format!(
                            "brownout window must satisfy 0 < t_start, t_ramp > 0, \
                             t_end > t_start + t_ramp (got start {t_start}, end {t_end}, \
                             ramp {t_ramp})"
                        ),
                    });
                }
                let dip = Waveform::pwl(vec![
                    (0.0, nominal),
                    (t_start, nominal),
                    (t_start + t_ramp, v_low),
                    (t_end, v_low),
                    (t_end + t_ramp, nominal),
                ]);
                ckt.set_waveform(id, dip)?;
            }
            Fault::PwmJitter { id, ref jitter } => {
                let p = pulse_of(&ckt, id)?;
                let freq = 1.0 / p.period;
                let edge = (p.rise / p.period).clamp(1e-3, 0.499);
                let jittered =
                    Waveform::pwm_with_jitter(p.high, freq, p.duty_cycle(), edge, jitter);
                ckt.set_waveform(id, jittered)?;
            }
            Fault::PwmDutyShift { id, delta } => {
                if !delta.is_finite() {
                    return Err(Error::InvalidParameter {
                        element: ckt.element_name(id).to_owned(),
                        reason: format!("duty shift must be finite, got {delta}"),
                    });
                }
                let p = pulse_of(&ckt, id)?;
                let freq = 1.0 / p.period;
                let duty = (p.duty_cycle() + delta).clamp(0.0, 1.0);
                let edge = (p.rise / p.period).clamp(1e-6, 0.499);
                ckt.set_waveform(id, Waveform::pwm_with_edges(p.high, freq, duty, edge))?;
            }
        }
        Ok(ckt)
    }

    /// Short machine-readable kind tag (used in campaign labels and the
    /// exported JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::SwitchStuckOpen(_) => "switch_stuck_open",
            Fault::SwitchStuckClosed(_) => "switch_stuck_closed",
            Fault::MosfetStuckOpen(_) => "mosfet_stuck_open",
            Fault::MosfetStuckShort(_) => "mosfet_stuck_short",
            Fault::ResistorOpen(_) => "resistor_open",
            Fault::ResistorShort(_) => "resistor_short",
            Fault::ResistorDrift { .. } => "resistor_drift",
            Fault::CapacitorLeak { .. } => "capacitor_leak",
            Fault::NetBridge { .. } => "net_bridge",
            Fault::SupplyDroop { .. } => "supply_droop",
            Fault::SupplyBrownout { .. } => "supply_brownout",
            Fault::PwmJitter { .. } => "pwm_jitter",
            Fault::PwmDutyShift { .. } => "pwm_duty_shift",
        }
    }
}

/// A fault plus the human-readable label it carries through a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledFault {
    /// `kind:target` label, stable across runs of the same netlist.
    pub label: String,
    /// The defect itself.
    pub fault: Fault,
}

impl LabeledFault {
    /// Labels `fault` as `kind:target`.
    pub fn new(target: &str, fault: Fault) -> Self {
        LabeledFault {
            label: format!("{}:{}", fault.kind(), target),
            fault,
        }
    }
}

/// Knobs for [`single_fault_universe`].
#[derive(Debug, Clone, PartialEq)]
pub struct UniverseConfig {
    /// Multiplicative resistor drift; both `factor` and `1/factor` are
    /// enumerated.
    pub resistor_drift: f64,
    /// Leakage resistance injected across each capacitor, ohms.
    pub capacitor_leak_ohms: f64,
    /// Droop factor applied to each DC supply.
    pub supply_droop: f64,
    /// Peak edge jitter applied to each pulsed source, in periods.
    pub pwm_edge_jitter: f64,
    /// Periods materialised by each jittered PWM waveform.
    pub pwm_jitter_periods: usize,
    /// Base seed for the per-source jitter streams (source index is
    /// mixed in, so each source jitters independently).
    pub seed: u64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            resistor_drift: 2.0,
            capacitor_leak_ohms: 1e5,
            supply_droop: 0.9,
            pwm_edge_jitter: 0.05,
            pwm_jitter_periods: 64,
            seed: 0xFA01,
        }
    }
}

/// Enumerates the classic single-fault universe of `circuit`: for every
/// element, each defect its kind admits, one fault per entry.
///
/// Switches get stuck-open/stuck-closed, MOSFETs stuck-open/stuck-short,
/// resistors open/short/drift (up and down), capacitors a leakage path,
/// DC voltage sources a supply droop, and pulsed voltage sources edge
/// jitter plus a duty shift. Net bridges are *not* enumerated (the pair
/// space is quadratic); curate those per-topology. The order is the
/// netlist insertion order, so the universe — and any campaign run over
/// it — is deterministic.
pub fn single_fault_universe(circuit: &Circuit, config: &UniverseConfig) -> Vec<LabeledFault> {
    let mut universe = Vec::new();
    for (id, name, element) in circuit.elements() {
        match element {
            Element::Switch { .. } => {
                universe.push(LabeledFault::new(name, Fault::SwitchStuckOpen(id)));
                universe.push(LabeledFault::new(name, Fault::SwitchStuckClosed(id)));
            }
            Element::Mosfet { .. } => {
                universe.push(LabeledFault::new(name, Fault::MosfetStuckOpen(id)));
                universe.push(LabeledFault::new(name, Fault::MosfetStuckShort(id)));
            }
            Element::Resistor { .. } => {
                universe.push(LabeledFault::new(name, Fault::ResistorOpen(id)));
                universe.push(LabeledFault::new(name, Fault::ResistorShort(id)));
                universe.push(LabeledFault::new(
                    &format!("{name}*{}", config.resistor_drift),
                    Fault::ResistorDrift {
                        id,
                        factor: config.resistor_drift,
                    },
                ));
                universe.push(LabeledFault::new(
                    &format!("{name}/{}", config.resistor_drift),
                    Fault::ResistorDrift {
                        id,
                        factor: 1.0 / config.resistor_drift,
                    },
                ));
            }
            Element::Capacitor { .. } => {
                universe.push(LabeledFault::new(
                    name,
                    Fault::CapacitorLeak {
                        id,
                        ohms: config.capacitor_leak_ohms,
                    },
                ));
            }
            Element::VoltageSource { waveform, .. } => match waveform {
                Waveform::Dc(v) if *v != 0.0 => {
                    universe.push(LabeledFault::new(
                        name,
                        Fault::SupplyDroop {
                            id,
                            factor: config.supply_droop,
                        },
                    ));
                }
                Waveform::Pulse(_) => {
                    universe.push(LabeledFault::new(
                        name,
                        Fault::PwmJitter {
                            id,
                            jitter: Jitter::edges(
                                config.seed.wrapping_add(id.index() as u64),
                                config.pwm_edge_jitter,
                                config.pwm_jitter_periods,
                            ),
                        },
                    ));
                    universe.push(LabeledFault::new(
                        name,
                        Fault::PwmDutyShift { id, delta: -0.1 },
                    ));
                }
                _ => {}
            },
            _ => {}
        }
    }
    universe
}

fn source_waveform(ckt: &Circuit, id: ElementId) -> Result<&Waveform, Error> {
    match ckt.element(id) {
        Element::VoltageSource { waveform, .. } | Element::CurrentSource { waveform, .. } => {
            Ok(waveform)
        }
        _ => Err(Error::InvalidParameter {
            element: ckt.element_name(id).to_owned(),
            reason: "supply fault targets a non-source element".into(),
        }),
    }
}

fn pulse_of(ckt: &Circuit, id: ElementId) -> Result<crate::waveform::Pulse, Error> {
    match source_waveform(ckt, id)? {
        Waveform::Pulse(p) if p.period > 0.0 => Ok(*p),
        _ => Err(Error::InvalidParameter {
            element: ckt.element_name(id).to_owned(),
            reason: "pwm fault requires a pulsed source".into(),
        }),
    }
}

fn scale_waveform(w: &Waveform, factor: f64) -> Waveform {
    match w {
        Waveform::Dc(v) => Waveform::Dc(v * factor),
        Waveform::Pulse(p) => {
            let mut q = *p;
            q.low *= factor;
            q.high *= factor;
            Waveform::Pulse(q)
        }
        Waveform::Pwl(points) => {
            Waveform::Pwl(points.iter().map(|&(t, v)| (t, v * factor)).collect())
        }
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            delay,
        } => Waveform::Sine {
            offset: offset * factor,
            amplitude: amplitude * factor,
            frequency: *frequency,
            delay: *delay,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    /// VDD — R1 — out — SW(out..GND controlled by ctrl) with a load cap.
    fn switch_divider() -> (Circuit, ElementId, ElementId, ElementId, NodeId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let ctrl = ckt.node("ctrl");
        let v1 = ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.0));
        ckt.vsource("VC", ctrl, Circuit::GND, Waveform::dc(0.0));
        let r1 = ckt.resistor("R1", vdd, out, 1e3);
        let sw = ckt.switch("SW", out, Circuit::GND, ctrl, Circuit::GND, 1.0, 1e2, 1e9);
        (ckt, v1, r1, sw, out)
    }

    #[test]
    fn apply_never_mutates_the_original() {
        let (ckt, _, r1, _, _) = switch_divider();
        let before = ckt.revision();
        let faulty = Fault::ResistorOpen(r1).apply(&ckt).unwrap();
        assert_eq!(ckt.revision(), before, "borrowed circuit must be pristine");
        assert_ne!(
            format!("{:?}", faulty.element(r1)),
            format!("{:?}", ckt.element(r1))
        );
    }

    #[test]
    fn stuck_switch_overrides_control() {
        let (ckt, _, _, sw, out) = switch_divider();
        // Control is low, so the healthy switch is off: out ≈ vdd.
        let healthy = Session::new(&ckt).dc_operating_point().unwrap();
        assert!(healthy.voltage(out) > 1.9);
        // Stuck closed: out pulled to ground through SHORT_OHMS.
        let shorted = Fault::SwitchStuckClosed(sw).apply(&ckt).unwrap();
        let v = Session::new(&shorted).dc_operating_point().unwrap();
        assert!(
            v.voltage(out) < 0.1,
            "stuck-closed switch must pull out low"
        );
    }

    #[test]
    fn resistor_drift_scales_in_place() {
        let (ckt, _, r1, _, _) = switch_divider();
        let drifted = Fault::ResistorDrift {
            id: r1,
            factor: 2.0,
        }
        .apply(&ckt)
        .unwrap();
        match drifted.element(r1) {
            Element::Resistor { ohms, .. } => assert!((ohms - 2e3).abs() < 1e-9),
            _ => panic!("r1 should still be a resistor"),
        }
    }

    #[test]
    fn supply_droop_scales_dc_rail() {
        let (ckt, v1, _, _, _) = switch_divider();
        let drooped = Fault::SupplyDroop {
            id: v1,
            factor: 0.8,
        }
        .apply(&ckt)
        .unwrap();
        match drooped.element(v1) {
            Element::VoltageSource { waveform, .. } => {
                assert_eq!(*waveform, Waveform::Dc(1.6));
            }
            _ => panic!("v1 should still be a source"),
        }
    }

    #[test]
    fn brownout_builds_a_dip() {
        let (ckt, v1, _, _, _) = switch_divider();
        let browned = Fault::SupplyBrownout {
            id: v1,
            v_low: 0.5,
            t_start: 1e-6,
            t_end: 3e-6,
            t_ramp: 0.1e-6,
        }
        .apply(&ckt)
        .unwrap();
        match browned.element(v1) {
            Element::VoltageSource { waveform, .. } => {
                assert_eq!(waveform.value(0.0), 2.0);
                assert!((waveform.value(2e-6) - 0.5).abs() < 1e-12);
                assert_eq!(waveform.value(5e-6), 2.0);
            }
            _ => panic!("v1 should still be a source"),
        }
    }

    #[test]
    fn net_bridge_adds_a_named_resistor() {
        let (ckt, _, _, _, out) = switch_divider();
        let vdd = ckt.find_node("vdd").unwrap();
        let bridged = Fault::NetBridge {
            a: vdd,
            b: out,
            ohms: 10.0,
        }
        .apply(&ckt)
        .unwrap();
        assert_eq!(bridged.element_count(), ckt.element_count() + 1);
        assert!(bridged.find_element("FAULT_BRIDGE_vdd_out").is_some());
    }

    #[test]
    fn mismatched_targets_are_rejected() {
        let (ckt, v1, r1, sw, _) = switch_divider();
        assert!(Fault::SwitchStuckOpen(r1).apply(&ckt).is_err());
        assert!(Fault::ResistorOpen(sw).apply(&ckt).is_err());
        assert!(Fault::MosfetStuckOpen(v1).apply(&ckt).is_err());
        assert!(Fault::PwmJitter {
            id: v1, // DC source, not a pulse train
            jitter: Jitter::edges(0, 0.01, 8),
        }
        .apply(&ckt)
        .is_err());
    }

    #[test]
    fn universe_covers_every_element_kind_deterministically() {
        let (mut ckt, _, _, _, out) = switch_divider();
        ckt.capacitor("CL", out, Circuit::GND, 1e-12);
        let vin = ckt.node("in");
        ckt.vsource("VIN", vin, Circuit::GND, Waveform::pwm(2.0, 1e6, 0.5));
        let cfg = UniverseConfig::default();
        let a = single_fault_universe(&ckt, &cfg);
        let b = single_fault_universe(&ckt, &cfg);
        assert_eq!(a, b, "universe enumeration must be deterministic");
        let kinds: Vec<&str> = a.iter().map(|lf| lf.fault.kind()).collect();
        for expect in [
            "switch_stuck_open",
            "switch_stuck_closed",
            "resistor_open",
            "resistor_short",
            "resistor_drift",
            "capacitor_leak",
            "supply_droop",
            "pwm_jitter",
            "pwm_duty_shift",
        ] {
            assert!(kinds.contains(&expect), "universe missing {expect}");
        }
        // Every enumerated fault must actually apply cleanly.
        for lf in &a {
            lf.fault
                .apply(&ckt)
                .unwrap_or_else(|e| panic!("{} failed to apply: {e}", lf.label));
        }
    }
}
