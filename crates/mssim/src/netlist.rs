//! Circuit netlist construction.
//!
//! A [`Circuit`] is a flat netlist of named nodes and named elements.
//! Node 0 is always ground ([`Circuit::GND`]). Elements are added through
//! typed builder methods ([`Circuit::resistor`], [`Circuit::mosfet`], ...)
//! that validate parameters eagerly, so an invalid netlist is rejected at
//! construction time rather than deep inside an analysis.

use std::collections::HashMap;
use std::fmt;

use crate::elements::{Element, MosParams};
use crate::error::Error;
use crate::lint::{LintCache, LintConfig};
use crate::waveform::Waveform;

/// Identifier of a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of this node in the circuit's node table (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` if this is the ground reference.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an element within a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Index of this element in the circuit's element table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A flat analog netlist.
///
/// # Examples
///
/// ```
/// use mssim::{Circuit, Waveform};
///
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node("vdd");
/// let out = ckt.node("out");
/// ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
/// ckt.resistor("R1", vdd, out, 100e3);
/// ckt.capacitor("C1", out, Circuit::GND, 1e-12);
/// assert_eq!(ckt.node_count(), 3); // ground + 2
/// assert_eq!(ckt.element_count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    elements: Vec<NamedElement>,
    name_to_element: HashMap<String, ElementId>,
    lint_config: LintConfig,
    /// Bumped by every mutating method; keys the memoized lint verdicts.
    revision: u64,
    lint_cache: LintCache,
}

#[derive(Debug, Clone)]
struct NamedElement {
    name: String,
    element: Element,
}

impl Circuit {
    /// The ground reference node.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut name_to_node = HashMap::new();
        name_to_node.insert("0".to_owned(), NodeId(0));
        Circuit {
            node_names: vec!["0".to_owned()],
            name_to_node,
            elements: Vec::new(),
            name_to_element: HashMap::new(),
            lint_config: LintConfig::new(),
            revision: 0,
            lint_cache: LintCache::default(),
        }
    }

    /// Records a mutation so stale memoized lint verdicts are not reused.
    fn touch(&mut self) {
        self.revision = self.revision.wrapping_add(1);
    }

    /// Monotonic mutation counter keying the lint cache.
    pub(crate) fn revision(&self) -> u64 {
        self.revision
    }

    /// The memoized pre-flight lint verdicts for this circuit.
    pub(crate) fn lint_cache(&self) -> &LintCache {
        &self.lint_cache
    }

    /// Replaces the lint configuration honoured by analysis pre-flights
    /// (see [`crate::lint`]).
    pub fn set_lint_config(&mut self, config: LintConfig) {
        self.touch();
        self.lint_config = config;
    }

    /// The lint configuration honoured by analysis pre-flights.
    pub fn lint_config(&self) -> &LintConfig {
        &self.lint_config
    }

    /// Mutable access to the lint configuration, for in-place severity
    /// changes (see [`LintConfig::set_severity`]).
    ///
    /// Counts as a circuit mutation: severities feed the memoized
    /// pre-flight verdicts, so handing out the mutable reference must
    /// invalidate them even if the caller ends up changing nothing.
    pub fn lint_config_mut(&mut self) -> &mut LintConfig {
        self.touch();
        &mut self.lint_config
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The name `"0"` always refers to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        self.touch();
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_owned());
        self.name_to_node.insert(name.to_owned(), id);
        id
    }

    /// Creates an anonymous node with a generated unique name.
    pub fn fresh_node(&mut self) -> NodeId {
        let mut i = self.node_names.len();
        loop {
            let name = format!("_n{i}");
            if !self.name_to_node.contains_key(&name) {
                return self.node(&name);
            }
            i += 1;
        }
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite, if the name is
    /// already used, or if a node does not belong to this circuit.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistor {name}: resistance must be positive and finite, got {ohms}"
        );
        self.push(name, Element::Resistor { a, b, ohms })
    }

    /// Adds a capacitor with zero initial voltage.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive and finite, if the name
    /// is already used, or if a node does not belong to this circuit.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        self.capacitor_with_ic(name, a, b, farads, 0.0)
    }

    /// Adds a capacitor with an explicit initial voltage `v(a) - v(b)`,
    /// honoured when the transient starts from initial conditions.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Circuit::capacitor`].
    pub fn capacitor_with_ic(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
        initial_voltage: f64,
    ) -> ElementId {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitor {name}: capacitance must be positive and finite, got {farads}"
        );
        self.push(
            name,
            Element::Capacitor {
                a,
                b,
                farads,
                initial_voltage,
            },
        )
    }

    /// Adds an inductor with zero initial current.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not strictly positive and finite, if the
    /// name is already used, or if a node does not belong to this circuit.
    pub fn inductor(&mut self, name: &str, a: NodeId, b: NodeId, henries: f64) -> ElementId {
        self.inductor_with_ic(name, a, b, henries, 0.0)
    }

    /// Adds an inductor with an explicit initial current flowing `a → b`,
    /// honoured when the transient starts from initial conditions.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Circuit::inductor`].
    pub fn inductor_with_ic(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
        initial_current: f64,
    ) -> ElementId {
        assert!(
            henries > 0.0 && henries.is_finite(),
            "inductor {name}: inductance must be positive and finite, got {henries}"
        );
        self.push(
            name,
            Element::Inductor {
                a,
                b,
                henries,
                initial_current,
            },
        )
    }

    /// Adds an independent voltage source driving `v(pos) - v(neg)`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or a node does not belong to this
    /// circuit.
    pub fn vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> ElementId {
        self.push(name, Element::VoltageSource { pos, neg, waveform })
    }

    /// Adds an independent current source injecting current into `to`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or a node does not belong to this
    /// circuit.
    pub fn isource(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        waveform: Waveform,
    ) -> ElementId {
        self.push(name, Element::CurrentSource { from, to, waveform })
    }

    /// Adds a level-1 MOSFET (drain, gate, source; bulk tied to source).
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or a node does not belong to this
    /// circuit.
    pub fn mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: MosParams,
    ) -> ElementId {
        self.push(name, Element::Mosfet { d, g, s, params })
    }

    /// Adds a voltage-controlled switch.
    ///
    /// # Panics
    ///
    /// Panics if `r_on`/`r_off` are not positive finite, or on the usual
    /// name/node conditions.
    #[allow(clippy::too_many_arguments)]
    pub fn switch(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ctrl_pos: NodeId,
        ctrl_neg: NodeId,
        threshold: f64,
        r_on: f64,
        r_off: f64,
    ) -> ElementId {
        assert!(
            r_on > 0.0 && r_on.is_finite() && r_off > 0.0 && r_off.is_finite(),
            "switch {name}: r_on/r_off must be positive and finite"
        );
        self.push(
            name,
            Element::Switch {
                a,
                b,
                ctrl_pos,
                ctrl_neg,
                threshold,
                r_on,
                r_off,
            },
        )
    }

    /// Adds an exponential junction diode.
    ///
    /// # Panics
    ///
    /// Panics if `i_sat` or `n` is not strictly positive, or on the usual
    /// name/node conditions.
    pub fn diode(&mut self, name: &str, a: NodeId, k: NodeId, i_sat: f64, n: f64) -> ElementId {
        assert!(
            i_sat > 0.0 && n > 0.0,
            "diode {name}: i_sat and n must be positive"
        );
        self.push(name, Element::Diode { a, k, i_sat, n })
    }

    /// Adds a voltage-controlled voltage source driving
    /// `v(p) - v(n) = gain · (v(cp) - v(cn))`.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not finite and nonzero (a zero-gain VCVS is an
    /// independent 0 V source; model it as one), or on the usual name/node
    /// conditions.
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> ElementId {
        assert!(
            gain.is_finite() && gain != 0.0,
            "vcvs {name}: gain must be finite and nonzero, got {gain}"
        );
        self.push(name, Element::Vcvs { p, n, cp, cn, gain })
    }

    /// Adds a voltage-controlled current source injecting
    /// `gm · (v(cp) - v(cn))` into `to` and drawing it from `from`.
    ///
    /// # Panics
    ///
    /// Panics if `gm` is not finite and nonzero (a zero-gm VCCS stamps
    /// nothing; remove it instead), or on the usual name/node conditions.
    pub fn vccs(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> ElementId {
        assert!(
            gm.is_finite() && gm != 0.0,
            "vccs {name}: gm must be finite and nonzero, got {gm}"
        );
        self.push(
            name,
            Element::Vccs {
                from,
                to,
                cp,
                cn,
                gm,
            },
        )
    }

    fn push(&mut self, name: &str, element: Element) -> ElementId {
        assert!(
            !self.name_to_element.contains_key(name),
            "duplicate element name: {name}"
        );
        for node in element.nodes() {
            assert!(
                node.0 < self.node_names.len(),
                "element {name} references node {node} which does not belong to this circuit"
            );
        }
        self.touch();
        let id = ElementId(self.elements.len());
        self.elements.push(NamedElement {
            name: name.to_owned(),
            element,
        });
        self.name_to_element.insert(name.to_owned(), id);
        id
    }

    /// Element by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0].element
    }

    /// Element name by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn element_name(&self, id: ElementId) -> &str {
        &self.elements[id.0].name
    }

    /// Looks up an element by name.
    pub fn find_element(&self, name: &str) -> Option<ElementId> {
        self.name_to_element.get(name).copied()
    }

    /// Iterates over `(id, name, element)` triples in insertion order.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &str, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, ne)| (ElementId(i), ne.name.as_str(), &ne.element))
    }

    /// Replaces the resistance of an existing resistor (for sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the element is not a resistor
    /// or the value is not positive finite.
    pub fn set_resistance(&mut self, id: ElementId, ohms: f64) -> Result<(), Error> {
        if !(ohms > 0.0 && ohms.is_finite()) {
            return Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: format!("resistance must be positive and finite, got {ohms}"),
            });
        }
        match &mut self.elements[id.0].element {
            Element::Resistor { ohms: r, .. } => {
                *r = ohms;
                self.touch();
                Ok(())
            }
            _ => Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: "element is not a resistor".into(),
            }),
        }
    }

    /// Replaces the capacitance of an existing capacitor (for sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the element is not a
    /// capacitor or the value is not positive finite.
    pub fn set_capacitance(&mut self, id: ElementId, farads: f64) -> Result<(), Error> {
        if !(farads > 0.0 && farads.is_finite()) {
            return Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: format!("capacitance must be positive and finite, got {farads}"),
            });
        }
        match &mut self.elements[id.0].element {
            Element::Capacitor { farads: c, .. } => {
                *c = farads;
                self.touch();
                Ok(())
            }
            _ => Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: "element is not a capacitor".into(),
            }),
        }
    }

    /// Replaces the waveform of an existing independent source (for sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the element is not an
    /// independent source.
    pub fn set_waveform(&mut self, id: ElementId, waveform: Waveform) -> Result<(), Error> {
        match &mut self.elements[id.0].element {
            Element::VoltageSource { waveform: w, .. }
            | Element::CurrentSource { waveform: w, .. } => {
                *w = waveform;
                // Lints inspect waveforms (e.g. the t=0 value), so a swap
                // must invalidate the memoized verdict like any mutation.
                self.touch();
                Ok(())
            }
            _ => Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: "element is not an independent source".into(),
            }),
        }
    }

    /// Replaces the model parameters of an existing MOSFET (for Monte-Carlo
    /// variation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the element is not a MOSFET.
    pub fn set_mos_params(&mut self, id: ElementId, params: MosParams) -> Result<(), Error> {
        match &mut self.elements[id.0].element {
            Element::Mosfet { params: p, .. } => {
                *p = params;
                self.touch();
                Ok(())
            }
            _ => Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: "element is not a mosfet".into(),
            }),
        }
    }

    /// Replaces the on/off resistances of an existing voltage-controlled
    /// switch (for fault injection: a stuck switch is modelled by forcing
    /// both resistances to the stuck state).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the element is not a switch
    /// or either resistance is not positive finite.
    pub fn set_switch_resistances(
        &mut self,
        id: ElementId,
        r_on: f64,
        r_off: f64,
    ) -> Result<(), Error> {
        if !(r_on > 0.0 && r_on.is_finite() && r_off > 0.0 && r_off.is_finite()) {
            return Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: format!(
                    "switch resistances must be positive and finite, got r_on={r_on} r_off={r_off}"
                ),
            });
        }
        match &mut self.elements[id.0].element {
            Element::Switch {
                r_on: on,
                r_off: off,
                ..
            } => {
                *on = r_on;
                *off = r_off;
                self.touch();
                Ok(())
            }
            _ => Err(Error::InvalidParameter {
                element: self.elements[id.0].name.clone(),
                reason: "element is not a switch".into(),
            }),
        }
    }

    /// Ids of all voltage sources, in insertion order.
    pub fn voltage_sources(&self) -> Vec<ElementId> {
        self.elements()
            .filter(|(_, _, e)| matches!(e, Element::VoltageSource { .. }))
            .map(|(id, _, _)| id)
            .collect()
    }

    /// `true` if any element requires Newton iteration.
    pub fn has_nonlinear_elements(&self) -> bool {
        self.elements.iter().any(|ne| ne.element.is_nonlinear())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint;

    #[test]
    fn nodes_are_interned_by_name() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node_count(), 2);
        assert_eq!(ckt.node_name(a), "a");
        assert_eq!(ckt.find_node("a"), Some(a));
        assert_eq!(ckt.find_node("zzz"), None);
    }

    #[test]
    fn ground_is_node_zero() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.node("0"), Circuit::GND);
        assert!(Circuit::GND.is_ground());
    }

    #[test]
    fn fresh_nodes_are_unique() {
        let mut ckt = Circuit::new();
        let a = ckt.fresh_node();
        let b = ckt.fresh_node();
        assert_ne!(a, b);
    }

    #[test]
    fn elements_are_registered_and_findable() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let id = ckt.resistor("R1", a, Circuit::GND, 1e3);
        assert_eq!(ckt.find_element("R1"), Some(id));
        assert_eq!(ckt.element_name(id), "R1");
        assert!(matches!(
            ckt.element(id),
            Element::Resistor { ohms, .. } if *ohms == 1e3
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn duplicate_element_names_panic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GND, 1e3);
        ckt.resistor("R1", a, Circuit::GND, 2e3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_resistance_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GND, -5.0);
    }

    #[test]
    fn set_resistance_roundtrip() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let id = ckt.resistor("R1", a, Circuit::GND, 1e3);
        ckt.set_resistance(id, 5e3).unwrap();
        assert!(matches!(
            ckt.element(id),
            Element::Resistor { ohms, .. } if *ohms == 5e3
        ));
        assert!(ckt.set_resistance(id, -1.0).is_err());
    }

    #[test]
    fn set_resistance_on_wrong_element_errors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let id = ckt.capacitor("C1", a, Circuit::GND, 1e-12);
        assert!(ckt.set_resistance(id, 1e3).is_err());
    }

    #[test]
    fn lint_rejects_empty_circuit() {
        let ckt = Circuit::new();
        assert!(lint::lint(&ckt).has_denials());
    }

    #[test]
    fn lint_rejects_island_nodes() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GND, 1e3);
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.resistor("R2", b, c, 1e3); // island not touching ground
        let report = lint::lint(&ckt);
        assert!(report
            .denials()
            .any(|d| d.message.contains("not connected to ground")));
    }

    #[test]
    fn lint_accepts_connected_circuit() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.capacitor("C1", b, Circuit::GND, 1e-12);
        assert!(!lint::lint(&ckt).has_denials());
    }

    #[test]
    fn voltage_sources_listed_in_order() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v1 = ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3);
        let v2 = ckt.vsource("V2", b, Circuit::GND, Waveform::dc(0.5));
        assert_eq!(ckt.voltage_sources(), vec![v1, v2]);
    }

    #[test]
    fn nonlinearity_detection() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GND, 1e3);
        assert!(!ckt.has_nonlinear_elements());
        ckt.mosfet("M1", a, a, Circuit::GND, MosParams::nmos(1e-6, 1e-6));
        assert!(ckt.has_nonlinear_elements());
    }
}
