//! Circuit elements and device models.
//!
//! Elements are stored in the [`crate::Circuit`] netlist as the [`Element`]
//! enum. The analysis engine pattern-matches on the variants to stamp the
//! MNA system; the main nonlinear device is the level-1
//! [`Element::Mosfet`] (see [`mosfet`] for the model equations).

pub mod mosfet;

pub use mosfet::{MosOperatingPoint, MosParams, MosPolarity, MosRegion};

use crate::netlist::NodeId;
use crate::waveform::Waveform;

/// A netlist element.
///
/// Node order conventions follow SPICE: two-terminal elements list the
/// positive terminal first; the MOSFET lists drain, gate, source.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms; must be positive and finite.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First (positive) terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads; must be positive and finite.
        farads: f64,
        /// Initial voltage `v(a) - v(b)` used when the transient starts
        /// from initial conditions instead of a DC operating point.
        initial_voltage: f64,
    },
    /// Linear inductor between `a` and `b`.
    Inductor {
        /// First (positive) terminal; positive current flows `a → b`.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries; must be positive and finite.
        henries: f64,
        /// Initial current `a → b` used when the transient starts from
        /// initial conditions.
        initial_current: f64,
    },
    /// Independent voltage source; drives `v(pos) - v(neg)` to the waveform
    /// value. Its branch current is an extra MNA unknown; positive branch
    /// current flows into the `pos` terminal (SPICE convention), so a
    /// supply delivering power has a negative branch current.
    VoltageSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Independent current source; injects the waveform current into `to`
    /// and removes it from `from`.
    CurrentSource {
        /// Terminal the current is drawn from.
        from: NodeId,
        /// Terminal the current is injected into.
        to: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Level-1 (Shichman–Hodges) MOSFET. Bulk is tied to the source
    /// (no body effect).
    Mosfet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Model parameters (polarity, threshold, transconductance, sizing).
        params: MosParams,
    },
    /// Ideal voltage-controlled switch: `r_on` between `a` and `b` when
    /// `v(ctrl_pos) - v(ctrl_neg) > threshold`, else `r_off`.
    Switch {
        /// First switched terminal.
        a: NodeId,
        /// Second switched terminal.
        b: NodeId,
        /// Positive control terminal.
        ctrl_pos: NodeId,
        /// Negative control terminal.
        ctrl_neg: NodeId,
        /// Control threshold in volts.
        threshold: f64,
        /// On resistance in ohms.
        r_on: f64,
        /// Off resistance in ohms.
        r_off: f64,
    },
    /// Junction diode with ideal exponential law, anode `a`, cathode `k`.
    Diode {
        /// Anode.
        a: NodeId,
        /// Cathode.
        k: NodeId,
        /// Saturation current in amperes.
        i_sat: f64,
        /// Emission coefficient (ideality factor).
        n: f64,
    },
    /// Linear voltage-controlled voltage source (SPICE `E` element):
    /// drives `v(p) - v(n) = gain · (v(cp) - v(cn))`. Like an independent
    /// voltage source it carries a branch-current unknown; the control
    /// terminals conduct no current.
    Vcvs {
        /// Positive output terminal.
        p: NodeId,
        /// Negative output terminal.
        n: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Voltage gain; must be finite and nonzero.
        gain: f64,
    },
    /// Linear voltage-controlled current source (SPICE `G` element):
    /// injects `gm · (v(cp) - v(cn))` into `to` and draws it from `from`.
    /// The control terminals conduct no current.
    Vccs {
        /// Terminal the current is drawn from.
        from: NodeId,
        /// Terminal the current is injected into.
        to: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Transconductance in siemens; must be finite and nonzero.
        gm: f64,
    },
}

impl Element {
    /// Nodes this element connects to (for connectivity checking).
    pub fn nodes(&self) -> Vec<NodeId> {
        match *self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. } => vec![a, b],
            Element::VoltageSource { pos, neg, .. } => vec![pos, neg],
            Element::CurrentSource { from, to, .. } => vec![from, to],
            Element::Mosfet { d, g, s, .. } => vec![d, g, s],
            Element::Switch {
                a,
                b,
                ctrl_pos,
                ctrl_neg,
                ..
            } => vec![a, b, ctrl_pos, ctrl_neg],
            Element::Diode { a, k, .. } => vec![a, k],
            Element::Vcvs { p, n, cp, cn, .. } => vec![p, n, cp, cn],
            Element::Vccs {
                from, to, cp, cn, ..
            } => vec![from, to, cp, cn],
        }
    }

    /// `true` if the element requires Newton iteration (is nonlinear).
    /// The voltage-controlled switch counts as nonlinear because its
    /// conductance depends on the solution vector.
    pub fn is_nonlinear(&self) -> bool {
        matches!(
            self,
            Element::Mosfet { .. } | Element::Diode { .. } | Element::Switch { .. }
        )
    }

    /// `true` if the element introduces an MNA branch-current unknown
    /// (voltage sources, controlled voltage sources and inductors).
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. } | Element::Inductor { .. } | Element::Vcvs { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_nodes() {
        let r = Element::Resistor {
            a: NodeId(1),
            b: NodeId(2),
            ohms: 1e3,
        };
        assert_eq!(r.nodes(), vec![NodeId(1), NodeId(2)]);
        assert!(!r.is_nonlinear());
        assert!(!r.has_branch_current());

        let m = Element::Mosfet {
            d: NodeId(3),
            g: NodeId(4),
            s: NodeId(0),
            params: MosParams::nmos(320e-9, 1.2e-6),
        };
        assert_eq!(m.nodes().len(), 3);
        assert!(m.is_nonlinear());

        let v = Element::VoltageSource {
            pos: NodeId(1),
            neg: NodeId(0),
            waveform: Waveform::dc(2.5),
        };
        assert!(v.has_branch_current());
    }
}
