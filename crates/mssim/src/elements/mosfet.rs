//! Level-1 (Shichman–Hodges) MOSFET model.
//!
//! The paper's devices are drawn at L = 1.2 µm in a 65 nm process — 18×
//! the minimum length — which places them firmly in the long-channel
//! regime where the square-law level-1 model is the appropriate physical
//! description. The model implemented here supports both polarities,
//! drain/source swapping (the device is symmetric), channel-length
//! modulation, and returns the full derivative set needed for
//! Newton–Raphson linearisation.
//!
//! Region equations for an NMOS with `vds >= 0`, `beta = kp·W/L`:
//!
//! * cutoff (`vgs <= vth`):    `ids = 0`
//! * triode (`vds < vgs−vth`): `ids = beta·((vgs−vth)·vds − vds²/2)·(1+λ·vds)`
//! * saturation:               `ids = beta/2·(vgs−vth)²·(1+λ·vds)`
//!
//! PMOS devices are evaluated by negating all terminal voltages and the
//! resulting current, which preserves the derivative signs required by the
//! MNA stamps.

use std::fmt;

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl fmt::Display for MosPolarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosPolarity::Nmos => write!(f, "nmos"),
            MosPolarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// Operating region of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosRegion {
    /// `|vgs| <= |vth|`: channel off.
    Cutoff,
    /// `|vds| < |vgs − vth|`: resistive region.
    Triode,
    /// `|vds| >= |vgs − vth|`: current-source region.
    Saturation,
}

impl fmt::Display for MosRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosRegion::Cutoff => write!(f, "cutoff"),
            MosRegion::Triode => write!(f, "triode"),
            MosRegion::Saturation => write!(f, "saturation"),
        }
    }
}

/// Level-1 model parameters.
///
/// The default transconductance and threshold values are representative of
/// a long-channel device in a 65 nm bulk process operated at the paper's
/// 2.5 V I/O supply; see `pwmcell::Technology` for the paper-calibrated
/// technology wrapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Drawn channel width in meters.
    pub w: f64,
    /// Drawn channel length in meters.
    pub l: f64,
    /// Zero-bias threshold voltage magnitude in volts (positive for both
    /// polarities).
    pub vth0: f64,
    /// Process transconductance `µ·Cox` in A/V².
    pub kp: f64,
    /// Channel-length modulation in 1/V.
    pub lambda: f64,
}

impl MosParams {
    /// Default NMOS process transconductance (A/V²).
    pub const KP_N: f64 = 200e-6;
    /// Default PMOS process transconductance (A/V²).
    pub const KP_P: f64 = 80e-6;
    /// Default threshold magnitude (V).
    pub const VTH0: f64 = 0.45;
    /// Default channel-length modulation (1/V) for long-channel devices.
    pub const LAMBDA: f64 = 0.02;

    /// NMOS with default long-channel parameters and the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive.
    pub fn nmos(w: f64, l: f64) -> Self {
        assert!(w > 0.0 && l > 0.0, "mosfet geometry must be positive");
        MosParams {
            polarity: MosPolarity::Nmos,
            w,
            l,
            vth0: Self::VTH0,
            kp: Self::KP_N,
            lambda: Self::LAMBDA,
        }
    }

    /// PMOS with default long-channel parameters and the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive.
    pub fn pmos(w: f64, l: f64) -> Self {
        assert!(w > 0.0 && l > 0.0, "mosfet geometry must be positive");
        MosParams {
            polarity: MosPolarity::Pmos,
            w,
            l,
            vth0: Self::VTH0,
            kp: Self::KP_P,
            lambda: Self::LAMBDA,
        }
    }

    /// Returns a copy with the threshold voltage magnitude replaced.
    pub fn with_vth0(mut self, vth0: f64) -> Self {
        self.vth0 = vth0;
        self
    }

    /// Returns a copy with the process transconductance replaced.
    pub fn with_kp(mut self, kp: f64) -> Self {
        self.kp = kp;
        self
    }

    /// Returns a copy with channel-length modulation replaced.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Returns a copy with the width scaled by `factor` (used for the ×2 and
    /// ×4 weight-bit cells of the paper's adder).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled_width(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "width scale factor must be positive");
        self.w *= factor;
        self
    }

    /// Gain factor `beta = kp·W/L` in A/V².
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }

    /// Approximate on-resistance in deep triode at the given gate drive
    /// `|vgs|` (volts), i.e. `1 / (beta·(|vgs| − vth))`.
    ///
    /// Returns `f64::INFINITY` if the device would be off.
    pub fn r_on(&self, vgs_mag: f64) -> f64 {
        let vov = vgs_mag - self.vth0;
        if vov <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / (self.beta() * vov)
        }
    }

    /// Evaluates the drain current and its derivatives with respect to the
    /// three terminal voltages.
    ///
    /// `vd`, `vg`, `vs` are absolute node voltages. The returned
    /// [`MosOperatingPoint`] reports `id` as the current flowing *into the
    /// drain terminal* (and out of the source), which is negative for a
    /// conducting PMOS pulling its drain up.
    pub fn evaluate(&self, vd: f64, vg: f64, vs: f64) -> MosOperatingPoint {
        let (id, gdd, gdg, gds_node, region) = eval_flat(
            self.polarity == MosPolarity::Pmos,
            self.vth0,
            self.beta(),
            self.lambda,
            vd,
            vg,
            vs,
        );
        MosOperatingPoint {
            id,
            gdd,
            gdg,
            gds_node,
            region,
        }
    }
}

/// Flattened level-1 evaluation over pre-resolved parameters, shared by
/// [`MosParams::evaluate`] and the SoA batch evaluator in the compiled
/// stamp plan: both paths run this exact arithmetic sequence, so batching
/// cannot perturb bit patterns. `beta` must be the precomputed `kp·W/L`.
/// Returns `(id, gdd, gdg, gds_node, region)`.
#[inline]
pub(crate) fn eval_flat(
    pmos: bool,
    vth0: f64,
    beta: f64,
    lambda: f64,
    vd: f64,
    vg: f64,
    vs: f64,
) -> (f64, f64, f64, f64, MosRegion) {
    if pmos {
        // PMOS = NMOS with all voltages and the current negated;
        // d(-f(-v))/dv = f'(-v): derivative signs are preserved.
        let (id, gdd, gdg, gds_node, region) = eval_flat_n(vth0, beta, lambda, -vd, -vg, -vs);
        (-id, gdd, gdg, gds_node, region)
    } else {
        eval_flat_n(vth0, beta, lambda, vd, vg, vs)
    }
}

/// NMOS evaluation with drain/source swap for `vds < 0`.
#[inline]
fn eval_flat_n(
    vth0: f64,
    beta: f64,
    lambda: f64,
    vd: f64,
    vg: f64,
    vs: f64,
) -> (f64, f64, f64, f64, MosRegion) {
    if vd >= vs {
        let (ids, gm, gds, region) = channel_flat(vth0, beta, lambda, vg - vs, vd - vs);
        // id = f(vgs, vds): did/dvd = gds, did/dvg = gm,
        // did/dvs = -gm - gds.
        (ids, gds, gm, -gm - gds, region)
    } else {
        // Reverse mode: the physical source is the drain terminal.
        let (ids_r, gm_r, gds_r, region) = channel_flat(vth0, beta, lambda, vg - vd, vs - vd);
        // id = -f(vg - vd, vs - vd):
        // did/dvd = gm_r + gds_r, did/dvg = -gm_r, did/dvs = -gds_r.
        (-ids_r, gm_r + gds_r, -gm_r, -gds_r, region)
    }
}

/// Square-law channel current for `vds >= 0`; returns
/// `(ids, gm, gds, region)`.
#[inline]
fn channel_flat(
    vth0: f64,
    beta: f64,
    lambda: f64,
    vgs: f64,
    vds: f64,
) -> (f64, f64, f64, MosRegion) {
    debug_assert!(vds >= 0.0);
    let vov = vgs - vth0;
    if vov <= 0.0 {
        return (0.0, 0.0, 0.0, MosRegion::Cutoff);
    }
    let clm = 1.0 + lambda * vds;
    if vds < vov {
        // Triode.
        let core = vov * vds - 0.5 * vds * vds;
        let ids = beta * core * clm;
        let gm = beta * vds * clm;
        let gds = beta * ((vov - vds) * clm + core * lambda);
        (ids, gm, gds, MosRegion::Triode)
    } else {
        // Saturation.
        let core = 0.5 * vov * vov;
        let ids = beta * core * clm;
        let gm = beta * vov * clm;
        let gds = beta * core * lambda;
        (ids, gm, gds, MosRegion::Saturation)
    }
}

/// Operating region at the given terminal voltages without computing
/// currents — the cheap half of the latency test: a device whose region
/// *and* terminal voltages are (near-)unchanged may reuse its previous
/// linearisation.
#[inline]
pub(crate) fn region_flat(pmos: bool, vth0: f64, vd: f64, vg: f64, vs: f64) -> MosRegion {
    let (vd, vg, vs) = if pmos { (-vd, -vg, -vs) } else { (vd, vg, vs) };
    let (vgs, vds) = if vd >= vs {
        (vg - vs, vd - vs)
    } else {
        (vg - vd, vs - vd)
    };
    let vov = vgs - vth0;
    if vov <= 0.0 {
        MosRegion::Cutoff
    } else if vds < vov {
        MosRegion::Triode
    } else {
        MosRegion::Saturation
    }
}

/// Linearised operating point of a MOSFET: the drain current and its
/// partial derivatives with respect to the drain, gate and source node
/// voltages. Gate current is identically zero in the level-1 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOperatingPoint {
    /// Drain terminal current in amperes (into the drain, out of the
    /// source).
    pub id: f64,
    /// `∂id/∂vd` in siemens.
    pub gdd: f64,
    /// `∂id/∂vg` in siemens.
    pub gdg: f64,
    /// `∂id/∂vs` in siemens.
    pub gds_node: f64,
    /// Operating region of the channel.
    pub region: MosRegion,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosParams {
        MosParams::nmos(320e-9, 1.2e-6)
    }

    fn pmos() -> MosParams {
        MosParams::pmos(865e-9, 1.2e-6)
    }

    #[test]
    fn cutoff_has_zero_current() {
        let op = nmos().evaluate(1.0, 0.2, 0.0);
        assert_eq!(op.region, MosRegion::Cutoff);
        assert_eq!(op.id, 0.0);
        assert_eq!(op.gdg, 0.0);
    }

    #[test]
    fn region_classification() {
        let m = nmos();
        // vgs = 2.5, vth = 0.45 → vov = 2.05. vds = 0.1 → triode.
        assert_eq!(m.evaluate(0.1, 2.5, 0.0).region, MosRegion::Triode);
        // vds = 2.5 > vov → saturation.
        assert_eq!(m.evaluate(2.5, 2.5, 0.0).region, MosRegion::Saturation);
    }

    #[test]
    fn deep_triode_resistance_matches_r_on() {
        let m = nmos();
        let vds = 1e-3;
        let op = m.evaluate(vds, 2.5, 0.0);
        let r_measured = vds / op.id;
        let r_pred = m.r_on(2.5);
        assert!(
            (r_measured / r_pred - 1.0).abs() < 0.01,
            "measured {r_measured} vs predicted {r_pred}"
        );
        // Paper sizing gives Ron in the 8–10 kΩ range at 2.5 V drive.
        assert!(r_pred > 5e3 && r_pred < 15e3, "Ron = {r_pred}");
    }

    #[test]
    fn nmos_pmos_on_resistances_are_balanced() {
        // The paper's P/N width ratio (865/320) compensates the mobility
        // ratio so the inverter pulls up and down symmetrically.
        let rn = nmos().r_on(2.5);
        let rp = pmos().r_on(2.5);
        assert!(
            (rn / rp - 1.0).abs() < 0.15,
            "Ron(N) = {rn}, Ron(P) = {rp} should match within 15%"
        );
    }

    #[test]
    fn current_continuous_across_triode_saturation_boundary() {
        let m = nmos();
        let vgs = 1.5;
        let vov = vgs - m.vth0;
        let below = m.evaluate(vov - 1e-9, vgs, 0.0);
        let above = m.evaluate(vov + 1e-9, vgs, 0.0);
        assert!((below.id - above.id).abs() < 1e-9 * m.beta() * 10.0);
        assert!((below.gdg - above.gdg).abs() / above.gdg.max(1e-12) < 1e-6);
    }

    #[test]
    fn reverse_mode_is_antisymmetric() {
        // Swapping drain and source must negate the current (symmetric
        // device, gate referenced to the lower terminal).
        let m = nmos().with_lambda(0.0);
        let fwd = m.evaluate(1.0, 2.0, 0.0);
        let rev = m.evaluate(0.0, 2.0, 1.0);
        assert!(
            (fwd.id + rev.id).abs() < 1e-15,
            "fwd {} rev {}",
            fwd.id,
            rev.id
        );
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = MosParams::nmos(1e-6, 1e-6);
        let p = MosParams {
            polarity: MosPolarity::Pmos,
            ..n
        };
        let opn = n.evaluate(1.0, 2.0, 0.0);
        let opp = p.evaluate(-1.0, -2.0, 0.0);
        assert!((opn.id + opp.id).abs() < 1e-15);
        assert_eq!(opn.region, opp.region);
    }

    #[test]
    fn pmos_pullup_current_is_negative_at_drain() {
        // PMOS source at vdd, gate low, drain mid-rail: conducting, current
        // flows from source (vdd) to drain, i.e. *out of* the drain node →
        // id (into drain) negative.
        let p = pmos();
        let op = p.evaluate(1.0, 0.0, 2.5);
        assert!(op.id < 0.0, "id = {}", op.id);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = nmos();
        let cases = [
            (0.3, 2.5, 0.0),  // triode
            (2.0, 1.5, 0.0),  // saturation
            (0.0, 2.0, 1.0),  // reverse
            (-0.2, 2.0, 0.3), // reverse triode
        ];
        let h = 1e-7;
        for &(vd, vg, vs) in &cases {
            let op = m.evaluate(vd, vg, vs);
            let dd = (m.evaluate(vd + h, vg, vs).id - m.evaluate(vd - h, vg, vs).id) / (2.0 * h);
            let dg = (m.evaluate(vd, vg + h, vs).id - m.evaluate(vd, vg - h, vs).id) / (2.0 * h);
            let ds = (m.evaluate(vd, vg, vs + h).id - m.evaluate(vd, vg, vs - h).id) / (2.0 * h);
            let tol = 1e-4 * m.beta().max(1e-9);
            assert!((op.gdd - dd).abs() < tol, "gdd {} vs fd {}", op.gdd, dd);
            assert!((op.gdg - dg).abs() < tol, "gdg {} vs fd {}", op.gdg, dg);
            assert!(
                (op.gds_node - ds).abs() < tol,
                "gds {} vs fd {}",
                op.gds_node,
                ds
            );
        }
    }

    #[test]
    fn width_scaling_scales_current() {
        let m1 = nmos().with_lambda(0.0);
        let m4 = m1.scaled_width(4.0);
        let i1 = m1.evaluate(2.5, 2.5, 0.0).id;
        let i4 = m4.evaluate(2.5, 2.5, 0.0).id;
        assert!((i4 / i1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn builder_overrides() {
        let m = nmos().with_vth0(0.6).with_kp(100e-6).with_lambda(0.0);
        assert_eq!(m.vth0, 0.6);
        assert_eq!(m.kp, 100e-6);
        assert_eq!(m.lambda, 0.0);
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn zero_width_panics() {
        let _ = MosParams::nmos(0.0, 1e-6);
    }

    #[test]
    fn display_impls() {
        assert_eq!(MosPolarity::Nmos.to_string(), "nmos");
        assert_eq!(MosRegion::Saturation.to_string(), "saturation");
    }
}
