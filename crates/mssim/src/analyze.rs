//! Numeric abstract interpretation of compiled stamp plans and static
//! fault collapsing.
//!
//! [`crate::verify`] proves *structural* properties of a compiled
//! [`StampPlan`] — every op lands in bounds, the sparsity pattern is
//! solvable, the cache identity is complete. This module adds the
//! *numeric* layer: it re-executes the same flat op program over
//! **intervals** instead of floats, with every device parameter widened
//! to a declared [`Ranges`] envelope (component tolerance, supply droop
//! window, a [`Fault`]'s perturbation), and derives facts that hold for
//! *every* concrete circuit inside the envelope:
//!
//! * **MS030** `guaranteed-singular-pivot` — a node-row diagonal whose
//!   interval is exactly `[0, 0]` (singular for every parameter choice)
//!   or straddles zero (sign-indefinite: the pivot can vanish somewhere
//!   inside the declared range).
//! * **MS031** `non-finite-stamp-range` — a matrix or rhs entry whose
//!   interval reaches NaN/∞ or magnitudes beyond ~1e300, so a concrete
//!   assembly inside the range can overflow.
//! * **MS032** `catastrophic-cancellation` — an entry accumulated from
//!   contributions whose summed magnitudes dwarf the residual interval
//!   by more than twelve decades, so most of the addends' precision is
//!   lost to cancellation.
//! * **MS033** `interval-ill-conditioned` — a Varah-style condition
//!   bound on the node-conductance block, computed from the interval
//!   endpoints, exceeds the same ~1e12 span MS022 flags heuristically;
//!   unlike MS022 this is a numeric certificate valid over the whole
//!   declared range (and is skipped when the block is not strictly
//!   diagonally dominant, where the bound does not apply).
//!
//! # Soundness
//!
//! Interval endpoints are computed with ordinary `f64` arithmetic in the
//! *same per-entry accumulation order* as the concrete assembler replays
//! its ops. Because IEEE-754 addition, multiplication and division are
//! monotone in each operand, every concretely assembled stamp value lies
//! inside the abstract interval whenever the concrete parameters lie
//! inside the declared ranges (`tests/abstract_soundness.rs` checks this
//! property on random circuits), and widening a range can only widen the
//! resulting intervals. Dynamic companion history currents (`ieq`) are
//! bounded by a documented envelope — companion conductance times the
//! node-voltage window — rather than derived, so transient rhs intervals
//! are certificates *relative to that envelope*.
//!
//! # Static fault collapsing
//!
//! The second half of the module implements ATPG-style fault collapsing
//! for the campaign engine. [`plan_key`] serialises a circuit's compiled
//! DC and transient plans into a canonical identity in which a switch
//! whose both control terminals are literally ground is *statically
//! resolved*: its control voltage is exactly `0.0` at every Newton
//! iteration of every concrete solve, so only the resolved conductance —
//! not the dormant branch — enters the key. Two circuits with equal keys
//! replay bit-identical op programs against bit-identical waveforms and
//! initial conditions, so their transients are bitwise identical and one
//! simulation serves both. [`collapse_faults`] groups a fault universe by
//! key: faults indistinguishable from the golden netlist replicate the
//! golden verdict, equal-key faults share one representative transient.
//! Dominance (mutual containment of abstracted plans) degenerates to key
//! equality here on purpose: faults touching *different* element
//! positions change the per-entry float accumulation order, which the
//! bitwise reproducibility contract of the campaign engine must not
//! blur.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::ops::{Add as _, Mul as _, Neg as _, Sub as _};

use crate::analysis::mna::{self, MnaLayout, NewtonOpts};
use crate::analysis::plan::{IterOp, MatOp, PlanMode, RhsOp, StampPlan, ValRef};
use crate::elements::{Element, MosParams};
use crate::faults::{Fault, LabeledFault};
use crate::linear::{DenseMatrix, LuFactors};
use crate::lint::{Diagnostic, LintCode, Severity};
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::waveform::Waveform;

/// Magnitude beyond which a stamp entry is treated as overflow-prone
/// (MS031): one more multiplication by a modest factor reaches ±∞.
const OVERFLOW_LIMIT: f64 = 1e300;

/// Ratio of summed contribution magnitudes to residual magnitude above
/// which an accumulated entry has lost essentially all addend precision
/// to cancellation (MS032). Matches the ~12-decade span MS022/MS033 use.
const CANCELLATION_LIMIT: f64 = 1e12;

// ---------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------

/// A closed interval `[lo, hi]` of `f64` values.
///
/// Arithmetic uses plain `f64` endpoint operations; soundness of the
/// analyzer rests on the monotonicity of IEEE-754 `+`, `×` and `÷`, not
/// on outward rounding (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (NaN endpoints are allowed and compare false,
    /// so they pass through; MS031 reports them).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Greater),
            "interval endpoints out of order: [{lo}, {hi}]"
        );
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The smallest interval containing both `a` and `b`.
    pub fn hull(a: f64, b: f64) -> Self {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// `true` if `x` lies inside the interval (false for NaN).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `true` if every point of `other` lies inside `self`.
    pub fn encloses(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Largest absolute endpoint value.
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// `true` if both endpoints are finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Reciprocal of a strictly-positive interval (used to turn a
    /// resistance scale into a conductance scale).
    fn recip_positive(self) -> Interval {
        debug_assert!(self.lo > 0.0, "reciprocal needs a positive interval");
        Interval {
            lo: 1.0 / self.hi,
            hi: 1.0 / self.lo,
        }
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        0.5 * self.lo + 0.5 * self.hi
    }

    /// Width `hi − lo` of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Interval quotient `self / other`, or `None` when `other` contains
    /// zero (the quotient would be unbounded). Endpoint division is
    /// monotone like the other IEEE-754 operations, so the same
    /// soundness convention applies.
    pub fn checked_div(self, other: Interval) -> Option<Interval> {
        if other.lo <= 0.0 && 0.0 <= other.hi {
            return None;
        }
        Some(self.mul(Interval {
            lo: 1.0 / other.hi,
            hi: 1.0 / other.lo,
        }))
    }

    /// Intersection of two intervals, or `None` when they are disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

/// Interval sum (exact endpoint addition).
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

/// Interval product (min/max over the four endpoint products).
impl std::ops::Mul for Interval {
    type Output = Interval;

    fn mul(self, other: Interval) -> Interval {
        let p = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Interval {
            lo: p.iter().copied().fold(f64::INFINITY, f64::min),
            hi: p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Negated interval.
impl std::ops::Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

/// Interval difference (exact endpoint subtraction).
impl std::ops::Sub for Interval {
    type Output = Interval;

    fn sub(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo - other.hi,
            hi: self.hi - other.lo,
        }
    }
}

// ---------------------------------------------------------------------
// Declared parameter ranges
// ---------------------------------------------------------------------

/// Declared parameter envelope the abstract interpreter widens every
/// device over: a global relative tolerance, per-element multiplicative
/// overrides, a supply scale window (droop), a node-voltage window used
/// to bound nonlinear device transfer curves, and the admissible
/// transient timestep range for companion-conductance bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranges {
    tolerance: f64,
    overrides: Vec<(ElementId, Interval)>,
    supply_scale: Interval,
    voltage_window: Option<Interval>,
    dt: Interval,
}

impl Default for Ranges {
    /// Point ranges: no widening at all. The abstract assembly then
    /// reproduces the concrete one bitwise (up to source waveform hulls,
    /// which always span the full waveform excursion).
    fn default() -> Self {
        Ranges {
            tolerance: 0.0,
            overrides: Vec::new(),
            supply_scale: Interval::point(1.0),
            voltage_window: None,
            dt: Interval::new(1e-15, 1e-3),
        }
    }
}

impl Ranges {
    /// Point ranges (same as [`Default`]).
    pub fn point() -> Self {
        Ranges::default()
    }

    /// Sets the global relative component tolerance `t`: every parametric
    /// value `p` is widened to `p · [1−t, 1+t]` (conductances derived
    /// from resistances get the exact reciprocal window).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ t < 1`.
    pub fn with_tolerance(mut self, t: f64) -> Self {
        assert!((0.0..1.0).contains(&t), "tolerance must be in [0, 1)");
        self.tolerance = t;
        self
    }

    /// Overrides the multiplicative parameter window of one element:
    /// its parameter ranges over `p · [scale_lo, scale_hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale_lo ≤ scale_hi`.
    pub fn with_element_scale(mut self, id: ElementId, scale_lo: f64, scale_hi: f64) -> Self {
        assert!(
            scale_lo > 0.0 && scale_lo <= scale_hi,
            "element scale window must be positive and ordered"
        );
        if let Some(slot) = self.overrides.iter_mut().find(|(e, _)| *e == id) {
            slot.1 = Interval::new(scale_lo, scale_hi);
        } else {
            self.overrides.push((id, Interval::new(scale_lo, scale_hi)));
        }
        self
    }

    /// Sets the supply scale window (droop): every independent source
    /// value is multiplied by `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn with_supply_scale(mut self, lo: f64, hi: f64) -> Self {
        self.supply_scale = Interval::new(lo, hi);
        self
    }

    /// Sets the node-voltage window used to bound MOSFET/diode transfer
    /// curves and companion history currents. Without an explicit window
    /// one is derived from the source hulls (±(2·max source magnitude
    /// + 1) volts).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn with_voltage_window(mut self, lo: f64, hi: f64) -> Self {
        self.voltage_window = Some(Interval::new(lo, hi));
        self
    }

    /// Sets the admissible transient timestep range, which bounds
    /// capacitor/inductor companion conductances.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo ≤ hi`.
    pub fn with_dt(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && lo <= hi, "dt window must be positive");
        self.dt = Interval::new(lo, hi);
        self
    }

    /// Derives the widening a [`Fault`]'s perturbation declares against
    /// the `golden` netlist it targets: an envelope over the golden
    /// circuit's parameters that covers both the nominal and the faulted
    /// parameterisation.
    ///
    /// Every variant yields a non-point envelope for its affected
    /// element. Parametric faults (drift, droop, brownout, forced
    /// open/short/stuck resistances, PWM timing) get the exact
    /// multiplicative window between nominal and forced value;
    /// topology-adding faults (MOSFET shorts, capacitor leaks, net
    /// bridges), whose faulty netlist gains an element the golden plan
    /// lacks, get a conservative site-marking window instead — analysing
    /// them precisely still requires abstracting the *applied* faulty
    /// netlist.
    pub fn for_fault(fault: &Fault, golden: &Circuit) -> Self {
        use crate::faults::{OPEN_OHMS, SHORT_OHMS};
        let ranges = Ranges::default();
        // Multiplicative window spanning nominal (×1) and every listed
        // forced-over-nominal resistance factor.
        let hull1 = |factors: &[f64]| {
            let lo = factors.iter().fold(1.0f64, |a, &f| a.min(f)).max(1e-18);
            let hi = factors.iter().fold(1.0f64, |a, &f| a.max(f));
            (lo, hi.max(lo * (1.0 + 1e-9)))
        };
        match *fault {
            Fault::SwitchStuckOpen(id) => {
                let w = match golden.element(id) {
                    Element::Switch { r_on, r_off, .. } => {
                        hull1(&[OPEN_OHMS / r_on, OPEN_OHMS / r_off])
                    }
                    _ => (1.0, OPEN_OHMS),
                };
                ranges.with_element_scale(id, w.0, w.1)
            }
            Fault::SwitchStuckClosed(id) => {
                let w = match golden.element(id) {
                    Element::Switch { r_on, r_off, .. } => {
                        hull1(&[SHORT_OHMS / r_on, SHORT_OHMS / r_off])
                    }
                    _ => (SHORT_OHMS, 1.0),
                };
                ranges.with_element_scale(id, w.0, w.1)
            }
            // Stuck-open collapses W to 1e-9·W; the window spans the
            // starved and nominal channel.
            Fault::MosfetStuckOpen(id) => ranges.with_element_scale(id, 1e-9, 1.0),
            // Stuck-short adds a SHORT_OHMS drain–source bridge the
            // golden plan lacks; mark the site with a window covering
            // the added 1/SHORT_OHMS siemens of channel conductance.
            Fault::MosfetStuckShort(id) => ranges.with_element_scale(id, 1.0, 1.0 / SHORT_OHMS),
            Fault::ResistorOpen(id) => {
                let w = match golden.element(id) {
                    Element::Resistor { ohms, .. } => hull1(&[OPEN_OHMS / ohms]),
                    _ => (1.0, OPEN_OHMS),
                };
                ranges.with_element_scale(id, w.0, w.1)
            }
            Fault::ResistorShort(id) => {
                let w = match golden.element(id) {
                    Element::Resistor { ohms, .. } => hull1(&[SHORT_OHMS / ohms]),
                    _ => (SHORT_OHMS, 1.0),
                };
                ranges.with_element_scale(id, w.0, w.1)
            }
            Fault::ResistorDrift { id, factor } => {
                let w = hull1(&[factor]);
                ranges.with_element_scale(id, w.0, w.1)
            }
            // The leak path (conductance 1/ohms) is bounded relative to
            // the capacitor's companion conductance C/dt: their ratio is
            // dt/(R·C), largest at the slowest admissible timestep.
            Fault::CapacitorLeak { id, ohms } => {
                let hi = match golden.element(id) {
                    Element::Capacitor { farads, .. } => 1.0 + ranges.dt.hi / (farads * ohms),
                    _ => 1.0 + 1.0 / ohms,
                };
                ranges.with_element_scale(id, 1.0, hi.max(1.0 + 1e-9))
            }
            // A bridge perturbs every conductance incident on the
            // bridged nets by an amount with no usable relative bound;
            // the declared envelope widens the global tolerance to the
            // maximum the range language expresses, so every element at
            // the fault site (and elsewhere) is non-point.
            Fault::NetBridge { .. } => ranges.with_tolerance(0.999),
            Fault::SupplyDroop { factor, .. } => {
                let (lo, hi) = (factor.min(1.0), factor.max(1.0));
                ranges.with_supply_scale(lo, hi.max(lo + 1e-9))
            }
            Fault::SupplyBrownout { .. } => ranges.with_supply_scale(0.0, 1.0),
            // Timing faults perturb the pulse train's time-average; per
            // period the duty error is bounded by one edge displacement
            // per edge plus the glitch shift, expressed as a
            // multiplicative window on the source's hull.
            Fault::PwmJitter { id, ref jitter } => {
                let j = (2.0 * jitter.edge_jitter.abs() + jitter.glitch_duty.abs()).max(1e-6);
                ranges.with_element_scale(id, (1.0 - j).max(1e-6), 1.0 + j)
            }
            Fault::PwmDutyShift { id, delta } => {
                let j = delta.abs().max(1e-6);
                ranges.with_element_scale(id, (1.0 - j).max(1e-6), 1.0 + j)
            }
        }
    }

    /// Multiplicative parameter window of `id`: the override when one
    /// exists, else the global tolerance window `[1−t, 1+t]`.
    fn scale_of(&self, id: ElementId) -> Interval {
        self.scale_override(id).unwrap_or(Interval {
            lo: 1.0 - self.tolerance,
            hi: 1.0 + self.tolerance,
        })
    }

    /// The explicit per-element override of `id`, if any. Sources are
    /// widened only through this path (plus the supply window) — the
    /// global tolerance fallback is for device parameters, not source
    /// values.
    fn scale_override(&self, id: ElementId) -> Option<Interval> {
        self.overrides
            .iter()
            .find(|(e, _)| *e == id)
            .map(|&(_, s)| s)
    }

    /// Node-voltage window: the explicit one, or ±(2·max source hull
    /// magnitude + 1) derived from the circuit's sources.
    fn window_for(&self, ckt: &Circuit) -> Interval {
        if let Some(w) = self.voltage_window {
            return w;
        }
        let mut m = 0.0f64;
        for (_, _, elem) in ckt.elements() {
            if let Element::VoltageSource { waveform, .. }
            | Element::CurrentSource { waveform, .. } = elem
            {
                m = m.max(waveform_hull(waveform).mul(self.supply_scale).mag());
            }
        }
        let half = 2.0 * m + 1.0;
        Interval::new(-half, half)
    }
}

/// Hull of every value a waveform can take over all time.
fn waveform_hull(w: &Waveform) -> Interval {
    match w {
        Waveform::Dc(v) => Interval::point(*v),
        Waveform::Pulse(p) => Interval::hull(p.low, p.high),
        Waveform::Pwl(points) => {
            let mut iv = Interval::point(points.first().map_or(0.0, |&(_, v)| v));
            for &(_, v) in points {
                iv = Interval::new(iv.lo.min(v), iv.hi.max(v));
            }
            iv
        }
        Waveform::Sine {
            offset, amplitude, ..
        } => Interval::new(offset - amplitude.abs(), offset + amplitude.abs()),
    }
}

// ---------------------------------------------------------------------
// Abstract assembly
// ---------------------------------------------------------------------

/// The interval-valued MNA system produced by abstractly interpreting
/// one compiled stamp plan over a [`Ranges`] envelope, plus per-entry
/// accumulation statistics for the cancellation lint.
#[derive(Debug, Clone)]
pub struct AbstractStamp {
    n: usize,
    node_rows: usize,
    mat: Vec<Interval>,
    rhs: Vec<Interval>,
    /// Per matrix entry: (number of contributions, Σ contribution mags).
    mat_contrib: Vec<(u32, f64)>,
    /// Per rhs row: (number of contributions, Σ contribution mags).
    rhs_contrib: Vec<(u32, f64)>,
}

impl AbstractStamp {
    /// System size (node rows + branch rows).
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of node rows (the leading rows of the system).
    pub fn node_rows(&self) -> usize {
        self.node_rows
    }

    /// Abstract matrix entry at `(row, col)`.
    pub fn mat_interval(&self, row: usize, col: usize) -> Interval {
        self.mat[row * self.n + col]
    }

    /// Abstract right-hand-side entry at `row`.
    pub fn rhs_interval(&self, row: usize) -> Interval {
        self.rhs[row]
    }

    /// `true` if every entry of the concretely assembled `(mat, rhs)`
    /// (flat row-major matrix) lies inside its abstract interval.
    pub fn encloses_concrete(&self, mat: &[f64], rhs: &[f64]) -> bool {
        mat.len() == self.mat.len()
            && rhs.len() == self.rhs.len()
            && self.mat.iter().zip(mat).all(|(iv, &x)| iv.contains(x))
            && self.rhs.iter().zip(rhs).all(|(iv, &x)| iv.contains(x))
    }

    /// `true` if every abstract entry of `other` lies inside the
    /// corresponding entry of `self` (i.e. `self` is the wider system).
    pub fn encloses(&self, other: &AbstractStamp) -> bool {
        self.n == other.n
            && self.mat.iter().zip(&other.mat).all(|(a, b)| a.encloses(b))
            && self.rhs.iter().zip(&other.rhs).all(|(a, b)| a.encloses(b))
    }
}

/// Magnitude bounds of one MOSFET's linearised stamps over a voltage
/// window: `(g, i)` with `|gdd|, |gdg|, |gds_node| ≤ g` and the rhs
/// Norton current bounded by `i`.
fn mosfet_bounds(params: &MosParams, window: Interval, scale: Interval) -> (f64, f64) {
    // Any terminal difference is bounded by the window span.
    let v = window.hi - window.lo;
    let beta = params.beta() * scale.hi;
    let vth = params.vth0.abs() * scale.hi;
    let lambda = params.lambda.abs() * scale.hi;
    let vov = v + vth;
    let clm = 1.0 + lambda * v;
    let core = (vov * v).max(0.5 * vov * vov);
    let i_max = beta * core * clm;
    let gm = beta * v.max(vov) * clm;
    let gds = beta * (vov * clm + core * lambda);
    let g = gm + gds;
    // i_const = id − gdd·vd − gdg·vg − gds_node·vs.
    let i = i_max + 3.0 * g * window.mag();
    (g, i)
}

/// Magnitude bounds of one diode's stamps: `(g_max, i_max)` with the
/// small-signal conductance in `[0, g_max]` (before the solver's `gmin`
/// shunt) and the rhs Norton current bounded by `i_max`.
fn diode_bounds(i_sat: f64, nvt: f64, window: Interval, scale: Interval) -> (f64, f64) {
    let i_sat = i_sat * scale.hi;
    let e = mna::DIODE_EXP_MAX.exp();
    let g = i_sat * e / nvt;
    // Past the exp clamp the current continues linearly in vd.
    let i = i_sat * e + g * (window.hi - window.lo) + g * window.mag();
    (g, i)
}

/// Abstractly interprets `plan` over `ranges`, replaying every op in the
/// concrete assembler's per-entry accumulation order on intervals.
fn abstract_plan(ckt: &Circuit, plan: &StampPlan, ranges: &Ranges) -> AbstractStamp {
    let n = plan.n;
    let gmin = NewtonOpts::default().gmin;
    let window = ranges.window_for(ckt);
    let venv = window.mag();
    let mut stamp = AbstractStamp {
        n,
        node_rows: plan.node_rows,
        mat: vec![Interval::point(0.0); n * n],
        rhs: vec![Interval::point(0.0); n],
        mat_contrib: vec![(0, 0.0); n * n],
        rhs_contrib: vec![(0, 0.0); n],
    };

    // Parameter value of the element owning a companion slot.
    let elem_value = |seq: usize| match ckt.element(ElementId(seq)) {
        Element::Capacitor { farads, .. } => *farads,
        Element::Inductor { henries, .. } => *henries,
        _ => unreachable!("companion slot owned by a non-reactive element"),
    };
    let scale = |seq: usize| ranges.scale_of(ElementId(seq));

    // Hulls of the companion conductances over the dt window: the
    // integrators in use (backward Euler geq = C/dt, trapezoidal
    // geq = 2C/dt; duals for inductors) all fall inside [0, 2·p_hi/dt_lo]
    // for capacitors and [0, dt_hi/L_lo] for inductors.
    let cap_geq_hi = |seq: usize| 2.0 * elem_value(seq) * scale(seq).hi / ranges.dt.lo;
    let ind_geq_hi = |seq: usize| ranges.dt.hi / (elem_value(seq) * scale(seq).lo);

    // Abstract value of one base/rhs0/demoted ValRef, widened by the
    // originating element's declared range.
    let eval = |val: ValRef, seq: usize| -> Interval {
        match val {
            ValRef::Const(c) => match ckt.element(ElementId(seq)) {
                // Conductance entries: resistance scale s widens g = 1/R
                // to g · [1/s_hi, 1/s_lo].
                Element::Resistor { .. } => Interval::point(c).mul(scale(seq).recip_positive()),
                // Transconductance entries scale linearly.
                Element::Vccs { .. } => Interval::point(c).mul(scale(seq)),
                // Everything else (source/inductor/VCVS incidence and
                // VCVS gains) is treated as structural and exact.
                _ => Interval::point(c),
            },
            ValRef::Gmin { sign } => Interval::point(sign * gmin),
            ValRef::CapGeq { slot: _, sign } => {
                let hi = cap_geq_hi(seq);
                if sign > 0.0 {
                    Interval::new(0.0, hi)
                } else {
                    Interval::new(-hi, 0.0)
                }
            }
            ValRef::IndGeq { slot: _, sign } => {
                let hi = ind_geq_hi(seq);
                if sign > 0.0 {
                    Interval::new(0.0, hi)
                } else {
                    Interval::new(-hi, 0.0)
                }
            }
            // History currents: bounded by the documented envelope of
            // twice the companion conductance times the voltage window.
            ValRef::CapIeq { slot: _, .. } => {
                let m = 2.0 * cap_geq_hi(seq) * venv;
                Interval::new(-m, m)
            }
            ValRef::IndIeq { .. } => {
                let m = 2.0 * ind_geq_hi(seq) * venv;
                Interval::new(-m, m)
            }
            ValRef::Src { src, sign } => {
                let id = plan.sources[src];
                let w = match ckt.element(id) {
                    Element::VoltageSource { waveform, .. }
                    | Element::CurrentSource { waveform, .. } => waveform,
                    _ => unreachable!("source list points at a non-source"),
                };
                let hull = waveform_hull(w)
                    .mul(ranges.supply_scale)
                    .mul(Interval::point(sign));
                // Explicit per-source overrides (PWM timing-fault
                // envelopes) widen the hull; the global tolerance
                // fallback deliberately does not apply to sources.
                match ranges.scale_override(id) {
                    Some(s) => hull.mul(s),
                    None => hull,
                }
            }
        }
    };

    // --- matrix: base ops, then the per-iteration ops in op order -----
    let add_mat = |stamp: &mut AbstractStamp, idx: usize, iv: Interval| {
        stamp.mat[idx] = stamp.mat[idx].add(iv);
        let c = &mut stamp.mat_contrib[idx];
        c.0 += 1;
        c.1 += iv.mag();
    };
    for (op, &seq) in plan.base_ops.iter().zip(&plan.base_elems) {
        add_mat(&mut stamp, op.idx, eval(op.val, seq));
    }
    for (op, &seq) in plan.iter_ops.iter().zip(&plan.iter_elems) {
        match *op {
            IterOp::Mat(MatOp { idx, val }) => add_mat(&mut stamp, idx, eval(val, seq)),
            IterOp::Rhs(_) => {}
            IterOp::Mosfet { rd, rg, rs, params } => {
                let (g, _) = mosfet_bounds(&params, window, scale(seq));
                // gdd ∈ [0, g] and gds_node ∈ [−g, 0] by construction of
                // the model (channel derivatives are nonnegative), gdg
                // can take either sign in reverse mode.
                let gdd = Interval::new(0.0, g);
                let gdg = Interval::new(-g, g);
                let gds_node = Interval::new(-g, 0.0);
                // When the gate row coincides with the drain row
                // (diode-connected device) or the source row (an enable
                // gate wired to a rail), two concrete stamps land on the
                // same matrix slot — and their *sum* is sign-definite
                // even though `gdg` alone is not. From the model:
                //
                // * forward (vd ≥ vs): gdd = gds, gdg = gm,
                //   gds_node = −gm − gds;
                // * reverse (vd < vs): gdd = gm_r + gds_r, gdg = −gm_r,
                //   gds_node = −gds_r;
                //
                // so gdd + gdg ∈ {gds + gm, gds_r} ⊆ [0, g] and
                // −gdg − gds_node ∈ {gds, gm_r + gds_r} ⊆ [0, g] in both
                // modes. The coincident pair is fused into one abstract
                // add so the sign information survives; `FUSE_PAD` widens
                // the fused bound outward to cover the extra rounding of
                // the two sequential concrete additions it replaces
                // (single adds stay exact by monotonicity).
                const FUSE_PAD: f64 = 1.0 + 1e-12;
                let fused_pos = Interval::new(0.0, g * FUSE_PAD);
                let fused_neg = fused_pos.neg();
                let diode_connected = rd.is_some() && rg == rd && rs != rd;
                let gate_on_source = rs.is_some() && rg == rs && rd != rs;
                if let Some(rd) = rd {
                    if diode_connected {
                        // (d,d) += gdd then (d,g)=(d,d) += gdg, fused.
                        add_mat(&mut stamp, rd * n + rd, fused_pos);
                        if let Some(rs) = rs {
                            add_mat(&mut stamp, rd * n + rs, gds_node);
                        }
                    } else if gate_on_source {
                        add_mat(&mut stamp, rd * n + rd, gdd);
                        // (d,g)=(d,s) += gdg then (d,s) += gds_node:
                        // gdg + gds_node = −(−gdg − gds_node) ∈ [−g, 0].
                        add_mat(&mut stamp, rd * n + rs.unwrap(), fused_neg);
                    } else {
                        add_mat(&mut stamp, rd * n + rd, gdd);
                        if let Some(rg) = rg {
                            add_mat(&mut stamp, rd * n + rg, gdg);
                        }
                        if let Some(rs) = rs {
                            add_mat(&mut stamp, rd * n + rs, gds_node);
                        }
                    }
                }
                if let Some(rs_row) = rs {
                    if diode_connected {
                        // (s,d) += −gdd then (s,g)=(s,d) += −gdg, fused.
                        add_mat(&mut stamp, rs_row * n + rd.unwrap(), fused_neg);
                        add_mat(&mut stamp, rs_row * n + rs_row, gds_node.neg());
                    } else if gate_on_source {
                        if let Some(rd) = rd {
                            add_mat(&mut stamp, rs_row * n + rd, gdd.neg());
                        }
                        // (s,g)=(s,s) += −gdg then (s,s) += −gds_node, fused.
                        add_mat(&mut stamp, rs_row * n + rs_row, fused_pos);
                    } else {
                        if let Some(rd) = rd {
                            add_mat(&mut stamp, rs_row * n + rd, gdd.neg());
                        }
                        if let Some(rg) = rg {
                            add_mat(&mut stamp, rs_row * n + rg, gdg.neg());
                        }
                        add_mat(&mut stamp, rs_row * n + rs_row, gds_node.neg());
                    }
                }
                // Channel gmin, in stamp order.
                let gm = Interval::point(gmin);
                if let Some(ra) = rd {
                    add_mat(&mut stamp, ra * n + ra, gm);
                    if let Some(rb) = rs {
                        add_mat(&mut stamp, ra * n + rb, gm.neg());
                    }
                }
                if let Some(rb) = rs {
                    add_mat(&mut stamp, rb * n + rb, gm);
                    if let Some(ra) = rd {
                        add_mat(&mut stamp, rb * n + ra, gm.neg());
                    }
                }
            }
            IterOp::Switch {
                ra,
                rb,
                rp,
                rn,
                threshold,
                g_on,
                g_off,
            } => {
                // Resistance scale s widens a conductance multiplicatively.
                let gscale = scale(seq).recip_positive();
                let g = if rp.is_none() && rn.is_none() {
                    // Statically resolved: the control voltage is exactly
                    // 0.0 at every concrete iteration.
                    let resolved = if 0.0 > threshold { g_on } else { g_off };
                    Interval::point(resolved).mul(gscale)
                } else {
                    Interval::hull(g_on, g_off).mul(gscale)
                };
                if let Some(ra) = ra {
                    add_mat(&mut stamp, ra * n + ra, g);
                    if let Some(rb) = rb {
                        add_mat(&mut stamp, ra * n + rb, g.neg());
                    }
                }
                if let Some(rb) = rb {
                    add_mat(&mut stamp, rb * n + rb, g);
                    if let Some(ra) = ra {
                        add_mat(&mut stamp, rb * n + ra, g.neg());
                    }
                }
            }
            IterOp::Diode { ra, rk, i_sat, nvt } => {
                let (g_hi, _) = diode_bounds(i_sat, nvt, window, scale(seq));
                let gt = Interval::new(gmin, g_hi + gmin);
                if let Some(ra) = ra {
                    add_mat(&mut stamp, ra * n + ra, gt);
                    if let Some(rk) = rk {
                        add_mat(&mut stamp, ra * n + rk, gt.neg());
                    }
                }
                if let Some(rk) = rk {
                    add_mat(&mut stamp, rk * n + rk, gt);
                    if let Some(ra) = ra {
                        add_mat(&mut stamp, rk * n + ra, gt.neg());
                    }
                }
            }
        }
    }

    // --- rhs: rhs0 ops, then the per-iteration ops in op order --------
    let add_rhs = |stamp: &mut AbstractStamp, row: usize, iv: Interval| {
        stamp.rhs[row] = stamp.rhs[row].add(iv);
        let c = &mut stamp.rhs_contrib[row];
        c.0 += 1;
        c.1 += iv.mag();
    };
    for (op, &seq) in plan.rhs0_ops.iter().zip(&plan.rhs0_elems) {
        add_rhs(&mut stamp, op.row, eval(op.val, seq));
    }
    for (op, &seq) in plan.iter_ops.iter().zip(&plan.iter_elems) {
        match *op {
            IterOp::Mat(_) | IterOp::Switch { .. } => {}
            IterOp::Rhs(RhsOp { row, val }) => add_rhs(&mut stamp, row, eval(val, seq)),
            IterOp::Mosfet { rd, rs, params, .. } => {
                let (_, i) = mosfet_bounds(&params, window, scale(seq));
                let iv = Interval::new(-i, i);
                if let Some(rd) = rd {
                    add_rhs(&mut stamp, rd, iv.neg());
                }
                if let Some(rs) = rs {
                    add_rhs(&mut stamp, rs, iv);
                }
            }
            IterOp::Diode { ra, rk, i_sat, nvt } => {
                let (_, i) = diode_bounds(i_sat, nvt, window, scale(seq));
                let iv = Interval::new(-i, i);
                if let Some(rk) = rk {
                    add_rhs(&mut stamp, rk, iv);
                }
                if let Some(ra) = ra {
                    add_rhs(&mut stamp, ra, iv.neg());
                }
            }
        }
    }

    stamp
}

/// Concretely assembles the DC system of `ckt` through its compiled
/// plan, at solution `x = 0`, time `0`, unit source scale and the
/// default `gmin` — the reference point the abstract intervals must
/// enclose. Returns `(n, mat, rhs)` with `mat` flat row-major.
pub fn concrete_dc_stamp(ckt: &Circuit) -> (usize, Vec<f64>, Vec<f64>) {
    let layout = MnaLayout::new(ckt);
    let plan = StampPlan::compile(ckt, &layout, PlanMode::Dc);
    let n = plan.n;
    let gmin = NewtonOpts::default().gmin;
    let src_vals: Vec<f64> =
        plan.sources
            .iter()
            .map(|&id| match ckt.element(id) {
                Element::VoltageSource { waveform, .. }
                | Element::CurrentSource { waveform, .. } => waveform.value(0.0),
                _ => unreachable!("source list points at a non-source"),
            })
            .collect();
    let eval = |val: ValRef| match val {
        ValRef::Const(c) => c,
        ValRef::Gmin { sign } => sign * gmin,
        ValRef::Src { src, sign } => sign * src_vals[src],
        // DC plans never reference companion slots.
        _ => unreachable!("companion reference in a DC plan"),
    };
    let mut mat = vec![0.0; n * n];
    let mut rhs = vec![0.0; n];
    for op in &plan.base_ops {
        mat[op.idx] += eval(op.val);
    }
    for op in &plan.iter_ops {
        match *op {
            IterOp::Mat(MatOp { idx, val }) => mat[idx] += eval(val),
            IterOp::Rhs(_) => {}
            IterOp::Mosfet { rd, rg, rs, params } => {
                let op = params.evaluate(0.0, 0.0, 0.0);
                if let Some(rd) = rd {
                    mat[rd * n + rd] += op.gdd;
                    if let Some(rg) = rg {
                        mat[rd * n + rg] += op.gdg;
                    }
                    if let Some(rs) = rs {
                        mat[rd * n + rs] += op.gds_node;
                    }
                }
                if let Some(rs_row) = rs {
                    if let Some(rd) = rd {
                        mat[rs_row * n + rd] += -op.gdd;
                    }
                    if let Some(rg) = rg {
                        mat[rs_row * n + rg] += -op.gdg;
                    }
                    mat[rs_row * n + rs_row] += -op.gds_node;
                }
                if let Some(ra) = rd {
                    mat[ra * n + ra] += gmin;
                    if let Some(rb) = rs {
                        mat[ra * n + rb] += -gmin;
                    }
                }
                if let Some(rb) = rs {
                    mat[rb * n + rb] += gmin;
                    if let Some(ra) = rd {
                        mat[rb * n + ra] += -gmin;
                    }
                }
            }
            IterOp::Switch {
                ra,
                rb,
                threshold,
                g_on,
                g_off,
                ..
            } => {
                // x = 0 ⇒ vc = 0 for every control connection.
                let g = if 0.0 > threshold { g_on } else { g_off };
                if let Some(ra) = ra {
                    mat[ra * n + ra] += g;
                    if let Some(rb) = rb {
                        mat[ra * n + rb] += -g;
                    }
                }
                if let Some(rb) = rb {
                    mat[rb * n + rb] += g;
                    if let Some(ra) = ra {
                        mat[rb * n + ra] += -g;
                    }
                }
            }
            IterOp::Diode { ra, rk, i_sat, nvt } => {
                // vd = 0 ⇒ i = 0, g = i_sat/nvt.
                let gt = i_sat / nvt + gmin;
                if let Some(ra) = ra {
                    mat[ra * n + ra] += gt;
                    if let Some(rk) = rk {
                        mat[ra * n + rk] += -gt;
                    }
                }
                if let Some(rk) = rk {
                    mat[rk * n + rk] += gt;
                    if let Some(ra) = ra {
                        mat[rk * n + ra] += -gt;
                    }
                }
            }
        }
    }
    for op in &plan.rhs0_ops {
        rhs[op.row] += eval(op.val);
    }
    for op in &plan.iter_ops {
        // At x = 0 every device Norton current is 0 (MOSFET cutoff,
        // diode at vd = 0), so only demoted rhs atoms contribute.
        if let IterOp::Rhs(RhsOp { row, val }) = *op {
            rhs[row] += eval(val);
        }
    }
    (n, mat, rhs)
}

/// Abstractly interprets the DC plan of `ckt` over `ranges`.
pub fn abstract_dc_stamp(ckt: &Circuit, ranges: &Ranges) -> AbstractStamp {
    let layout = MnaLayout::new(ckt);
    let plan = StampPlan::compile(ckt, &layout, PlanMode::Dc);
    abstract_plan(ckt, &plan, ranges)
}

/// Abstractly interprets the transient plan of `ckt` over `ranges`.
pub fn abstract_tran_stamp(ckt: &Circuit, ranges: &Ranges) -> AbstractStamp {
    let layout = MnaLayout::new(ckt);
    let plan = StampPlan::compile(ckt, &layout, PlanMode::Tran);
    abstract_plan(ckt, &plan, ranges)
}

// ---------------------------------------------------------------------
// Findings (MS030–MS033)
// ---------------------------------------------------------------------

/// Human-readable name of system row/column `r`.
fn row_name(ckt: &Circuit, stamp: &AbstractStamp, r: usize) -> String {
    if r < stamp.node_rows {
        ckt.node_name(NodeId(r + 1)).to_owned()
    } else {
        format!("branch{}", r - stamp.node_rows)
    }
}

/// Derives the MS030–MS033 findings from one abstract assembly. `label`
/// tags the analysed plan (`"dc plan"` / `"tran plan"`).
fn derive_findings(ckt: &Circuit, stamp: &AbstractStamp, label: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = stamp.n;

    // MS030: guaranteed-singular or sign-indefinite node-row pivots.
    let mut singular = Vec::new();
    let mut indefinite = Vec::new();
    for r in 0..stamp.node_rows {
        let d = stamp.mat_interval(r, r);
        if d.lo == 0.0 && d.hi == 0.0 {
            // A node coupled only through branch rows (e.g. pinned by a
            // source) has a legitimately zero diagonal; only rows with
            // no branch-column coupling at all are doomed.
            let coupled = (stamp.node_rows..n).any(|c| stamp.mat_interval(r, c).mag() != 0.0);
            if !coupled {
                singular.push(row_name(ckt, stamp, r));
            }
        } else if d.lo < 0.0 && 0.0 < d.hi {
            indefinite.push(row_name(ckt, stamp, r));
        }
    }
    if !singular.is_empty() || !indefinite.is_empty() {
        let mut msg = format!("{label}: ");
        if !singular.is_empty() {
            let _ = write!(
                msg,
                "diagonal guaranteed zero over the declared ranges at node(s) {} ",
                singular.join(", ")
            );
        }
        if !indefinite.is_empty() {
            let _ = write!(
                msg,
                "diagonal interval straddles zero (sign-indefinite pivot) at node(s) {}",
                indefinite.join(", ")
            );
        }
        let mut elements = singular;
        elements.extend(indefinite);
        out.push(Diagnostic {
            code: LintCode::GuaranteedSingularPivot,
            severity: LintCode::GuaranteedSingularPivot.default_severity(),
            elements,
            message: msg.trim_end().to_owned(),
            suggestion: Some(
                "add a DC path or tighten the declared parameter ranges so the pivot keeps a sign"
                    .to_owned(),
            ),
        });
    }

    // MS031: possibly non-finite / overflowing entries.
    let mut bad = Vec::new();
    for r in 0..n {
        for c in 0..n {
            let iv = stamp.mat_interval(r, c);
            if !iv.is_finite() || iv.mag() > OVERFLOW_LIMIT {
                bad.push(format!(
                    "G({},{})",
                    row_name(ckt, stamp, r),
                    row_name(ckt, stamp, c)
                ));
            }
        }
        let iv = stamp.rhs_interval(r);
        if !iv.is_finite() || iv.mag() > OVERFLOW_LIMIT {
            bad.push(format!("rhs({})", row_name(ckt, stamp, r)));
        }
    }
    if !bad.is_empty() {
        let shown = bad.iter().take(6).cloned().collect::<Vec<_>>().join(", ");
        out.push(Diagnostic {
            code: LintCode::NonFiniteStampRange,
            severity: LintCode::NonFiniteStampRange.default_severity(),
            message: format!(
                "{label}: {} stamp entr{} can reach non-finite or >1e300 values over the declared ranges ({shown})",
                bad.len(),
                if bad.len() == 1 { "y" } else { "ies" },
            ),
            elements: bad,
            suggestion: Some(
                "check for zero-valued resistances/timesteps or runaway parameter scales"
                    .to_owned(),
            ),
        });
    }

    // MS032: catastrophic cancellation in static sums.
    let mut cancelled = Vec::new();
    for r in 0..n {
        for c in 0..n {
            let idx = r * n + c;
            let (count, mag_sum) = stamp.mat_contrib[idx];
            let residual = stamp.mat[idx].mag();
            if count >= 2
                && mag_sum.is_finite()
                && mag_sum > 0.0
                && mag_sum / residual.max(1e-300) > CANCELLATION_LIMIT
            {
                cancelled.push(format!(
                    "G({},{})",
                    row_name(ckt, stamp, r),
                    row_name(ckt, stamp, c)
                ));
            }
        }
        let (count, mag_sum) = stamp.rhs_contrib[r];
        let residual = stamp.rhs[r].mag();
        if count >= 2
            && mag_sum.is_finite()
            && mag_sum > 0.0
            && mag_sum / residual.max(1e-300) > CANCELLATION_LIMIT
        {
            cancelled.push(format!("rhs({})", row_name(ckt, stamp, r)));
        }
    }
    if !cancelled.is_empty() {
        let shown = cancelled
            .iter()
            .take(6)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ");
        out.push(Diagnostic {
            code: LintCode::CatastrophicCancellation,
            severity: LintCode::CatastrophicCancellation.default_severity(),
            message: format!(
                "{label}: {} entr{} accumulate(s) contributions that cancel to less than 1e-12 of their summed magnitude ({shown})",
                cancelled.len(),
                if cancelled.len() == 1 { "y" } else { "ies" },
            ),
            elements: cancelled,
            suggestion: Some(
                "near-equal opposing stamps lose their addends' precision; restructure the netlist or expect gmin-sized pivots".to_owned(),
            ),
        });
    }

    // MS033: interval condition-number certificate via Varah's bound on
    // the node-conductance block: for a strictly diagonally dominant
    // block, ‖A⁻¹‖∞ ≤ 1/min_r(|a_rr| − Σ_{c≠r}|a_rc|), so
    // κ∞ ≤ ‖A‖∞ / min margin — evaluated at the interval endpoints the
    // bound holds for every concrete system in the envelope. Rows with
    // no node-block entries at all (nodes coupled purely through branch
    // rows) are outside the block and skipped.
    let mut norm_a = 0.0f64;
    let mut min_margin = f64::INFINITY;
    let mut dominant = true;
    let mut block_rows = 0usize;
    for r in 0..stamp.node_rows {
        let mut off = 0.0f64;
        let mut rowsum = 0.0f64;
        for c in 0..stamp.node_rows {
            let m = stamp.mat_interval(r, c).mag();
            rowsum += m;
            if c != r {
                off += m;
            }
        }
        if rowsum == 0.0 {
            continue;
        }
        block_rows += 1;
        norm_a = norm_a.max(rowsum);
        let margin = stamp.mat_interval(r, r).lo - off;
        if margin <= 0.0 {
            dominant = false;
            break;
        }
        min_margin = min_margin.min(margin);
    }
    if dominant && block_rows > 0 {
        let bound = norm_a / min_margin;
        if bound > crate::verify::CONDITIONING_SPAN_LIMIT {
            out.push(Diagnostic {
                code: LintCode::IntervalIllConditioned,
                severity: LintCode::IntervalIllConditioned.default_severity(),
                elements: Vec::new(),
                message: format!(
                    "{label}: certified condition bound of the node-conductance block is {bound:.3e} (> 1e12) over the declared ranges"
                ),
                suggestion: Some(
                    "narrow the component value spread or expect pivot-scaled precision loss"
                        .to_owned(),
                ),
            });
        }
    }

    out
}

/// The outcome of abstractly analysing one circuit: the MS030–MS033
/// findings over both compiled plans, plus the abstract systems
/// themselves for inspection.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    findings: Vec<Diagnostic>,
    dc: AbstractStamp,
    tran: AbstractStamp,
}

impl AnalyzeReport {
    /// All findings, most severe first.
    pub fn findings(&self) -> &[Diagnostic] {
        &self.findings
    }

    /// Findings at deny level.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// Findings at warn level.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// `true` if any deny-level finding is present.
    pub fn has_denials(&self) -> bool {
        self.denials().next().is_some()
    }

    /// `true` if nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The abstract DC system.
    pub fn dc_stamp(&self) -> &AbstractStamp {
        &self.dc
    }

    /// The abstract transient system.
    pub fn tran_stamp(&self) -> &AbstractStamp {
        &self.tran
    }
}

impl std::fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "analyze: clean");
        }
        for d in &self.findings {
            writeln!(f, "{d}")?;
        }
        let denies = self.denials().count();
        let warns = self.warnings().count();
        writeln!(f, "analyze: {denies} deny, {warns} warn")
    }
}

/// Abstractly interprets both compiled plans of `ckt` over `ranges` and
/// derives the MS030–MS033 findings.
pub fn analyze_circuit(ckt: &Circuit, ranges: &Ranges) -> AnalyzeReport {
    let layout = MnaLayout::new(ckt);
    let dc_plan = StampPlan::compile(ckt, &layout, PlanMode::Dc);
    let tran_plan = StampPlan::compile(ckt, &layout, PlanMode::Tran);
    let dc = abstract_plan(ckt, &dc_plan, ranges);
    let tran = abstract_plan(ckt, &tran_plan, ranges);
    let mut findings = derive_findings(ckt, &dc, "dc plan");
    findings.extend(derive_findings(ckt, &tran, "tran plan"));
    findings.sort_by_key(|d| std::cmp::Reverse(d.severity));
    AnalyzeReport { findings, dc, tran }
}

// ---------------------------------------------------------------------
// Guaranteed solution enclosures (Krawczyk + interval Gauss–Seidel)
// ---------------------------------------------------------------------

/// Maximum number of interval Gauss–Seidel refinement sweeps; each sweep
/// either strictly tightens some component or terminates the loop.
const MAX_GS_SWEEPS: usize = 64;

/// A guaranteed componentwise enclosure of the solution set of an
/// interval linear system `[A]·x = [b]`: for every concrete `A ∈ [A]`,
/// `b ∈ [b]` with `A` nonsingular, the solution `A⁻¹b` lies inside
/// `rows`. Produced by [`solve_enclosure`].
#[derive(Debug, Clone, PartialEq)]
pub struct Enclosure {
    /// Componentwise solution enclosure, or `None` when no enclosure
    /// could be certified (singular/non-finite midpoint system, or a
    /// contraction bound ≥ 1).
    pub rows: Option<Vec<Interval>>,
    /// Krawczyk contraction bound `β = ‖I − R·[A]‖∞` of the
    /// midpoint-preconditioned system; `β ≥ 1` (or ∞) is the
    /// proven-divergence early-out.
    pub beta: f64,
    /// Interval Gauss–Seidel refinement sweeps performed.
    pub sweeps: usize,
}

impl Enclosure {
    /// `true` when a guaranteed enclosure was certified.
    pub fn is_certified(&self) -> bool {
        self.rows.is_some()
    }

    fn uncertified(beta: f64) -> Self {
        Enclosure {
            rows: None,
            beta,
            sweeps: 0,
        }
    }
}

/// Turns one abstract MNA system into a guaranteed solution enclosure.
///
/// The solver is the Krawczyk operator over the midpoint-preconditioned
/// system: `R` is the LU inverse of the midpoint matrix, and when the
/// contraction bound `β = ‖I − R·[A]‖∞` is below 1 every solution lies
/// inside `x̃ ± ‖R·([b] − [A]·x̃)‖∞ / (1 − β)` around the approximate
/// midpoint solution `x̃ = R·mid([b])`. That box is then tightened by
/// interval Gauss–Seidel on `(R·[A])·x = R·[b]`, whose diagonal is
/// bounded away from zero by `1 − β`. A singular or non-finite midpoint
/// system, or `β ≥ 1`, is a *proven-divergence early-out*: no enclosure
/// is returned and the caller must fall back to simulation.
///
/// Soundness follows the module convention: endpoint arithmetic with
/// IEEE-754-monotone `+`, `×`, `÷`, and `R·([b] − [A]·x̃) ⊆ R·[b] −
/// (R·[A])·x̃` by subdistributivity, so the computed radius only ever
/// over-approximates. Dense `O(n³)` work is fine at MNA sizes.
pub fn solve_enclosure(stamp: &AbstractStamp) -> Enclosure {
    let n = stamp.size();
    if n == 0 {
        return Enclosure {
            rows: Some(Vec::new()),
            beta: 0.0,
            sweeps: 0,
        };
    }
    for r in 0..n {
        if !stamp.rhs_interval(r).is_finite() {
            return Enclosure::uncertified(f64::INFINITY);
        }
        for c in 0..n {
            if !stamp.mat_interval(r, c).is_finite() {
                return Enclosure::uncertified(f64::INFINITY);
            }
        }
    }
    // Precondition by R = inverse of the midpoint matrix.
    let mut mid = DenseMatrix::zeros(n);
    for r in 0..n {
        for c in 0..n {
            mid.set(r, c, stamp.mat_interval(r, c).mid());
        }
    }
    let mut lu = LuFactors::new(n);
    if lu.factor_from(&mid).is_err() {
        return Enclosure::uncertified(f64::INFINITY);
    }
    // R column by column (row-major).
    let mut rmat = vec![0.0; n * n];
    for j in 0..n {
        let mut col = vec![0.0; n];
        col[j] = 1.0;
        lu.solve(&mut col);
        for (i, &v) in col.iter().enumerate() {
            if !v.is_finite() {
                return Enclosure::uncertified(f64::INFINITY);
            }
            rmat[i * n + j] = v;
        }
    }
    // M = R·[A]; β = ‖I − M‖∞.
    let mut m = vec![Interval::point(0.0); n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = Interval::point(0.0);
            for k in 0..n {
                acc = acc.add(Interval::point(rmat[i * n + k]).mul(stamp.mat_interval(k, j)));
            }
            m[i * n + j] = acc;
        }
    }
    let mut beta = 0.0f64;
    for i in 0..n {
        let mut row = 0.0;
        for j in 0..n {
            let c = if i == j {
                Interval::point(1.0).sub(m[i * n + j])
            } else {
                m[i * n + j].neg()
            };
            row += c.mag();
        }
        beta = beta.max(row);
    }
    // NaN β (from non-finite interval products) must also refuse to
    // certify, so the comparison is written to send NaN to the early-out.
    if beta.is_nan() || beta >= 1.0 {
        return Enclosure::uncertified(beta);
    }
    // r = R·[b] and the approximate midpoint solution x̃ = R·mid([b]).
    let mut rvec = vec![Interval::point(0.0); n];
    let mut xt = vec![0.0; n];
    for i in 0..n {
        let mut acc = Interval::point(0.0);
        let mut mid_acc = 0.0;
        for k in 0..n {
            acc = acc.add(Interval::point(rmat[i * n + k]).mul(stamp.rhs_interval(k)));
            mid_acc += rmat[i * n + k] * stamp.rhs_interval(k).mid();
        }
        rvec[i] = acc;
        xt[i] = mid_acc;
    }
    if xt.iter().any(|v| !v.is_finite()) {
        return Enclosure::uncertified(beta);
    }
    // Krawczyk box: x̃ ± ‖z‖∞/(1−β) with z = R·[b] − M·x̃.
    let mut znorm = 0.0f64;
    for i in 0..n {
        let mut acc = rvec[i];
        for j in 0..n {
            acc = acc.sub(m[i * n + j].mul(Interval::point(xt[j])));
        }
        znorm = znorm.max(acc.mag());
    }
    if !znorm.is_finite() {
        return Enclosure::uncertified(beta);
    }
    let rad = znorm / (1.0 - beta);
    let mut x: Vec<Interval> = xt
        .iter()
        .map(|&v| Interval::new(v - rad, v + rad))
        .collect();
    // Interval Gauss–Seidel on M·x = r: every concrete solution already
    // inside the box stays inside each tightened component, and the
    // diagonal `M_ii ∋ 1 − C_ii` keeps away from zero because |C_ii| ≤
    // β < 1, so the checked division always succeeds.
    let mut sweeps = 0;
    while sweeps < MAX_GS_SWEEPS {
        let mut improved = false;
        for i in 0..n {
            let mut acc = rvec[i];
            for j in 0..n {
                if j != i {
                    acc = acc.sub(m[i * n + j].mul(x[j]));
                }
            }
            let Some(q) = acc.checked_div(m[i * n + i]) else {
                continue;
            };
            // A numerically empty intersection can only come from
            // accumulated rounding; keep the proven outer component.
            if let Some(tight) = q.intersect(&x[i]) {
                if tight.lo > x[i].lo || tight.hi < x[i].hi {
                    improved = true;
                }
                x[i] = tight;
            }
        }
        sweeps += 1;
        if !improved {
            break;
        }
    }
    Enclosure {
        rows: Some(x),
        beta,
        sweeps,
    }
}

/// A circuit's guaranteed DC solution enclosure, addressable by node.
/// Produced by [`dc_enclosure`].
#[derive(Debug, Clone, PartialEq)]
pub struct DcEnclosure {
    enclosure: Enclosure,
    /// System row of each node id (ground and branch-only ids map to
    /// `None`).
    node_row: Vec<Option<usize>>,
}

impl DcEnclosure {
    /// `true` when the solver certified an enclosure.
    pub fn is_certified(&self) -> bool {
        self.enclosure.is_certified()
    }

    /// Krawczyk contraction bound β of the preconditioned system.
    pub fn beta(&self) -> f64 {
        self.enclosure.beta
    }

    /// Interval Gauss–Seidel sweeps spent refining the enclosure.
    pub fn sweeps(&self) -> usize {
        self.enclosure.sweeps
    }

    /// Guaranteed DC voltage enclosure of `node` (ground is exactly 0),
    /// or `None` when no enclosure was certified.
    pub fn node_interval(&self, node: NodeId) -> Option<Interval> {
        if node.index() == 0 {
            return Some(Interval::point(0.0));
        }
        let row = (*self.node_row.get(node.index())?)?;
        self.enclosure.rows.as_ref().map(|rows| rows[row])
    }
}

/// Computes the guaranteed enclosure of every DC node voltage of `ckt`
/// over `ranges`: abstract DC assembly ([`abstract_dc_stamp`]) followed
/// by the interval solver ([`solve_enclosure`]).
pub fn dc_enclosure(ckt: &Circuit, ranges: &Ranges) -> DcEnclosure {
    let layout = MnaLayout::new(ckt);
    let plan = StampPlan::compile(ckt, &layout, PlanMode::Dc);
    let stamp = abstract_plan(ckt, &plan, ranges);
    let node_row = (0..ckt.node_count())
        .map(|i| layout.node_row(NodeId(i)))
        .collect();
    DcEnclosure {
        enclosure: solve_enclosure(&stamp),
        node_row,
    }
}

// ---------------------------------------------------------------------
// Static verdict triage
// ---------------------------------------------------------------------

/// Pre-classification of one fault class by the static triage tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StaticVerdict {
    /// The guaranteed output-error enclosure lies entirely inside the
    /// masked band: every in-envelope circuit settles masked.
    GuaranteedMasked,
    /// The guaranteed output-error enclosure lies entirely beyond the
    /// fail threshold: every in-envelope circuit is a functional fail.
    GuaranteedFail,
    /// Nothing could be certified either way; the transient/rescue
    /// pipeline decides.
    NeedsSimulation,
}

impl StaticVerdict {
    /// Stable machine-readable tag (used in exported JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            StaticVerdict::GuaranteedMasked => "guaranteed_masked",
            StaticVerdict::GuaranteedFail => "guaranteed_fail",
            StaticVerdict::NeedsSimulation => "needs_simulation",
        }
    }
}

/// The Eq. 2 classification bands triage compares an enclosure against:
/// `|Vout − center| ≤ masked` is masked, `> fail` is a functional fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictBands {
    /// Analytic settled output voltage (the band center).
    pub center: f64,
    /// Masked epsilon, volts.
    pub masked: f64,
    /// Functional-fail epsilon, volts.
    pub fail: f64,
}

/// Outcome of statically triaging one circuit against [`VerdictBands`].
#[derive(Debug, Clone, PartialEq)]
pub struct TriageVerdict {
    /// The static verdict.
    pub verdict: StaticVerdict,
    /// Guaranteed Vout enclosure, when one was certified.
    pub vout: Option<Interval>,
    /// Guaranteed `|Vout − center|` enclosure, when one was certified.
    pub error: Option<Interval>,
    /// Krawczyk contraction bound β of the DC system.
    pub beta: f64,
    /// MS034 (`enclosure-unbounded`) / MS035 (`verdict-certified`)
    /// diagnostics derived from the attempt.
    pub diagnostics: Vec<Diagnostic>,
}

/// Statically triages `ckt`: computes the guaranteed DC enclosure of the
/// `output` node over `ranges` and compares it against `bands`.
///
/// A certified enclosure whose error band falls entirely inside the
/// masked band yields [`StaticVerdict::GuaranteedMasked`]; entirely past
/// the fail threshold yields [`StaticVerdict::GuaranteedFail`] (both
/// reported as MS035). Anything else — including an uncertified
/// enclosure, reported as MS034 — is [`StaticVerdict::NeedsSimulation`].
/// The enclosure is sound for the *settled* output of the monotone RC
/// networks the campaign engine drives (see DESIGN.md §13), and the
/// `NeedsSimulation` bucket absorbs every case where that certification
/// does not apply.
pub fn triage_circuit(
    ckt: &Circuit,
    output: NodeId,
    ranges: &Ranges,
    bands: &VerdictBands,
) -> TriageVerdict {
    let enc = dc_enclosure(ckt, ranges);
    let out_name = ckt.node_name(output).to_owned();
    match enc.node_interval(output) {
        Some(iv) if iv.is_finite() => {
            let err_hi = (iv.lo - bands.center)
                .abs()
                .max((iv.hi - bands.center).abs());
            let err_lo = if iv.contains(bands.center) {
                0.0
            } else {
                (iv.lo - bands.center)
                    .abs()
                    .min((iv.hi - bands.center).abs())
            };
            let err = Interval::new(err_lo, err_hi);
            let verdict = if err.hi <= bands.masked {
                StaticVerdict::GuaranteedMasked
            } else if err.lo > bands.fail {
                StaticVerdict::GuaranteedFail
            } else {
                StaticVerdict::NeedsSimulation
            };
            let mut diagnostics = Vec::new();
            if verdict != StaticVerdict::NeedsSimulation {
                diagnostics.push(Diagnostic {
                    code: LintCode::VerdictCertified,
                    severity: LintCode::VerdictCertified.default_severity(),
                    elements: vec![out_name],
                    message: format!(
                        "settled output certified {} without simulation: Vout ∈ [{:.6}, {:.6}] V vs analytic {:.6} V (β = {:.3e})",
                        verdict.tag(),
                        iv.lo,
                        iv.hi,
                        bands.center,
                        enc.beta()
                    ),
                    suggestion: None,
                });
            }
            TriageVerdict {
                verdict,
                vout: Some(iv),
                error: Some(err),
                beta: enc.beta(),
                diagnostics,
            }
        }
        _ => TriageVerdict {
            verdict: StaticVerdict::NeedsSimulation,
            vout: None,
            error: None,
            beta: enc.beta(),
            diagnostics: vec![Diagnostic {
                code: LintCode::EnclosureUnbounded,
                severity: LintCode::EnclosureUnbounded.default_severity(),
                elements: vec![out_name],
                message: format!(
                    "no guaranteed solution enclosure: contraction bound β = {:.3e} (≥ 1 means the preconditioned intervals are too wide to contract)",
                    enc.beta()
                ),
                suggestion: Some(
                    "tighten the declared ranges, or let the transient pipeline decide".to_owned(),
                ),
            }],
        },
    }
}

// ---------------------------------------------------------------------
// Canonical plan keys and static fault collapsing
// ---------------------------------------------------------------------

/// Canonical identity of everything a (rescued) transient consumes from
/// a circuit: both compiled plans with statically resolved switches,
/// source waveforms, reactive parameters and initial conditions, all at
/// exact bit patterns. Equal keys ⇒ bitwise-identical simulations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey(String);

/// Serialises one plan into `out` (see [`plan_key`]).
fn push_plan(out: &mut String, ckt: &Circuit, plan: &StampPlan) {
    let b = |x: f64| x.to_bits();
    let _ = write!(
        out,
        "P{};{};{:?};{};{}|",
        plan.n, plan.node_rows, plan.mode, plan.n_cap_slots, plan.n_ind_slots
    );
    let push_val = |out: &mut String, val: ValRef| {
        match val {
            ValRef::Const(c) => {
                let _ = write!(out, "C{:x}", b(c));
            }
            ValRef::Gmin { sign } => {
                let _ = write!(out, "g{:x}", b(sign));
            }
            ValRef::CapGeq { slot, sign } => {
                let _ = write!(out, "cg{slot}:{:x}", b(sign));
            }
            ValRef::IndGeq { slot, sign } => {
                let _ = write!(out, "lg{slot}:{:x}", b(sign));
            }
            ValRef::CapIeq { slot, sign } => {
                let _ = write!(out, "ci{slot}:{:x}", b(sign));
            }
            ValRef::IndIeq { slot } => {
                let _ = write!(out, "li{slot}");
            }
            ValRef::Src { src, sign } => {
                let _ = write!(out, "s{src}:{:x}", b(sign));
            }
        };
        out.push(',');
    };
    for op in &plan.base_ops {
        let _ = write!(out, "B{}=", op.idx);
        push_val(out, op.val);
    }
    for op in &plan.rhs0_ops {
        let _ = write!(out, "R{}=", op.row);
        push_val(out, op.val);
    }
    for op in &plan.iter_ops {
        match *op {
            IterOp::Mat(MatOp { idx, val }) => {
                let _ = write!(out, "IM{idx}=");
                push_val(out, val);
            }
            IterOp::Rhs(RhsOp { row, val }) => {
                let _ = write!(out, "IR{row}=");
                push_val(out, val);
            }
            IterOp::Mosfet { rd, rg, rs, params } => {
                let _ = write!(
                    out,
                    "M{rd:?}{rg:?}{rs:?}:{:?}:{:x}:{:x}:{:x}:{:x}:{:x},",
                    params.polarity,
                    b(params.w),
                    b(params.l),
                    b(params.vth0),
                    b(params.kp),
                    b(params.lambda)
                );
            }
            IterOp::Switch {
                ra,
                rb,
                rp,
                rn,
                threshold,
                g_on,
                g_off,
            } => {
                if rp.is_none() && rn.is_none() {
                    // Statically resolved: the control voltage is exactly
                    // 0.0 at runtime, so only the taken branch's
                    // conductance is ever read.
                    let resolved = if 0.0 > threshold { g_on } else { g_off };
                    let _ = write!(out, "SR{ra:?}{rb:?}:{:x},", b(resolved));
                } else {
                    let _ = write!(
                        out,
                        "S{ra:?}{rb:?}{rp:?}{rn:?}:{:x}:{:x}:{:x},",
                        b(threshold),
                        b(g_on),
                        b(g_off)
                    );
                }
            }
            IterOp::Diode { ra, rk, i_sat, nvt } => {
                let _ = write!(out, "D{ra:?}{rk:?}:{:x}:{:x},", b(i_sat), b(nvt));
            }
        }
    }
    // Waveforms are read live by the solver; their exact shapes are part
    // of the identity. Debug formatting of f64 round-trips the value.
    for &id in &plan.sources {
        match ckt.element(id) {
            Element::VoltageSource { waveform, .. } | Element::CurrentSource { waveform, .. } => {
                let _ = write!(out, "W{waveform:?};");
            }
            _ => unreachable!("source list points at a non-source"),
        }
    }
}

/// Computes the canonical transient-identity key of `ckt`: both compiled
/// plans (with statically resolved switches collapsed to their taken
/// branch), every source waveform, and the reactive parameters and
/// initial conditions the companion integrators consume.
pub fn plan_key(ckt: &Circuit) -> PlanKey {
    let layout = MnaLayout::new(ckt);
    let mut out = String::new();
    push_plan(
        &mut out,
        ckt,
        &StampPlan::compile(ckt, &layout, PlanMode::Dc),
    );
    push_plan(
        &mut out,
        ckt,
        &StampPlan::compile(ckt, &layout, PlanMode::Tran),
    );
    // Companion inputs and initial conditions live outside the plan.
    for (_, _, elem) in ckt.elements() {
        match elem {
            Element::Capacitor {
                farads,
                initial_voltage,
                ..
            } => {
                let _ = write!(
                    out,
                    "c{:x}:{:x};",
                    farads.to_bits(),
                    initial_voltage.to_bits()
                );
            }
            Element::Inductor {
                henries,
                initial_current,
                ..
            } => {
                let _ = write!(
                    out,
                    "l{:x}:{:x};",
                    henries.to_bits(),
                    initial_current.to_bits()
                );
            }
            _ => {}
        }
    }
    PlanKey(out)
}

/// Role of one fault inside a collapsed campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseMember {
    /// The fault's plan key equals the golden netlist's: replicate the
    /// golden verdict without simulating.
    Golden,
    /// First fault of its key class: simulate it.
    Representative,
    /// Same key as an earlier fault: replicate that fault's verdict.
    /// The payload is the index of the representative in the input
    /// universe.
    ReplicaOf(usize),
}

/// A collapsed fault universe: one entry per input fault plus the class
/// statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collapse {
    /// Role of each input fault, in universe order.
    pub members: Vec<CollapseMember>,
    /// Number of distinct key classes (the golden class counts as one
    /// when populated).
    pub n_classes: usize,
    /// Number of faults requiring their own transient.
    pub n_simulated: usize,
    /// Number of faults statically indistinguishable from golden.
    pub n_golden: usize,
}

/// Statically collapses `faults` against the `golden` netlist: faults
/// whose applied circuit has the same canonical [`plan_key`] replay
/// bit-identical simulations, so one representative transient per class
/// suffices and golden-equivalent faults need none at all. Faults whose
/// application fails are kept as representatives (the campaign engine
/// owns the error reporting).
pub fn collapse_faults(golden: &Circuit, faults: &[LabeledFault]) -> Collapse {
    let golden_key = plan_key(golden);
    let mut first_of: HashMap<PlanKey, usize> = HashMap::new();
    let mut members = Vec::with_capacity(faults.len());
    let mut n_simulated = 0;
    let mut n_golden = 0;
    for (i, lf) in faults.iter().enumerate() {
        let member = match lf.fault.apply(golden) {
            Ok(faulty) => {
                let key = plan_key(&faulty);
                if key == golden_key {
                    n_golden += 1;
                    CollapseMember::Golden
                } else {
                    match first_of.entry(key) {
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(i);
                            n_simulated += 1;
                            CollapseMember::Representative
                        }
                        std::collections::hash_map::Entry::Occupied(o) => {
                            CollapseMember::ReplicaOf(*o.get())
                        }
                    }
                }
            }
            Err(_) => {
                n_simulated += 1;
                CollapseMember::Representative
            }
        };
        members.push(member);
    }
    Collapse {
        members,
        n_classes: first_of.len() + usize::from(n_golden > 0),
        n_simulated,
        n_golden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{single_fault_universe, UniverseConfig, OPEN_OHMS};
    use crate::lint::LintCode;
    use crate::waveform::Jitter;

    /// The mixed fixture from `verify.rs`: every element family except
    /// switches, structurally sound.
    fn mixed_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.5));
        ckt.resistor("R1", vin, mid, 1e3);
        ckt.inductor("L1", mid, out, 1e-6);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        ckt.resistor("R2", out, Circuit::GND, 1e4);
        ckt.mosfet(
            "M1",
            mid,
            vin,
            Circuit::GND,
            MosParams::nmos(320e-9, 1.2e-6),
        );
        ckt.diode("D1", out, Circuit::GND, 1e-14, 1.0);
        ckt
    }

    /// A switch pair mirroring the adder topology: one statically-OFF
    /// pull-up (both controls ground, positive threshold) and one
    /// statically-ON pull-down (negative threshold).
    fn switch_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.switch(
            "SU",
            vdd,
            out,
            Circuit::GND,
            Circuit::GND,
            1.25,
            5e3,
            OPEN_OHMS,
        );
        ckt.switch(
            "SD",
            out,
            Circuit::GND,
            Circuit::GND,
            Circuit::GND,
            -1.25,
            5e3,
            OPEN_OHMS,
        );
        ckt.capacitor("Cout", out, Circuit::GND, 1e-12);
        ckt
    }

    #[test]
    fn interval_arithmetic_basics() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-3.0, 0.5);
        assert_eq!(a.add(b), Interval::new(-2.0, 2.5));
        assert_eq!(a.mul(b), Interval::new(-6.0, 1.0));
        assert_eq!(b.neg(), Interval::new(-0.5, 3.0));
        assert!(a.contains(1.5) && !a.contains(2.5));
        assert!(Interval::new(0.0, 3.0).encloses(&a));
        assert!(!a.encloses(&b));
        assert_eq!(b.mag(), 3.0);
        assert!(!Interval::new(f64::NEG_INFINITY, 0.0).is_finite());
    }

    #[test]
    fn clean_fixtures_are_deny_clean_even_widened() {
        let ranges = Ranges::default()
            .with_tolerance(0.05)
            .with_supply_scale(0.9, 1.0);
        for ckt in [mixed_circuit(), switch_circuit()] {
            let report = analyze_circuit(&ckt, &ranges);
            assert!(!report.has_denials(), "unexpected denials:\n{report}");
        }
    }

    /// Regression: coincident gate rows must not make a rail diagonal
    /// sign-indefinite. A diode-connected PMOS mirror (gate = drain, as
    /// in the comparator bias leg) and an enable PMOS with its gate
    /// wired to the source rail (as in a NAND pull-up with the enable
    /// input tied high) both put `gm` stamps on a diagonal; the fused
    /// bounds keep those diagonals nonnegative.
    #[test]
    fn coincident_gate_rows_stay_deny_clean() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let bias = ckt.node("bias");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.0));
        // Diode-connected mirror: d = g = bias, s = vdd.
        ckt.mosfet("MMir", bias, bias, vdd, MosParams::pmos(640e-9, 60e-9));
        ckt.resistor("Rb", bias, Circuit::GND, 50e3);
        // Enable pull-up with gate tied to its own source rail.
        ckt.mosfet("MPB", out, vdd, vdd, MosParams::pmos(640e-9, 60e-9));
        ckt.resistor("Rl", out, Circuit::GND, 10e3);
        let ranges = Ranges::default()
            .with_tolerance(0.05)
            .with_supply_scale(0.9, 1.0);
        let report = analyze_circuit(&ckt, &ranges);
        assert!(
            !report.has_denials(),
            "coincident-gate fixture must analyze clean:\n{report}"
        );
        // The fused stamps must still enclose the concrete assembly at
        // the x = 0 reference (cutoff: every channel derivative is 0).
        let (_, mat, rhs) = concrete_dc_stamp(&ckt);
        let stamp = abstract_dc_stamp(&ckt, &ranges);
        assert!(stamp.encloses_concrete(&mat, &rhs));
        // And the rail diagonals are sign-definite, not straddling.
        let layout = MnaLayout::new(&ckt);
        for node in ["vdd", "bias"] {
            let row = layout.node_row(ckt.find_node(node).unwrap()).unwrap();
            let diag = stamp.mat_interval(row, row);
            assert!(
                diag.lo >= 0.0 && diag.hi > 0.0,
                "{node} diagonal must be nonnegative, got {diag:?}"
            );
        }
    }

    #[test]
    fn abstract_dc_stamp_encloses_the_concrete_assembly() {
        for ckt in [mixed_circuit(), switch_circuit()] {
            let (n, mat, rhs) = concrete_dc_stamp(&ckt);
            let stamp = abstract_dc_stamp(&ckt, &Ranges::default());
            assert_eq!(stamp.size(), n);
            assert!(stamp.encloses_concrete(&mat, &rhs));
            // And a widened envelope encloses the point one.
            let wide = abstract_dc_stamp(&ckt, &Ranges::default().with_tolerance(0.1));
            assert!(wide.encloses(&stamp));
        }
    }

    /// MS030 mutation: cancelling a node diagonal to an exact zero (and
    /// with tolerance, to a sign-straddling interval) must fire exactly
    /// the singular-pivot code.
    #[test]
    fn ms030_fires_on_cancelled_diagonal() {
        let ckt = switch_circuit();
        let layout = MnaLayout::new(&ckt);
        let mut plan = StampPlan::compile(&ckt, &layout, PlanMode::Dc);
        // The `out` node row: cancel everything on its diagonal with one
        // synthetic const contribution attributed to the capacitor.
        let out_row = layout.node_row(ckt.find_node("out").unwrap()).unwrap();
        let idx = out_row * plan.n + out_row;
        let stamp = abstract_plan(&ckt, &plan, &Ranges::default());
        let diag = stamp.mat_interval(out_row, out_row);
        assert!(diag.lo == diag.hi && diag.lo > 0.0, "need a point diagonal");
        // Append the cancelling contribution as a trailing iteration op
        // so the abstract accumulation ends with `x + (-x)`, an exact
        // zero.
        let cap_seq = ckt.find_element("Cout").unwrap().index();
        plan.iter_ops.push(IterOp::Mat(MatOp {
            idx,
            val: ValRef::Const(-diag.lo),
        }));
        plan.iter_elems.push(cap_seq);
        let mutated = abstract_plan(&ckt, &plan, &Ranges::default());
        let findings = derive_findings(&ckt, &mutated, "dc plan");
        assert!(
            findings
                .iter()
                .any(|d| d.code == LintCode::GuaranteedSingularPivot
                    && d.elements.iter().any(|e| e == "out")),
            "MS030 must fire: {findings:?}"
        );
        assert!(findings
            .iter()
            .all(|d| d.code != LintCode::NonFiniteStampRange));
    }

    /// MS031 mutation: an overflow-scale const must fire exactly the
    /// non-finite-range code.
    #[test]
    fn ms031_fires_on_overflowing_entry() {
        let ckt = mixed_circuit();
        let layout = MnaLayout::new(&ckt);
        let mut plan = StampPlan::compile(&ckt, &layout, PlanMode::Dc);
        let r1_seq = ckt.find_element("R1").unwrap().index();
        plan.base_ops.push(MatOp {
            idx: 0,
            val: ValRef::Const(1e305),
        });
        plan.base_elems.push(r1_seq);
        let stamp = abstract_plan(&ckt, &plan, &Ranges::default());
        let findings = derive_findings(&ckt, &stamp, "dc plan");
        assert!(
            findings
                .iter()
                .any(|d| d.code == LintCode::NonFiniteStampRange),
            "MS031 must fire: {findings:?}"
        );
        assert!(findings
            .iter()
            .all(|d| d.code != LintCode::GuaranteedSingularPivot));
    }

    /// MS032 mutation: two huge opposing contributions that cancel to a
    /// tiny residual must fire exactly the cancellation code.
    #[test]
    fn ms032_fires_on_catastrophic_cancellation() {
        let ckt = mixed_circuit();
        let layout = MnaLayout::new(&ckt);
        let mut plan = StampPlan::compile(&ckt, &layout, PlanMode::Dc);
        // `vin` carries only R1's conductance on its diagonal (no wide
        // device intervals that would mask the cancellation), and its
        // branch coupling to V1 keeps MS030 out of the picture.
        let vin_row = layout.node_row(ckt.find_node("vin").unwrap()).unwrap();
        let idx = vin_row * plan.n + vin_row;
        let r1_seq = ckt.find_element("R1").unwrap().index();
        for v in [1e15, -1e15] {
            plan.base_ops.push(MatOp {
                idx,
                val: ValRef::Const(v),
            });
            plan.base_elems.push(r1_seq);
        }
        let stamp = abstract_plan(&ckt, &plan, &Ranges::default());
        let findings = derive_findings(&ckt, &stamp, "dc plan");
        assert!(
            findings
                .iter()
                .any(|d| d.code == LintCode::CatastrophicCancellation
                    && d.elements.iter().any(|e| e.contains("vin"))),
            "MS032 must fire: {findings:?}"
        );
        assert!(findings
            .iter()
            .all(|d| d.code != LintCode::NonFiniteStampRange));
    }

    /// MS033 mutation: a conductance spread beyond twelve decades in a
    /// diagonally dominant block must fire exactly the interval
    /// condition certificate.
    #[test]
    fn ms033_fires_on_extreme_conductance_spread() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor("Rsmall", a, Circuit::GND, 1e-3);
        ckt.resistor("Rbig", b, Circuit::GND, 1e12);
        let report = analyze_circuit(&ckt, &Ranges::default());
        assert!(
            report
                .findings()
                .iter()
                .any(|d| d.code == LintCode::IntervalIllConditioned),
            "MS033 must fire: {report}"
        );
        assert!(report
            .findings()
            .iter()
            .all(|d| d.code != LintCode::GuaranteedSingularPivot));
        // A mild spread stays silent.
        let mut ok = Circuit::new();
        let c = ok.node("c");
        ok.resistor("R1", c, Circuit::GND, 1e3);
        assert!(analyze_circuit(&ok, &Ranges::default()).is_clean());
    }

    /// Satellite audit: every one of the 13 `Fault` variants must
    /// declare a non-point envelope for its affected element — a point
    /// envelope would let the triage tier certify a faulted circuit
    /// from golden-identical intervals.
    #[test]
    fn ranges_for_fault_covers_all_thirteen_variants() {
        let mixed = mixed_circuit();
        let sw = switch_circuit();
        let r1 = mixed.find_element("R1").unwrap();
        let c1 = mixed.find_element("C1").unwrap();
        let m1 = mixed.find_element("M1").unwrap();
        let v1 = mixed.find_element("V1").unwrap();
        let su = sw.find_element("SU").unwrap();
        let out = mixed.find_node("out").unwrap();
        let nonpoint = |r: &Ranges, id: ElementId| {
            let s = r.scale_of(id);
            assert!(s.width() > 0.0, "point envelope for {id}: {s:?}");
        };
        // Switches: both stuck polarities span nominal and forced value.
        nonpoint(&Ranges::for_fault(&Fault::SwitchStuckOpen(su), &sw), su);
        nonpoint(&Ranges::for_fault(&Fault::SwitchStuckClosed(su), &sw), su);
        // MOSFETs: starved channel / added drain–source short.
        nonpoint(&Ranges::for_fault(&Fault::MosfetStuckOpen(m1), &mixed), m1);
        nonpoint(&Ranges::for_fault(&Fault::MosfetStuckShort(m1), &mixed), m1);
        // Resistors: hard faults span the forced factor, drift is exact.
        nonpoint(&Ranges::for_fault(&Fault::ResistorOpen(r1), &mixed), r1);
        nonpoint(&Ranges::for_fault(&Fault::ResistorShort(r1), &mixed), r1);
        let drift = Ranges::for_fault(
            &Fault::ResistorDrift {
                id: r1,
                factor: 2.0,
            },
            &mixed,
        );
        assert_eq!(drift.scale_of(r1), Interval::new(1.0, 2.0));
        // Capacitor leak widens the capacitor's own envelope.
        nonpoint(
            &Ranges::for_fault(&Fault::CapacitorLeak { id: c1, ohms: 1e5 }, &mixed),
            c1,
        );
        // A bridge has no single element to widen: the global tolerance
        // blows up instead, so every element (fault site included) is
        // non-point.
        let bridge = Ranges::for_fault(
            &Fault::NetBridge {
                a: out,
                b: Circuit::GND,
                ohms: 100.0,
            },
            &mixed,
        );
        nonpoint(&bridge, r1);
        nonpoint(&bridge, c1);
        // Supplies: droop keeps the exact window, brownout spans 0..=1.
        let droop = Ranges::for_fault(
            &Fault::SupplyDroop {
                id: v1,
                factor: 0.9,
            },
            &mixed,
        );
        assert_eq!(droop.supply_scale, Interval::new(0.9, 1.0));
        let brownout = Ranges::for_fault(
            &Fault::SupplyBrownout {
                id: v1,
                v_low: 0.5,
                t_start: 1e-7,
                t_end: 5e-7,
                t_ramp: 1e-8,
            },
            &mixed,
        );
        assert!(brownout.supply_scale.width() > 0.0);
        // PWM timing faults widen the driving source's envelope.
        nonpoint(
            &Ranges::for_fault(
                &Fault::PwmJitter {
                    id: v1,
                    jitter: Jitter::edges(1, 0.05, 64),
                },
                &mixed,
            ),
            v1,
        );
        nonpoint(
            &Ranges::for_fault(&Fault::PwmDutyShift { id: v1, delta: 0.1 }, &mixed),
            v1,
        );
    }

    /// 2.5 V through a 1k/3k divider: analytic out = 1.875 V.
    fn divider_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.5));
        ckt.resistor("R1", vin, out, 1e3);
        ckt.resistor("R2", out, Circuit::GND, 3e3);
        ckt
    }

    /// The certified DC enclosure must contain every corner draw of the
    /// widened divider, and degenerate to a point at point ranges.
    #[test]
    fn dc_enclosure_encloses_divider_corners() {
        let ckt = divider_circuit();
        let out = ckt.find_node("out").unwrap();
        let enc = dc_enclosure(&ckt, &Ranges::default().with_tolerance(0.05));
        assert!(enc.is_certified(), "β = {}", enc.beta());
        let iv = enc.node_interval(out).unwrap();
        for s1 in [0.95, 1.0, 1.05] {
            for s2 in [0.95, 1.0, 1.05] {
                let v = 2.5 * (3e3 * s2) / (1e3 * s1 + 3e3 * s2);
                assert!(iv.contains(v), "corner {v} outside {iv:?}");
            }
        }
        let tight = dc_enclosure(&ckt, &Ranges::default());
        let iv = tight.node_interval(out).unwrap();
        assert!(iv.contains(1.875) && iv.width() < 1e-9, "{iv:?}");
        // Ground is exactly zero by convention.
        assert_eq!(
            tight.node_interval(Circuit::GND),
            Some(Interval::point(0.0))
        );
    }

    /// MS035 mutation: a certifiable point-range divider is statically
    /// masked against its analytic band and statically failed against a
    /// distant one — both certified, neither emits MS034.
    #[test]
    fn ms035_fires_on_certified_verdicts() {
        let ckt = divider_circuit();
        let out = ckt.find_node("out").unwrap();
        let bands = VerdictBands {
            center: 1.875,
            masked: 0.05,
            fail: 0.25,
        };
        let t = triage_circuit(&ckt, out, &Ranges::default(), &bands);
        assert_eq!(t.verdict, StaticVerdict::GuaranteedMasked);
        assert!(t
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::VerdictCertified && d.severity == Severity::Info));
        assert!(t
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::EnclosureUnbounded));
        assert!(t.error.unwrap().hi <= bands.masked);
        let far = VerdictBands {
            center: 0.0,
            masked: 0.05,
            fail: 0.25,
        };
        let t = triage_circuit(&ckt, out, &Ranges::default(), &far);
        assert_eq!(t.verdict, StaticVerdict::GuaranteedFail);
        assert!(
            t.diagnostics
                .iter()
                .any(|d| d.code == LintCode::VerdictCertified
                    && d.message.contains("guaranteed_fail"))
        );
    }

    /// MS034 mutation: the maximal (bridge-style) envelope defeats the
    /// contraction bound; triage falls back to simulation, says why, and
    /// does not emit the certification info code.
    #[test]
    fn ms034_fires_when_enclosure_cannot_be_certified() {
        let ckt = divider_circuit();
        let out = ckt.find_node("out").unwrap();
        let wide = Ranges::default().with_tolerance(0.999);
        let enc = dc_enclosure(&ckt, &wide);
        assert!(!enc.is_certified());
        assert!(enc.beta() >= 1.0, "β = {}", enc.beta());
        let bands = VerdictBands {
            center: 1.875,
            masked: 0.05,
            fail: 0.25,
        };
        let t = triage_circuit(&ckt, out, &wide, &bands);
        assert_eq!(t.verdict, StaticVerdict::NeedsSimulation);
        assert!(t.vout.is_none() && t.error.is_none());
        assert!(t
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::EnclosureUnbounded && d.severity == Severity::Warn));
        assert!(t
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::VerdictCertified));
    }

    /// The load-bearing triage case for the campaign gate: a stuck-closed
    /// pull-up hard-shorts `out` to the rail, and the enclosure of the
    /// *applied* faulty netlist certifies the functional fail with no
    /// transient.
    #[test]
    fn triage_certifies_stuck_closed_switch_fail() {
        let golden = switch_circuit();
        let su = golden.find_element("SU").unwrap();
        let faulty = Fault::SwitchStuckClosed(su).apply(&golden).unwrap();
        let out = faulty.find_node("out").unwrap();
        // Golden out sits at ~0 V (pull-down ON, pull-up OFF).
        let bands = VerdictBands {
            center: 0.0,
            masked: 0.05,
            fail: 0.25,
        };
        let t = triage_circuit(&faulty, out, &Ranges::default(), &bands);
        assert_eq!(t.verdict, StaticVerdict::GuaranteedFail, "β = {}", t.beta);
        let vout = t.vout.unwrap();
        assert!(
            vout.lo > 2.0,
            "shorted output must sit near the rail: {vout:?}"
        );
    }

    /// An empty system is trivially certified; a non-finite stamp is a
    /// proven early-out, not a panic.
    #[test]
    fn solve_enclosure_handles_degenerate_systems() {
        let ckt = Circuit::new();
        let layout = MnaLayout::new(&ckt);
        let plan = StampPlan::compile(&ckt, &layout, PlanMode::Dc);
        let stamp = abstract_plan(&ckt, &plan, &Ranges::default());
        let enc = solve_enclosure(&stamp);
        assert_eq!(enc.rows, Some(Vec::new()));
        // A singular (all-zero) system: one floating node.
        let mut floating = Circuit::new();
        let a = floating.node("a");
        let b = floating.node("b");
        floating.resistor("R1", a, b, 1e3);
        let layout = MnaLayout::new(&floating);
        let plan = StampPlan::compile(&floating, &layout, PlanMode::Dc);
        let stamp = abstract_plan(&floating, &plan, &Ranges::default());
        assert!(!solve_enclosure(&stamp).is_certified());
    }

    #[test]
    fn plan_key_is_deterministic_and_discriminates() {
        let ckt = switch_circuit();
        assert_eq!(plan_key(&ckt), plan_key(&ckt));
        // A waveform change must change the key.
        let mut other = switch_circuit();
        other
            .set_waveform(other.find_element("VDD").unwrap(), Waveform::dc(2.4))
            .unwrap();
        assert_ne!(plan_key(&ckt), plan_key(&other));
        // So must a resolved-conductance change on a statically-OFF
        // switch (its selected branch is g_off) — while a change to the
        // dormant g_on branch leaves the key untouched.
        let mut third = switch_circuit();
        let su = third.find_element("SU").unwrap();
        third.set_switch_resistances(su, 4e3, OPEN_OHMS).unwrap();
        assert_eq!(plan_key(&ckt), plan_key(&third));
        third
            .set_switch_resistances(su, 5e3, OPEN_OHMS / 2.0)
            .unwrap();
        assert_ne!(plan_key(&ckt), plan_key(&third));
    }

    /// Stuck-open on a statically-OFF switch leaves the resolved
    /// conductance untouched, so it collapses into the golden class;
    /// stuck-closed on a statically-ON switch changes the selected
    /// conductance and must not.
    #[test]
    fn collapse_matches_static_switch_analysis() {
        let ckt = switch_circuit();
        let su = ckt.find_element("SU").unwrap();
        let sd = ckt.find_element("SD").unwrap();
        let faults = vec![
            LabeledFault::new("SU", Fault::SwitchStuckOpen(su)),
            LabeledFault::new("SD", Fault::SwitchStuckClosed(sd)),
            LabeledFault::new("SD2", Fault::SwitchStuckOpen(sd)),
        ];
        let collapse = collapse_faults(&ckt, &faults);
        assert_eq!(collapse.members[0], CollapseMember::Golden);
        assert_eq!(collapse.members[1], CollapseMember::Representative);
        assert_eq!(collapse.members[2], CollapseMember::Representative);
        assert_eq!(collapse.n_golden, 1);
        assert_eq!(collapse.n_simulated, 2);
        assert_eq!(collapse.n_classes, 3);
    }

    #[test]
    fn collapse_groups_identical_faulty_plans() {
        let ckt = switch_circuit();
        let su = ckt.find_element("SU").unwrap();
        // The same fault listed twice: the second entry replicates the
        // first (both differ from golden — SU is OFF, but stuck-closed
        // changes its resolved conductance).
        let faults = vec![
            LabeledFault::new("a", Fault::SwitchStuckClosed(su)),
            LabeledFault::new("b", Fault::SwitchStuckClosed(su)),
        ];
        let collapse = collapse_faults(&ckt, &faults);
        assert_eq!(collapse.members[0], CollapseMember::Representative);
        assert_eq!(collapse.members[1], CollapseMember::ReplicaOf(0));
        assert_eq!(collapse.n_simulated, 1);
        assert_eq!(collapse.n_classes, 1);
    }

    #[test]
    fn collapse_covers_the_generic_universe_without_denials() {
        let ckt = switch_circuit();
        let universe = single_fault_universe(&ckt, &UniverseConfig::default());
        assert!(!universe.is_empty());
        let collapse = collapse_faults(&ckt, &universe);
        assert_eq!(collapse.members.len(), universe.len());
        assert!(collapse.n_simulated + collapse.n_golden <= universe.len());
        // Every fault has a resolvable role.
        for m in &collapse.members {
            if let CollapseMember::ReplicaOf(i) = m {
                assert_eq!(collapse.members[*i], CollapseMember::Representative);
            }
        }
    }
}
