//! Solver hot-path microbenchmarks: compiled stamp plan vs the naive
//! per-iteration reference assembler, on the circuit shapes the paper's
//! experiments run all day (PWM-driven CMOS inverter, switch-level
//! weighted adder, RC ladder).
//!
//! The circuits are hand-rolled here rather than borrowed from `pwmcell`
//! because a dev-dependency on `pwmcell` would create a cycle; they match
//! the topologies of `pwmcell::PwmNode` / `pwmcell::SwitchAdder` at the
//! paper's technology numbers (2.5 V, 500 MHz PWM, 100 kΩ / binary-scaled
//! output network).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mssim::elements::MosParams;
use mssim::prelude::*;

const VDD: f64 = 2.5;
const FREQ: f64 = 500e6;
const ROUT: f64 = 100e3;
const R_OFF: f64 = 1e12;

/// CMOS inverter driving its output capacitor from a PWM gate drive —
/// the paper's Fig. 2 transcoding cell.
fn mos_inverter() -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(VDD));
    ckt.vsource("VIN", g, Circuit::GND, Waveform::pwm(VDD, FREQ, 0.7));
    ckt.mosfet("MP", out, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
    ckt.mosfet("MN", out, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
    ckt.capacitor("COUT", out, Circuit::GND, 1e-12);
    ckt
}

/// Switch-level k×n weighted adder: per set weight bit, a complementary
/// pull-up/pull-down switch pair with binary-scaled on-resistance onto a
/// shared output capacitor (the topology of `pwmcell::SwitchAdder`).
fn switch_adder(inputs: usize, bits: u32, duties: &[f64]) -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(VDD));
    for i in 0..inputs {
        let input = ckt.node(&format!("in{i}"));
        ckt.vsource(
            &format!("VIN{i}"),
            input,
            Circuit::GND,
            Waveform::pwm(VDD, FREQ, duties[i % duties.len()]),
        );
        for b in 0..bits {
            let scale = (1u32 << b) as f64;
            let r_on = ROUT / scale;
            ckt.switch(
                &format!("SU{i}b{b}"),
                vdd,
                out,
                input,
                Circuit::GND,
                VDD / 2.0,
                r_on,
                R_OFF,
            );
            ckt.switch(
                &format!("SD{i}b{b}"),
                out,
                Circuit::GND,
                Circuit::GND,
                input,
                -VDD / 2.0,
                r_on,
                R_OFF,
            );
        }
    }
    ckt.capacitor("COUT", out, Circuit::GND, 10e-12);
    ckt
}

/// Purely linear RC ladder driven by a PWM source: isolates the
/// factorization-reuse and solution-cache wins with no Newton iteration.
fn rc_ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    ckt.vsource("VIN", prev, Circuit::GND, Waveform::pwm(VDD, FREQ, 0.5));
    for s in 1..=stages {
        let node = ckt.node(&format!("n{s}"));
        ckt.resistor(&format!("R{s}"), prev, node, 1e3);
        ckt.capacitor(&format!("C{s}"), node, Circuit::GND, 1e-12);
        prev = node;
    }
    ckt
}

/// Times a fixed-step transient on both solver paths.
fn bench_transient(c: &mut Criterion, group_name: &str, ckt: &Circuit, dt: f64, steps: usize) {
    let tran = |reference: bool| {
        Transient::new(dt, steps as f64 * dt)
            .use_initial_conditions()
            .record_every(64)
            .with_reference_solver(reference)
    };
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(steps as u64));
    group.sample_size(10);
    group.bench_function("plan", |b| {
        b.iter(|| {
            Session::new(black_box(ckt))
                .transient(&tran(false))
                .unwrap()
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| Session::new(black_box(ckt)).transient(&tran(true)).unwrap())
    });
    group.finish();
}

fn inverter_transient(c: &mut Criterion) {
    let ckt = mos_inverter();
    bench_transient(c, "tran_inverter", &ckt, 10e-12, 2000);
}

fn adder3x3_transient(c: &mut Criterion) {
    let ckt = switch_adder(3, 3, &[0.7, 0.8, 0.9]);
    bench_transient(c, "tran_adder3x3", &ckt, 10e-12, 2000);
}

fn rc_ladder_transient(c: &mut Criterion) {
    let ckt = rc_ladder(32);
    bench_transient(c, "tran_rc_ladder32", &ckt, 10e-12, 2000);
}

fn inverter_vtc_dcsweep(c: &mut Criterion) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(VDD));
    let vg = ckt.vsource("VG", g, Circuit::GND, Waveform::dc(0.0));
    ckt.mosfet("MP", out, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
    ckt.mosfet("MN", out, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
    ckt.resistor("RL", out, Circuit::GND, 10e6);
    let points = mssim::sweep::linspace(0.0, VDD, 101);

    let mut group = c.benchmark_group("dcsweep_inverter_vtc");
    group.throughput(Throughput::Elements(points.len() as u64));
    group.sample_size(10);
    group.bench_function("plan", |b| {
        b.iter(|| Session::new(&ckt).dc_sweep(vg, black_box(&points)).unwrap())
    });
    group.bench_function("reference", |b| {
        b.iter(|| mssim::analysis::dc_sweep_reference(ckt.clone(), vg, black_box(&points)).unwrap())
    });
    group.finish();
}

criterion_group!(
    hot_path,
    inverter_transient,
    adder3x3_transient,
    rc_ladder_transient,
    inverter_vtc_dcsweep,
);
criterion_main!(hot_path);
