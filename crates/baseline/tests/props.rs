//! Property-based tests: the gate-level datapath against integer
//! arithmetic.

use baseline::{BaselineSpec, DigitalPerceptron};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dot product equals the integer reference for random vectors.
    #[test]
    fn dot_product_matches_integers(
        x in prop::collection::vec(0u64..16, 3),
        w in prop::collection::vec(0u64..8, 3),
    ) {
        let p = DigitalPerceptron::new(BaselineSpec::new(3, 4, 3));
        let expect: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        prop_assert_eq!(p.dot_product(&x, &w), expect);
    }

    /// classify ⇔ dot > threshold, for thresholds bracketing the value.
    #[test]
    fn classify_is_threshold_comparison(
        x in prop::collection::vec(0u64..16, 2),
        w in prop::collection::vec(0u64..8, 2),
        offset in 0u64..5,
    ) {
        let p = DigitalPerceptron::new(BaselineSpec::new(2, 4, 3));
        let dot: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        prop_assert_eq!(p.classify(&x, &w, dot + offset), false);
        if dot > offset {
            prop_assert_eq!(p.classify(&x, &w, dot - offset - 1), true);
        }
    }
}
