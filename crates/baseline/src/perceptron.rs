//! Gate-level fixed-point perceptron datapath.

use gatesim::blocks::{self, drive_word, read_word};
use gatesim::{NetId, Netlist, PowerModel, PowerReport, Simulator};
use rand_like::XorShift64;

/// Dimensions of the digital baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineSpec {
    /// Number of inputs `m`.
    pub inputs: usize,
    /// Input sample width in bits.
    pub input_bits: u32,
    /// Weight width in bits.
    pub weight_bits: u32,
}

impl BaselineSpec {
    /// Creates a spec, validating dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0` or either width is outside `1..=16`.
    pub fn new(inputs: usize, input_bits: u32, weight_bits: u32) -> Self {
        assert!(inputs > 0, "perceptron needs at least one input");
        assert!(
            (1..=16).contains(&input_bits) && (1..=16).contains(&weight_bits),
            "bit widths must be 1..=16"
        );
        BaselineSpec {
            inputs,
            input_bits,
            weight_bits,
        }
    }

    /// The configuration matched to the paper's 3×3 case study: 3 inputs
    /// with 3-bit weights, 8-bit input samples (a typical micro-edge ADC
    /// resolution standing in for the continuous PWM duty cycle).
    pub fn matched_to_paper() -> Self {
        BaselineSpec::new(3, 8, 3)
    }

    /// Width of the accumulated dot product in bits.
    pub fn sum_bits(self) -> u32 {
        let product = self.input_bits + self.weight_bits;
        let tree = (self.inputs as f64).log2().ceil() as u32;
        product + tree
    }
}

/// A combinational fixed-point perceptron: `m` array multipliers, a
/// ripple adder tree, and a magnitude comparator producing
/// `f = (Σ xᵢ·wᵢ) > threshold`.
///
/// The threshold plays the role of the (negated) bias in the paper's
/// Eq. 1, matching the reference comparison of Fig. 1.
#[derive(Debug)]
pub struct DigitalPerceptron {
    spec: BaselineSpec,
    netlist: Netlist,
    /// Input buses, `[input][bit]`, LSB-first.
    pub inputs: Vec<Vec<NetId>>,
    /// Weight buses, `[input][bit]`, LSB-first.
    pub weights: Vec<Vec<NetId>>,
    /// Threshold bus (same width as the sum), LSB-first.
    pub threshold: Vec<NetId>,
    /// Accumulated dot-product bus.
    pub sum: Vec<NetId>,
    /// Decision output: high when the dot product exceeds the threshold.
    pub output: NetId,
}

impl DigitalPerceptron {
    /// Builds the datapath.
    pub fn new(spec: BaselineSpec) -> Self {
        let mut nl = Netlist::new();
        let mut inputs = Vec::with_capacity(spec.inputs);
        let mut weights = Vec::with_capacity(spec.inputs);
        let mut products: Vec<Vec<NetId>> = Vec::with_capacity(spec.inputs);
        for i in 0..spec.inputs {
            let x: Vec<NetId> = (0..spec.input_bits)
                .map(|b| nl.net(&format!("x{i}_{b}")))
                .collect();
            let w: Vec<NetId> = (0..spec.weight_bits)
                .map(|b| nl.net(&format!("w{i}_{b}")))
                .collect();
            let p = blocks::array_multiplier(&mut nl, &x, &w);
            inputs.push(x);
            weights.push(w);
            products.push(p);
        }

        // Adder tree by sequential folding with zero extension.
        let sum_bits = spec.sum_bits() as usize;
        let extend = |nl: &mut Netlist, bus: &[NetId], width: usize| -> Vec<NetId> {
            let mut v = bus.to_vec();
            while v.len() < width {
                v.push(blocks::const_zero(nl));
            }
            v
        };
        let mut acc = extend(&mut nl, &products[0], sum_bits);
        for p in &products[1..] {
            let rhs = extend(&mut nl, p, sum_bits);
            let (s, _carry) = blocks::ripple_adder(&mut nl, &acc, &rhs, None);
            acc = s;
        }

        let threshold: Vec<NetId> = (0..sum_bits).map(|b| nl.net(&format!("th{b}"))).collect();
        // f = threshold < sum  ⇔  sum > threshold.
        let output = blocks::less_than(&mut nl, &threshold, &acc);

        DigitalPerceptron {
            spec,
            netlist: nl,
            inputs,
            weights,
            threshold,
            sum: acc,
            output,
        }
    }

    /// The datapath dimensions.
    pub fn spec(&self) -> BaselineSpec {
        self.spec
    }

    /// The underlying gate netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Total transistor count — the paper's area/simplicity metric.
    pub fn transistor_count(&self) -> usize {
        self.netlist.transistor_count()
    }

    /// Worst-case settling allowance for one evaluation, in picoseconds.
    fn settle_ps(&self) -> u64 {
        // Generous: gate count on the critical path is far below this.
        let depth = (self.spec.sum_bits() as u64 + 4)
            * (self.spec.inputs as u64 + self.spec.weight_bits as u64 + 4);
        depth * 4 * blocks::BLOCK_DELAY_PS
    }

    /// Evaluates the dot product for one input/weight assignment.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the spec or values exceed the
    /// configured bit widths.
    pub fn dot_product(&self, x: &[u64], w: &[u64]) -> u64 {
        let mut sim = Simulator::new(&self.netlist);
        self.drive(&mut sim, x, w, 0);
        let t = sim.time() + self.settle_ps();
        sim.run_until(t);
        read_word(&sim, &self.sum)
    }

    /// Classifies one sample: `Σ xᵢ·wᵢ > threshold`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the spec or values exceed the
    /// configured bit widths.
    pub fn classify(&self, x: &[u64], w: &[u64], threshold: u64) -> bool {
        let mut sim = Simulator::new(&self.netlist);
        self.drive(&mut sim, x, w, threshold);
        let t = sim.time() + self.settle_ps();
        sim.run_until(t);
        sim.value(self.output)
    }

    /// Streams `samples` random input vectors through the datapath at one
    /// vector per `period_ps` and reports the activity-based power.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn measure_power(
        &self,
        weights: &[u64],
        samples: usize,
        period_ps: u64,
        model: &PowerModel,
        seed: u64,
    ) -> PowerReport {
        assert!(samples > 0, "need at least one sample");
        let mut rng = XorShift64::new(seed);
        let mut sim = Simulator::new(&self.netlist);
        let x_max = (1u64 << self.spec.input_bits) - 1;
        // Warm-up vector, then measure.
        let x0: Vec<u64> = (0..self.spec.inputs)
            .map(|_| rng.next() % (x_max + 1))
            .collect();
        self.drive(&mut sim, &x0, weights, 0);
        sim.run_until(sim.time() + self.settle_ps());
        sim.reset_activity();
        let t_start = sim.time();
        for _ in 0..samples {
            let x: Vec<u64> = (0..self.spec.inputs)
                .map(|_| rng.next() % (x_max + 1))
                .collect();
            for (bus, &value) in self.inputs.iter().zip(&x) {
                drive_word(&mut sim, bus, value);
            }
            sim.run_until(sim.time() + period_ps);
        }
        let duration = sim.time() - t_start;
        model.estimate(&self.netlist, &sim, duration.max(1))
    }

    fn drive(&self, sim: &mut Simulator<'_>, x: &[u64], w: &[u64], threshold: u64) {
        assert_eq!(x.len(), self.spec.inputs, "one sample per input");
        assert_eq!(w.len(), self.spec.inputs, "one weight per input");
        let x_max = (1u64 << self.spec.input_bits) - 1;
        let w_max = (1u64 << self.spec.weight_bits) - 1;
        for (&xi, &wi) in x.iter().zip(w) {
            assert!(
                xi <= x_max,
                "input {xi} exceeds {} bits",
                self.spec.input_bits
            );
            assert!(
                wi <= w_max,
                "weight {wi} exceeds {} bits",
                self.spec.weight_bits
            );
        }
        for (bus, &value) in self.inputs.iter().zip(x) {
            drive_word(sim, bus, value);
        }
        for (bus, &value) in self.weights.iter().zip(w) {
            drive_word(sim, bus, value);
        }
        drive_word(sim, &self.threshold, threshold);
    }
}

/// Minimal deterministic RNG so the crate does not depend on `rand` in the
/// library path (dev-dependencies still use `rand` for richer tests).
mod rand_like {
    /// XorShift64* pseudo-random generator.
    #[derive(Debug, Clone)]
    pub struct XorShift64 {
        state: u64,
    }

    impl XorShift64 {
        /// Creates a generator; a zero seed is remapped to a fixed
        /// non-zero constant.
        pub fn new(seed: u64) -> Self {
            XorShift64 {
                state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
            }
        }

        /// Next pseudo-random value.
        pub fn next(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_and_paper_match() {
        let s = BaselineSpec::matched_to_paper();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.input_bits, 8);
        assert_eq!(s.weight_bits, 3);
        assert_eq!(s.sum_bits(), 8 + 3 + 2);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_panics() {
        let _ = BaselineSpec::new(0, 8, 3);
    }

    #[test]
    fn dot_product_exhaustive_small() {
        // 2 inputs × 2-bit samples × 2-bit weights: fully exhaustive.
        let p = DigitalPerceptron::new(BaselineSpec::new(2, 2, 2));
        for x0 in 0..4u64 {
            for x1 in 0..4u64 {
                for w0 in 0..4u64 {
                    for w1 in 0..4u64 {
                        let got = p.dot_product(&[x0, x1], &[w0, w1]);
                        assert_eq!(got, x0 * w0 + x1 * w1, "{x0}*{w0} + {x1}*{w1}");
                    }
                }
            }
        }
    }

    #[test]
    fn classify_thresholds_correctly() {
        let p = DigitalPerceptron::new(BaselineSpec::new(3, 4, 3));
        let x = [10u64, 3, 7];
        let w = [2u64, 5, 1];
        let dot = 10 * 2 + 3 * 5 + 7; // 42
        assert_eq!(p.dot_product(&x, &w), dot);
        assert!(p.classify(&x, &w, dot - 1));
        assert!(!p.classify(&x, &w, dot));
        assert!(!p.classify(&x, &w, dot + 5));
    }

    #[test]
    fn transistor_count_dwarfs_the_pwm_adder() {
        let p = DigitalPerceptron::new(BaselineSpec::matched_to_paper());
        let t = p.transistor_count();
        // The paper's PWM adder does the same weighted sum in 54.
        assert!(t > 20 * 54, "digital MAC = {t} transistors");
    }

    #[test]
    fn transistor_count_grows_with_precision() {
        let small = DigitalPerceptron::new(BaselineSpec::new(3, 4, 3)).transistor_count();
        let large = DigitalPerceptron::new(BaselineSpec::new(3, 8, 3)).transistor_count();
        assert!(large > small);
    }

    #[test]
    fn power_measurement_is_positive_and_deterministic() {
        let p = DigitalPerceptron::new(BaselineSpec::new(2, 4, 2));
        let model = PowerModel::umc65_like();
        let r1 = p.measure_power(&[3, 1], 20, 10_000, &model, 42);
        let r2 = p.measure_power(&[3, 1], 20, 10_000, &model, 42);
        assert!(r1.dynamic_watts > 0.0);
        assert_eq!(r1.total_toggles, r2.total_toggles);
        assert_eq!(r1.transistors, p.transistor_count());
    }

    #[test]
    fn power_scales_with_rate() {
        let p = DigitalPerceptron::new(BaselineSpec::new(2, 4, 2));
        let model = PowerModel::umc65_like();
        let slow = p.measure_power(&[3, 1], 30, 40_000, &model, 7);
        let fast = p.measure_power(&[3, 1], 30, 10_000, &model, 7);
        assert!(
            fast.dynamic_watts > 2.0 * slow.dynamic_watts,
            "fast {} vs slow {}",
            fast.dynamic_watts,
            slow.dynamic_watts
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_input_panics() {
        let p = DigitalPerceptron::new(BaselineSpec::new(2, 2, 2));
        let _ = p.dot_product(&[4, 0], &[1, 1]);
    }
}
