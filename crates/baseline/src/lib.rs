//! # baseline — a conventional digital perceptron for comparison
//!
//! The paper's Section IV argues the PWM approach is dramatically simpler
//! than a conventional digital perceptron: "the proposed approach uses
//! only one gate per bit for every input. Thus, for the 3×3 weighted adder
//! we used only 54 transistors." This crate makes the other side of that
//! comparison concrete: a gate-level fixed-point multiply–accumulate
//! perceptron datapath ([`DigitalPerceptron`]) built from the
//! [`gatesim::blocks`] standard cells, with transistor counting and
//! activity-based power estimation.
//!
//! ```
//! use baseline::{BaselineSpec, DigitalPerceptron};
//!
//! let p = DigitalPerceptron::new(BaselineSpec::new(3, 8, 3));
//! // A 3-input, 8-bit-sample, 3-bit-weight MAC costs thousands of
//! // transistors, versus the paper's 54 for the PWM adder.
//! assert!(p.transistor_count() > 1000);
//! assert!(p.classify(&[200, 10, 10], &[7, 1, 1], 800));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod perceptron;

pub use perceptron::{BaselineSpec, DigitalPerceptron};
