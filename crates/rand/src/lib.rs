//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this path crate provides the small slice of the `rand 0.8` API the
//! workspace actually uses: [`rngs::StdRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and of ample quality for Monte-Carlo experiments and tests. It is
//! **not** the ChaCha12 generator real `rand` uses for `StdRng`, so streams
//! differ from upstream; nothing in this workspace depends on the exact
//! stream, only on determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their "natural" domain:
/// `[0, 1)` for floats, the full value range for integers.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the type's natural domain (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased integer in `[0, bound)` by rejection sampling (Lemire-style
/// threshold on the low word).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone size: 2^64 mod bound.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // Scale by the next-up of the span so `hi` itself is reachable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = rng.gen_range(0usize..=4);
            seen[k] = true;
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
