//! The complete Fig. 1 perceptron, closed at transistor level.
//!
//! The paper validates the weighted adder and argues the rest of Fig. 1
//! (reference + comparator) by construction. This module actually builds
//! it: the Fig. 3 adder drives one input of a [`DiffComparator`]; the
//! other input comes from a **resistive divider off the supply rail** —
//! the ratiometric reference that makes the decision power-elastic.
//! Total: 54 (adder) + 6 (comparator) = 60 transistors plus passives for
//! a complete 3×3 classifier.

use mssim::prelude::*;

use crate::adder::{AdderSpec, WeightedAdder};
use crate::comparator::DiffComparator;
use crate::tech::Technology;
use crate::testbench::SimQuality;

/// Handles to a complete perceptron circuit.
#[derive(Debug, Clone)]
pub struct PerceptronCircuit {
    /// The weighted adder.
    pub adder: WeightedAdder,
    /// The decision comparator.
    pub comparator: DiffComparator,
    /// The divider-derived reference node.
    pub reference: NodeId,
    /// The digital decision output.
    pub output: NodeId,
}

impl PerceptronCircuit {
    /// Instantiates adder + divider reference + comparator.
    ///
    /// `ref_fraction` sets the reference to `ref_fraction · Vdd` via a
    /// resistive divider (total 200 kΩ so it loads the supply, not the
    /// adder). For comparator common-mode validity keep it within
    /// `0.3..=0.65`.
    ///
    /// # Panics
    ///
    /// Panics if `ref_fraction` is outside `0.3..=0.65`, or on the usual
    /// name/weight validation of [`WeightedAdder::build`].
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        vdd: NodeId,
        weights: &[u32],
        spec: AdderSpec,
        ref_fraction: f64,
    ) -> Self {
        assert!(
            (0.3..=0.65).contains(&ref_fraction),
            "reference fraction must stay in the comparator's common-mode range"
        );
        let adder =
            WeightedAdder::build(circuit, tech, &format!("{prefix}_add"), vdd, weights, spec);
        let reference = circuit.node(&format!("{prefix}_ref"));
        let r_total = 200e3;
        circuit.resistor(
            &format!("{prefix}_Rrt"),
            vdd,
            reference,
            r_total * (1.0 - ref_fraction),
        );
        circuit.resistor(
            &format!("{prefix}_Rrb"),
            reference,
            Circuit::GND,
            r_total * ref_fraction,
        );
        // Light decoupling only: the comparator input is a MOS gate (no
        // kickback), and a heavy capacitor would make the reference the
        // slowest node in the circuit (τ_ref = 50 kΩ·C).
        circuit.capacitor(&format!("{prefix}_Cref"), reference, Circuit::GND, 100e-15);
        let comparator = DiffComparator::build(
            circuit,
            tech,
            &format!("{prefix}_cmp"),
            adder.output,
            reference,
            vdd,
        );
        let output = comparator.output;
        PerceptronCircuit {
            adder,
            comparator,
            reference,
            output,
        }
    }

    /// Total transistor count (adder + comparator).
    pub fn transistor_count(&self) -> usize {
        self.adder.transistor_count() + DiffComparator::TRANSISTORS
    }
}

/// End-to-end transistor-level classification harness.
#[derive(Debug, Clone)]
pub struct PerceptronTestbench {
    tech: Technology,
    spec: AdderSpec,
    ref_fraction: f64,
}

impl PerceptronTestbench {
    /// Harness for the paper's 3×3 perceptron with the given ratiometric
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if `ref_fraction` is outside `0.3..=0.65`.
    pub fn new(tech: &Technology, spec: AdderSpec, ref_fraction: f64) -> Self {
        assert!(
            (0.3..=0.65).contains(&ref_fraction),
            "reference fraction must stay in the comparator's common-mode range"
        );
        PerceptronTestbench {
            tech: tech.clone(),
            spec,
            ref_fraction,
        }
    }

    /// Transistor count of the circuit under test.
    pub fn transistor_count(&self) -> usize {
        self.spec.transistor_count() + DiffComparator::TRANSISTORS
    }

    /// Builds the full circuit, applies the PWM inputs, runs a transient
    /// at supply `vdd`, and reads the digital decision (comparator output
    /// averaged over the final period, thresholded at Vdd/2).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `duties`/`weights` lengths do not match the spec.
    pub fn classify(
        &self,
        duties: &[f64],
        weights: &[u32],
        vdd: Volts,
        quality: &SimQuality,
    ) -> Result<bool, Error> {
        assert_eq!(duties.len(), self.spec.inputs, "one duty per input");
        let frequency = self.tech.frequency;
        let period = frequency.period().value();

        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        ckt.vsource("VDD", vdd_node, Circuit::GND, Waveform::dc(vdd.value()));
        let dut = PerceptronCircuit::build(
            &mut ckt,
            &self.tech,
            "dut",
            vdd_node,
            weights,
            self.spec,
            self.ref_fraction,
        );
        for (i, &d) in duties.iter().enumerate() {
            ckt.vsource(
                &format!("VIN{i}"),
                dut.adder.inputs[i],
                Circuit::GND,
                Waveform::pwm_with_edges(
                    vdd.value(),
                    frequency.value(),
                    d,
                    self.tech.edge_fraction(frequency),
                ),
            );
        }

        // Settle the adder output (the slowest node) then sample.
        let ron = 0.5 * (self.tech.ron_n().value() + self.tech.ron_p().value());
        let units = self.spec.inputs as f64 * self.spec.max_weight() as f64;
        let tau = (self.tech.rout.value() + ron) / units * self.tech.cout_adder.value();
        let settle = ((quality.settle_time_constants * tau / period).ceil() as usize)
            .max(quality.min_settle_periods);
        let total = (settle + quality.measure_periods).min(quality.max_total_periods);
        let result = Session::new(&ckt).transient(
            &Transient::new(
                period / quality.steps_per_period as f64,
                total as f64 * period,
            )
            .use_initial_conditions(),
        )?;
        let v_out = result
            .voltage(dut.output)
            .steady_state_average(period, quality.measure_periods);
        Ok(v_out > 0.5 * vdd.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;

    /// Fast technology for debug-speed tests.
    fn quick_tech() -> Technology {
        let mut t = Technology::umc65_like();
        t.cout_adder = mssim::units::Farads(500e-15);
        t.frequency = mssim::units::Hertz(50e6);
        t
    }

    #[test]
    fn full_perceptron_decides_correctly() {
        let tech = quick_tech();
        let tb = PerceptronTestbench::new(&tech, AdderSpec::paper_3x3(), 0.5);
        assert_eq!(tb.transistor_count(), 62);
        let q = SimQuality::fast();
        // Strong case: Eq.2 gives 2.0 V ≫ 1.25 V reference.
        let high = tb
            .classify(&[0.7, 0.8, 0.9], &[7, 7, 7], Volts(2.5), &q)
            .unwrap();
        assert!(high, "2.0 V > 1.25 V must fire");
        // Weak case: 0.42 V ≪ 1.25 V.
        let low = tb
            .classify(&[0.5, 0.5, 0.5], &[1, 2, 4], Volts(2.5), &q)
            .unwrap();
        assert!(!low, "0.42 V < 1.25 V must not fire");
    }

    #[test]
    fn full_perceptron_is_power_elastic() {
        // Same (ratiometric) decision at 2.5 V and 1.8 V: both the adder
        // output and the divider reference scale with the rail.
        let tech = quick_tech();
        let tb = PerceptronTestbench::new(&tech, AdderSpec::paper_3x3(), 0.5);
        let q = SimQuality::fast();
        for vdd in [2.5, 1.8] {
            // Eq.2 ratio = 0.167 ≪ 0.5 → must NOT fire. (A ratio within
            // a few tens of mV of the reference is legitimately inside
            // the comparator's offset budget, so test decisive rows.)
            let high = tb
                .classify(&[0.5, 0.5, 0.5], &[1, 2, 4], Volts(vdd), &q)
                .unwrap();
            assert!(!high, "ratio 0.167 < 0.5 at vdd={vdd}");
            let fire = tb
                .classify(&[0.95, 0.9, 0.8], &[7, 6, 6], Volts(vdd), &q)
                .unwrap();
            // Ratio 0.80 > 0.5 → fires.
            assert!(fire, "ratio 0.80 > 0.5 at vdd={vdd}");
        }
    }

    #[test]
    fn decision_follows_the_analytic_boundary() {
        // Sweep one duty across the boundary; the transistor-level
        // decision must flip where Eq. 2 crosses the reference (within
        // the comparator offset + ripple budget of one LSB).
        let tech = quick_tech();
        let tb = PerceptronTestbench::new(&tech, AdderSpec::paper_3x3(), 0.5);
        let q = SimQuality::fast();
        let weights = [7u32, 7, 7];
        // With d2 = d3 = 0.5: Eq.2 ratio = (d1 + 1.0)/3 → crosses 0.5 at
        // d1 = 0.5. Stay one LSB away from the boundary on both sides.
        let low = tb
            .classify(&[0.30, 0.5, 0.5], &weights, Volts(2.5), &q)
            .unwrap();
        let high = tb
            .classify(&[0.70, 0.5, 0.5], &weights, Volts(2.5), &q)
            .unwrap();
        assert!(!low && high, "boundary must lie between d1=0.30 and 0.70");
        // Cross-check the boundary location analytically.
        let v_low = analytic::adder_vout(2.5, &[0.30, 0.5, 0.5], &weights, 3);
        let v_high = analytic::adder_vout(2.5, &[0.70, 0.5, 0.5], &weights, 3);
        assert!(v_low < 1.25 && v_high > 1.25);
    }

    #[test]
    #[should_panic(expected = "common-mode range")]
    fn extreme_reference_is_rejected() {
        let tech = quick_tech();
        let _ = PerceptronTestbench::new(&tech, AdderSpec::paper_3x3(), 0.9);
    }
}
