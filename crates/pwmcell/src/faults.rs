//! Curated fault universes for the paper's cells.
//!
//! [`mssim::faults::single_fault_universe`] enumerates the generic
//! per-element universe (stuck switches, open/short/drifted resistors,
//! leaky capacitors, drooping supplies, jittery PWM sources); this module
//! layers the topology knowledge the generic pass cannot have — which
//! nets are physically adjacent and therefore plausible bridge-defect
//! candidates. The result is the campaign input for `repro faults`.
//!
//! All enumerations preserve netlist insertion order and derive bridge
//! sets from the handles' own node lists, so the universe of a given
//! netlist is deterministic across runs and platforms.

use mssim::faults::{single_fault_universe, Fault, LabeledFault, UniverseConfig};
use mssim::prelude::{Circuit, NodeId};

use crate::adder::{SwitchAdder, WeightedAdder};
use crate::inverter::Inverter;
use crate::perceptron_circuit::PerceptronCircuit;

/// Resistance of a curated bridge defect, ohms. Low enough to couple the
/// bridged nets hard (a metal sliver, not a leakage path).
pub const BRIDGE_OHMS: f64 = 100.0;

/// Bridges each consecutive pair of `nets`, then each net to `shared`
/// (the node all of them route towards — physically the likeliest
/// victim). `shared` entries already present in `nets` are skipped.
fn adjacent_bridges(circuit: &Circuit, nets: &[NodeId], shared: NodeId) -> Vec<LabeledFault> {
    let mut out = Vec::new();
    let mut push = |a: NodeId, b: NodeId| {
        if a == b {
            return;
        }
        let target = format!("{}~{}", circuit.node_name(a), circuit.node_name(b));
        out.push(LabeledFault::new(
            &target,
            Fault::NetBridge {
                a,
                b,
                ohms: BRIDGE_OHMS,
            },
        ));
    };
    for pair in nets.windows(2) {
        push(pair[0], pair[1]);
    }
    for &n in nets {
        push(n, shared);
    }
    out
}

/// Single-fault universe of a [`SwitchAdder`] netlist: the generic
/// element universe plus bridges between adjacent PWM input routes and
/// from each input to the shared output bus.
pub fn switch_adder_universe(
    circuit: &Circuit,
    adder: &SwitchAdder,
    config: &UniverseConfig,
) -> Vec<LabeledFault> {
    let mut universe = single_fault_universe(circuit, config);
    universe.extend(adjacent_bridges(circuit, &adder.inputs, adder.output));
    universe
}

/// Single-fault universe of a [`WeightedAdder`] netlist: generic element
/// universe, input-route bridges, and bridges from each cell's AND
/// output to the shared analog bus (a defect across the cell's `Rout`).
pub fn weighted_adder_universe(
    circuit: &Circuit,
    adder: &WeightedAdder,
    config: &UniverseConfig,
) -> Vec<LabeledFault> {
    let mut universe = single_fault_universe(circuit, config);
    universe.extend(adjacent_bridges(circuit, &adder.inputs, adder.output));
    let cell_outputs: Vec<NodeId> = adder
        .cells
        .iter()
        .flatten()
        .map(|cell| cell.output)
        .collect();
    for &o in &cell_outputs {
        universe.extend(adjacent_bridges(circuit, &[o], adder.output));
    }
    universe
}

/// Single-fault universe of a transcoding [`Inverter`] netlist: generic
/// element universe plus the input-to-output bridge (the classic
/// gate-to-drain defect that turns the inverter into a follower).
pub fn inverter_universe(
    circuit: &Circuit,
    inverter: &Inverter,
    config: &UniverseConfig,
) -> Vec<LabeledFault> {
    let mut universe = single_fault_universe(circuit, config);
    universe.extend(adjacent_bridges(
        circuit,
        &[inverter.input],
        inverter.output,
    ));
    universe
}

/// Single-fault universe of a full [`PerceptronCircuit`]: generic element
/// universe, adder input-route bridges, and a bridge between the adder
/// output and the comparator reference — the defect that directly skews
/// the decision threshold.
pub fn perceptron_universe(
    circuit: &Circuit,
    perceptron: &PerceptronCircuit,
    config: &UniverseConfig,
) -> Vec<LabeledFault> {
    let mut universe = single_fault_universe(circuit, config);
    universe.extend(adjacent_bridges(
        circuit,
        &perceptron.adder.inputs,
        perceptron.adder.output,
    ));
    universe.extend(adjacent_bridges(
        circuit,
        &[perceptron.adder.output],
        perceptron.reference,
    ));
    universe
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AdderSpec;
    use crate::tech::Technology;
    use mssim::prelude::Waveform;

    fn switch_adder_fixture() -> (Circuit, SwitchAdder) {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        let spec = AdderSpec::paper_3x3();
        let adder = SwitchAdder::build(&mut ckt, &tech, "s", vdd, &[7, 5, 3], spec);
        for (i, duty) in [0.3, 0.5, 0.7].into_iter().enumerate() {
            ckt.vsource(
                &format!("VIN{i}"),
                adder.inputs[i],
                Circuit::GND,
                Waveform::pwm(tech.vdd.value(), tech.frequency.value(), duty),
            );
        }
        (ckt, adder)
    }

    #[test]
    fn switch_adder_universe_is_deterministic_and_applies() {
        let (ckt, adder) = switch_adder_fixture();
        let cfg = UniverseConfig::default();
        let a = switch_adder_universe(&ckt, &adder, &cfg);
        let b = switch_adder_universe(&ckt, &adder, &cfg);
        assert_eq!(a, b, "universe must be deterministic");
        // 3×3 adder: 18 switches × 2 + 1 cap + 1 DC supply + 3 PWM
        // sources × 2 + 2 adjacent-input bridges + 3 input-output
        // bridges.
        assert_eq!(a.len(), 18 * 2 + 1 + 1 + 3 * 2 + 2 + 3);
        let mut labels = std::collections::BTreeSet::new();
        for lf in &a {
            assert!(labels.insert(&lf.label), "duplicate label {}", lf.label);
            lf.fault
                .apply(&ckt)
                .unwrap_or_else(|e| panic!("{} failed to apply: {e}", lf.label));
        }
    }

    #[test]
    fn bridges_name_both_nets() {
        let (ckt, adder) = switch_adder_fixture();
        let bridges = adjacent_bridges(&ckt, &adder.inputs, adder.output);
        assert_eq!(bridges.len(), 5);
        assert!(bridges
            .iter()
            .all(|lf| matches!(lf.fault, Fault::NetBridge { .. })));
        assert!(bridges[0].label.starts_with("net_bridge:s_in0~s_in1"));
        let faulty = bridges[0].fault.apply(&ckt).unwrap();
        assert!(faulty.find_element("FAULT_BRIDGE_s_in0_s_in1").is_some());
    }

    #[test]
    fn weighted_adder_universe_covers_cell_outputs() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        let adder = WeightedAdder::build(&mut ckt, &tech, "w", vdd, &[7, 7], AdderSpec::new(2, 3));
        for (i, &node) in adder.inputs.iter().enumerate() {
            ckt.vsource(&format!("VIN{i}"), node, Circuit::GND, Waveform::dc(0.0));
        }
        let universe = weighted_adder_universe(&ckt, &adder, &UniverseConfig::default());
        let bridge_count = universe
            .iter()
            .filter(|lf| matches!(lf.fault, Fault::NetBridge { .. }))
            .count();
        // 1 adjacent-input + 2 input-output + 6 cell-output bridges.
        assert_eq!(bridge_count, 1 + 2 + 6);
        for lf in &universe {
            lf.fault
                .apply(&ckt)
                .unwrap_or_else(|e| panic!("{} failed to apply: {e}", lf.label));
        }
    }

    #[test]
    fn inverter_universe_includes_gate_drain_bridge() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        ckt.vsource(
            "VIN",
            vin,
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), 0.5),
        );
        let inv = Inverter::build(
            &mut ckt,
            &tech,
            "inv",
            vin,
            vdd,
            Some(tech.rout),
            tech.cout_inverter,
        );
        let universe = inverter_universe(&ckt, &inv, &UniverseConfig::default());
        assert!(universe
            .iter()
            .any(|lf| lf.label == "net_bridge:in~inv_out"));
        for lf in &universe {
            lf.fault
                .apply(&ckt)
                .unwrap_or_else(|e| panic!("{} failed to apply: {e}", lf.label));
        }
    }

    #[test]
    fn perceptron_universe_bridges_output_to_reference() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        let p = PerceptronCircuit::build(
            &mut ckt,
            &tech,
            "p",
            vdd,
            &[7, 7],
            AdderSpec::new(2, 3),
            0.5,
        );
        for (i, &node) in p.adder.inputs.iter().enumerate() {
            ckt.vsource(&format!("VIN{i}"), node, Circuit::GND, Waveform::dc(0.0));
        }
        let universe = perceptron_universe(&ckt, &p, &UniverseConfig::default());
        let out = ckt.node_name(p.adder.output);
        let refn = ckt.node_name(p.reference);
        assert!(universe
            .iter()
            .any(|lf| lf.label == format!("net_bridge:{out}~{refn}")));
        for lf in &universe {
            lf.fault
                .apply(&ckt)
                .unwrap_or_else(|e| panic!("{} failed to apply: {e}", lf.label));
        }
    }
}
