//! Closed-form models: the paper's Eq. 2 and first-order RC estimates.
//!
//! These are the "theoretical" columns of the paper's Table II, used both
//! as golden references for the transistor-level simulation and as the
//! fastest evaluator tier of the perceptron.

/// Ideal transcoding-inverter output (Fig. 2, large-Rout limit):
/// `Vout = Vdd · (1 − duty)`.
///
/// # Panics
///
/// Panics if `duty` is outside `0.0..=1.0`.
///
/// # Examples
///
/// ```
/// let v = pwmcell::analytic::inverter_vout(2.5, 0.25);
/// assert!((v - 1.875).abs() < 1e-12);
/// ```
pub fn inverter_vout(vdd: f64, duty: f64) -> f64 {
    assert!((0.0..=1.0).contains(&duty), "duty must be in 0..=1");
    vdd * (1.0 - duty)
}

/// The paper's Eq. 2: ideal weighted-adder output voltage.
///
/// `Vout = Vdd · Σ DCᵢ·Wᵢ / (k·(2ⁿ−1))` where `k = duties.len()` inputs
/// each carry an `n`-bit weight. Disabled weight bits still load the
/// output node (their cells drive low), which is why the denominator uses
/// the *full* weight range rather than the enabled subset.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, if any duty is
/// outside `0.0..=1.0`, if `bits == 0` or `bits > 31`, or if any weight
/// exceeds `2^bits − 1`.
///
/// # Examples
///
/// The first row of the paper's Table II:
///
/// ```
/// let v = pwmcell::analytic::adder_vout(2.5, &[0.7, 0.8, 0.9], &[7, 7, 7], 3);
/// assert!((v - 2.0).abs() < 1e-12);
/// ```
pub fn adder_vout(vdd: f64, duties: &[f64], weights: &[u32], bits: u32) -> f64 {
    assert_eq!(
        duties.len(),
        weights.len(),
        "duties and weights must pair up"
    );
    assert!(!duties.is_empty(), "adder needs at least one input");
    assert!((1..=31).contains(&bits), "weight width must be 1..=31 bits");
    let w_max = (1u32 << bits) - 1;
    let mut acc = 0.0;
    for (&d, &w) in duties.iter().zip(weights) {
        assert!((0.0..=1.0).contains(&d), "duty must be in 0..=1, got {d}");
        assert!(w <= w_max, "weight {w} exceeds {bits}-bit range");
        acc += d * w as f64;
    }
    vdd * acc / (duties.len() as f64 * w_max as f64)
}

/// Maximum possible Eq.-2 output: all duties 100 %, all weights maximal —
/// equals `vdd`. Useful for normalising.
pub fn adder_vout_max(vdd: f64) -> f64 {
    vdd
}

/// First-order estimate of the steady-state peak-to-peak ripple of a PWM
/// node: `ΔV ≈ Vdd · d·(1−d) · T / τ` for `τ ≫ T` (exact in the linear
/// small-ripple limit).
///
/// # Panics
///
/// Panics if `tau` or `period` is not strictly positive.
pub fn ripple_estimate(vdd: f64, duty: f64, period: f64, tau: f64) -> f64 {
    assert!(tau > 0.0 && period > 0.0, "tau and period must be positive");
    vdd * duty * (1.0 - duty) * period / tau
}

/// Number of periods needed for the output average to settle within
/// `tol` (fraction of the final value): `ceil(τ/T · ln(1/tol))`.
///
/// # Panics
///
/// Panics if `tau` or `period` is not strictly positive or `tol` is not in
/// `(0, 1)`.
pub fn settle_periods(period: f64, tau: f64, tol: f64) -> usize {
    assert!(tau > 0.0 && period > 0.0, "tau and period must be positive");
    assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0,1)");
    ((tau / period) * (1.0 / tol).ln()).ceil() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every "theoretical" row of the paper's Table II.
    #[test]
    fn table_two_theoretical_column() {
        let rows: [(&[f64], &[u32], f64); 6] = [
            (&[0.70, 0.80, 0.90], &[7, 7, 7], 2.00),
            (&[0.50, 0.50, 0.50], &[1, 2, 4], 0.42),
            (&[0.20, 0.60, 0.80], &[5, 6, 7], 1.21),
            (&[0.95, 0.90, 0.80], &[7, 6, 6], 2.00),
            (&[0.30, 0.40, 0.50], &[1, 4, 2], 0.34),
            (&[0.80, 0.20, 0.50], &[7, 3, 4], 0.96),
        ];
        for (duties, weights, expected) in rows {
            let v = adder_vout(2.5, duties, weights, 3);
            // The paper prints two decimals, and its own theoretical
            // column deviates slightly from Eq. 2 on two rows: row 4 is
            // 2.006 (printed "2.00") and row 6 is 0.976 (printed "0.96" —
            // apparently a slip in the paper; see EXPERIMENTS.md).
            assert!(
                (v - expected).abs() < 0.02,
                "duties {duties:?} weights {weights:?}: got {v:.4}, paper says {expected}"
            );
        }
    }

    #[test]
    fn inverter_endpoints() {
        assert_eq!(inverter_vout(2.5, 0.0), 2.5);
        assert_eq!(inverter_vout(2.5, 1.0), 0.0);
        assert_eq!(inverter_vout(2.5, 0.5), 1.25);
    }

    #[test]
    fn adder_is_monotone_in_duty_and_weight() {
        let base = adder_vout(2.5, &[0.5, 0.5, 0.5], &[3, 3, 3], 3);
        assert!(adder_vout(2.5, &[0.6, 0.5, 0.5], &[3, 3, 3], 3) > base);
        assert!(adder_vout(2.5, &[0.5, 0.5, 0.5], &[4, 3, 3], 3) > base);
    }

    #[test]
    fn adder_scales_linearly_with_vdd() {
        let v1 = adder_vout(1.0, &[0.3, 0.7], &[2, 5], 3);
        let v5 = adder_vout(5.0, &[0.3, 0.7], &[2, 5], 3);
        assert!((v5 / v1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn adder_bounds() {
        let v = adder_vout(2.5, &[1.0, 1.0, 1.0], &[7, 7, 7], 3);
        assert!((v - adder_vout_max(2.5)).abs() < 1e-12);
        let v = adder_vout(2.5, &[0.0, 0.0], &[7, 7], 3);
        assert_eq!(v, 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn adder_rejects_oversized_weight() {
        let _ = adder_vout(2.5, &[0.5], &[8], 3);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn adder_rejects_mismatched_slices() {
        let _ = adder_vout(2.5, &[0.5, 0.5], &[1], 3);
    }

    #[test]
    fn ripple_peaks_at_half_duty() {
        let r25 = ripple_estimate(2.5, 0.25, 2e-9, 100e-9);
        let r50 = ripple_estimate(2.5, 0.50, 2e-9, 100e-9);
        assert!(r50 > r25);
        // Magnitude: 2.5 * 0.25 * 2/100 = 12.5 mV.
        assert!((r50 - 12.5e-3).abs() < 1e-6);
    }

    #[test]
    fn settle_periods_grows_with_tau() {
        assert!(settle_periods(2e-9, 100e-9, 0.01) > settle_periods(2e-9, 10e-9, 0.01));
        // τ/T = 50, ln(100) ≈ 4.6 → ~231 periods.
        let n = settle_periods(2e-9, 100e-9, 0.01);
        assert!(n > 200 && n < 260, "n = {n}");
    }
}
