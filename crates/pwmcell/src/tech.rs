//! Technology parameters — the paper's Table I.
//!
//! | Parameter | Paper value |
//! |---|---|
//! | Supply voltage | Vdd = 2.5 V |
//! | Transistor widths | nwidth = 320 nm, pwidth = 865 nm |
//! | Transistor lengths | nlength = plength = 1.2 µm |
//! | Output capacitor (inverter) | Cout = 1 pF |
//! | Output capacitor (3×3 adder) | Cout = 10 pF |
//! | Output resistor | Rout ∈ {none, 5 kΩ, 100 kΩ}, default 100 kΩ |
//! | Input frequency | 500 MHz default, swept 1 MHz–1.5 GHz |
//!
//! The paper uses proprietary UMC 65 nm foundry models; here the devices
//! are level-1 square-law transistors (see [`mssim::elements::mosfet`])
//! with `kp` chosen so that the on-resistances of the N and P devices at
//! the paper's sizes are ≈ 9 kΩ at a 2.5 V gate drive — balanced pull-up /
//! pull-down, small against the 100 kΩ output resistor, comparable to the
//! 5 kΩ one, exactly the regime the paper's Fig. 4 explores.

use mssim::prelude::{MosParams, Ohms, Volts};
use mssim::units::{Farads, Hertz, Seconds};

/// Process + operating-point parameters shared by all cells.
///
/// Fields are public on purpose: this is passive configuration data that
/// experiments sweep freely.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// Base (×1 cell) NMOS device.
    pub nmos: MosParams,
    /// Base (×1 cell) PMOS device.
    pub pmos: MosParams,
    /// Output capacitor of the single transcoding inverter (Fig. 2).
    pub cout_inverter: Farads,
    /// Output capacitor of the weighted adder (Fig. 3 experiments).
    pub cout_adder: Farads,
    /// Base (×1 / least-significant-bit cell) output resistor.
    pub rout: Ohms,
    /// Default PWM input frequency.
    pub frequency: Hertz,
    /// Parasitic node capacitance (junction + local wiring) added at each
    /// gate output node of a ×1 cell; scales with drive strength. This is
    /// what makes switching power grow with frequency (Fig. 8).
    pub cnode: Farads,
    /// Physical rise/fall time of the PWM drivers. Fixed (not a fraction
    /// of the period), so the crowbar fraction of each cycle — and hence
    /// the short-circuit power — grows with frequency.
    pub edge_time: Seconds,
}

impl Technology {
    /// The paper's Table I configuration.
    pub fn umc65_like() -> Self {
        Technology {
            vdd: Volts(2.5),
            nmos: MosParams::nmos(320e-9, 1.2e-6),
            pmos: MosParams::pmos(865e-9, 1.2e-6),
            cout_inverter: Farads(1e-12),
            cout_adder: Farads(10e-12),
            rout: Ohms(100e3),
            frequency: Hertz(500e6),
            cnode: Farads(2e-15),
            edge_time: Seconds(100e-12),
        }
    }

    /// Fraction of a PWM period spent in each (fixed-duration) edge at a
    /// given frequency, clamped to stay a valid trapezoid.
    pub fn edge_fraction(&self, frequency: Hertz) -> f64 {
        (self.edge_time.value() * frequency.value()).clamp(1e-6, 0.3)
    }

    /// The technology re-evaluated at an ambient temperature (°C).
    ///
    /// First-order silicon temperature effects relative to the 27 °C
    /// nominal: threshold voltage drops ~2 mV/K, and carrier mobility —
    /// hence `kp` — falls as `(T/T₀)^−1.5` in kelvin. Micro-edge sensing
    /// nodes see wide ambient swings, so the robustness experiments sweep
    /// this (see `repro`'s temperature ablation).
    ///
    /// # Panics
    ///
    /// Panics if `celsius` is outside the military range `−55..=125`.
    pub fn at_temperature(&self, celsius: f64) -> Self {
        assert!(
            (-55.0..=125.0).contains(&celsius),
            "temperature must be within -55..=125 °C"
        );
        const T0_K: f64 = 300.15; // 27 °C nominal
        const DVTH_DT: f64 = -2e-3; // V/K
        let t_k = celsius + 273.15;
        let mobility = (t_k / T0_K).powf(-1.5);
        let dvth = DVTH_DT * (t_k - T0_K);
        let mut t = self.clone();
        t.nmos = t
            .nmos
            .with_vth0((t.nmos.vth0 + dvth).max(0.05))
            .with_kp(t.nmos.kp * mobility);
        t.pmos = t
            .pmos
            .with_vth0((t.pmos.vth0 + dvth).max(0.05))
            .with_kp(t.pmos.kp * mobility);
        t
    }

    /// Returns a copy with a different supply voltage.
    pub fn with_vdd(mut self, vdd: Volts) -> Self {
        self.vdd = vdd;
        self
    }

    /// Returns a copy with a different base output resistor.
    pub fn with_rout(mut self, rout: Ohms) -> Self {
        self.rout = rout;
        self
    }

    /// Returns a copy with a different default input frequency.
    pub fn with_frequency(mut self, frequency: Hertz) -> Self {
        self.frequency = frequency;
        self
    }

    /// NMOS on-resistance at the nominal gate drive.
    pub fn ron_n(&self) -> Ohms {
        Ohms(self.nmos.r_on(self.vdd.value()))
    }

    /// PMOS on-resistance at the nominal gate drive.
    pub fn ron_p(&self) -> Ohms {
        Ohms(self.pmos.r_on(self.vdd.value()))
    }

    /// First-order output time constant of the transcoding inverter:
    /// `(Rout + Ron)·Cout` with the mean on-resistance.
    pub fn inverter_tau(&self, rout: Option<Ohms>) -> f64 {
        let ron = 0.5 * (self.ron_n().value() + self.ron_p().value());
        let r = rout.map_or(0.0, Ohms::value) + ron;
        r * self.cout_inverter.value()
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::umc65_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_fraction_scaling() {
        let t = Technology::umc65_like();
        // 100 ps edges: 5 % of a 2 ns period, 0.01 % of a 1 µs period.
        assert!((t.edge_fraction(Hertz(500e6)) - 0.05).abs() < 1e-12);
        assert!((t.edge_fraction(Hertz(1e6)) - 1e-4).abs() < 1e-12);
        // Clamped at extreme frequency.
        assert!(t.edge_fraction(Hertz(10e9)) <= 0.3);
    }

    #[test]
    fn paper_table_one_values() {
        let t = Technology::umc65_like();
        assert_eq!(t.vdd, Volts(2.5));
        assert_eq!(t.nmos.w, 320e-9);
        assert_eq!(t.pmos.w, 865e-9);
        assert_eq!(t.nmos.l, 1.2e-6);
        assert_eq!(t.pmos.l, 1.2e-6);
        assert_eq!(t.cout_inverter, Farads(1e-12));
        assert_eq!(t.cout_adder, Farads(10e-12));
        assert_eq!(t.rout, Ohms(100e3));
        assert_eq!(t.frequency, Hertz(500e6));
    }

    #[test]
    fn on_resistances_are_balanced_and_small_vs_rout() {
        let t = Technology::umc65_like();
        let rn = t.ron_n().value();
        let rp = t.ron_p().value();
        assert!((rn / rp - 1.0).abs() < 0.15, "rn={rn} rp={rp}");
        // Ron ≪ 100 kΩ (linear regime), comparable to 5 kΩ (nonlinear).
        assert!(rn < 0.15 * t.rout.value());
        assert!(rn > 0.5 * 5e3);
    }

    #[test]
    fn inverter_tau_scale() {
        let t = Technology::umc65_like();
        let tau = t.inverter_tau(Some(t.rout));
        // ~ (100k + 9k) * 1pF ≈ 110 ns.
        assert!(tau > 80e-9 && tau < 150e-9, "tau = {tau}");
        let tau_noload = t.inverter_tau(None);
        assert!(tau_noload < 20e-9);
    }

    #[test]
    fn builder_methods() {
        let t = Technology::umc65_like()
            .with_vdd(Volts(1.0))
            .with_rout(Ohms(5e3))
            .with_frequency(Hertz(1e6));
        assert_eq!(t.vdd, Volts(1.0));
        assert_eq!(t.rout, Ohms(5e3));
        assert_eq!(t.frequency, Hertz(1e6));
    }

    #[test]
    fn default_is_paper_config() {
        assert_eq!(Technology::default(), Technology::umc65_like());
    }

    #[test]
    fn temperature_scaling_directions() {
        let nom = Technology::umc65_like();
        let hot = nom.at_temperature(85.0);
        let cold = nom.at_temperature(-40.0);
        // Hot: lower threshold, lower mobility.
        assert!(hot.nmos.vth0 < nom.nmos.vth0);
        assert!(hot.nmos.kp < nom.nmos.kp);
        // Cold: the opposite.
        assert!(cold.nmos.vth0 > nom.nmos.vth0);
        assert!(cold.nmos.kp > nom.nmos.kp);
        // 27 °C is the identity.
        let same = nom.at_temperature(27.0);
        assert!((same.nmos.vth0 - nom.nmos.vth0).abs() < 1e-12);
        assert!((same.nmos.kp - nom.nmos.kp).abs() < 1e-12);
        // Magnitudes: ~116 mV threshold shift at +85 °C.
        assert!((nom.nmos.vth0 - hot.nmos.vth0 - 0.116).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "-55..=125")]
    fn absurd_temperature_panics() {
        let _ = Technology::umc65_like().at_temperature(400.0);
    }
}
