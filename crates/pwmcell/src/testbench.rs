//! Measurement harnesses for the paper's experiments.
//!
//! [`InverterTestbench`] and [`AdderTestbench`] build a complete circuit
//! (supply, PWM stimulus, device under test), pick transient parameters
//! from the circuit's own time constants, run [`mssim`]'s transient
//! analysis and extract cycle-aligned steady-state measurements — exactly
//! the procedure behind the paper's Figs. 4–8 and Table II.

use mssim::prelude::*;
use mssim::units::{Farads, Watts};

use crate::adder::{AdderSpec, WeightedAdder};
use crate::inverter::Inverter;
use crate::tech::Technology;

/// Simulation effort: how finely to step and how long to settle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimQuality {
    /// Time steps per PWM period.
    pub steps_per_period: usize,
    /// Settle duration in output time constants.
    pub settle_time_constants: f64,
    /// Lower bound on settle duration in periods.
    pub min_settle_periods: usize,
    /// Measurement window length in whole periods.
    pub measure_periods: usize,
    /// Upper bound on total simulated periods (guards runaway runtimes at
    /// extreme frequency/τ ratios).
    pub max_total_periods: usize,
}

impl SimQuality {
    /// Quick settings for unit tests and training loops: ~1 % accuracy.
    pub fn fast() -> Self {
        SimQuality {
            steps_per_period: 100,
            settle_time_constants: 5.0,
            min_settle_periods: 4,
            measure_periods: 2,
            max_total_periods: 4000,
        }
    }

    /// Publication settings matching the paper's reported precision.
    pub fn paper() -> Self {
        SimQuality {
            steps_per_period: 200,
            settle_time_constants: 8.0,
            min_settle_periods: 8,
            measure_periods: 4,
            max_total_periods: 8000,
        }
    }

    /// Chooses `(dt, t_stop, measure_window_periods)` for a PWM period and
    /// an output time constant.
    fn plan(&self, period: f64, tau: f64) -> (f64, f64, usize) {
        let settle = ((self.settle_time_constants * tau / period).ceil() as usize)
            .max(self.min_settle_periods);
        let total = (settle + self.measure_periods).min(self.max_total_periods);
        let dt = period / self.steps_per_period as f64;
        (dt, total as f64 * period, self.measure_periods)
    }
}

impl Default for SimQuality {
    fn default() -> Self {
        Self::fast()
    }
}

/// Operating point for one inverter measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureSpec {
    /// Input duty cycle, `0..=1`.
    pub duty: f64,
    /// Input frequency; `None` uses the technology default (500 MHz).
    pub frequency: Option<Hertz>,
    /// Supply voltage; `None` uses the technology default (2.5 V).
    pub vdd: Option<Volts>,
    /// Input swing; `None` follows the supply voltage.
    pub amplitude: Option<Volts>,
}

impl MeasureSpec {
    /// Nominal conditions at the given duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `0..=1`.
    pub fn duty(duty: f64) -> Self {
        assert!((0.0..=1.0).contains(&duty), "duty must be in 0..=1");
        MeasureSpec {
            duty,
            frequency: None,
            vdd: None,
            amplitude: None,
        }
    }

    /// Overrides the input frequency.
    pub fn with_frequency(mut self, frequency: Hertz) -> Self {
        self.frequency = Some(frequency);
        self
    }

    /// Overrides the supply voltage.
    pub fn with_vdd(mut self, vdd: Volts) -> Self {
        self.vdd = Some(vdd);
        self
    }

    /// Overrides the input swing independently of the supply.
    pub fn with_amplitude(mut self, amplitude: Volts) -> Self {
        self.amplitude = Some(amplitude);
        self
    }
}

/// Steady-state measurement of the transcoding inverter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterMeasurement {
    /// Cycle-averaged output voltage.
    pub vout: Volts,
    /// Peak-to-peak output ripple over the measurement window.
    pub ripple: Volts,
    /// Average power drawn from the supply.
    pub supply_power: Watts,
    /// The supply voltage the measurement ran at.
    pub vdd: Volts,
}

impl InverterMeasurement {
    /// `Vout / Vdd` — the supply-independent quantity of the paper's
    /// Fig. 7.
    pub fn relative_output(&self) -> f64 {
        self.vout.value() / self.vdd.value()
    }
}

/// Transistor-level testbench for the Fig. 2 inverter.
#[derive(Debug, Clone)]
pub struct InverterTestbench {
    tech: Technology,
    rout: Option<Ohms>,
    cout: Farads,
}

impl InverterTestbench {
    /// Testbench with the technology's default output resistor (100 kΩ).
    pub fn new(tech: &Technology) -> Self {
        Self::with_rout(tech, Some(tech.rout))
    }

    /// The "no load (resistor)" variant of Fig. 4.
    pub fn without_load(tech: &Technology) -> Self {
        Self::with_rout(tech, None)
    }

    /// Testbench with an explicit output resistor choice.
    pub fn with_rout(tech: &Technology, rout: Option<Ohms>) -> Self {
        InverterTestbench {
            tech: tech.clone(),
            rout,
            cout: tech.cout_inverter,
        }
    }

    /// Overrides the output capacitor (Cout ablation).
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is not strictly positive.
    pub fn with_cout(mut self, cout: Farads) -> Self {
        assert!(cout.value() > 0.0, "cout must be positive");
        self.cout = cout;
        self
    }

    /// Runs one transient measurement.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`Error::NonConvergence`] etc.).
    pub fn measure(
        &self,
        spec: &MeasureSpec,
        quality: &SimQuality,
    ) -> Result<InverterMeasurement, Error> {
        let vdd = spec.vdd.unwrap_or(self.tech.vdd);
        let amplitude = spec.amplitude.unwrap_or(vdd);
        let frequency = spec.frequency.unwrap_or(self.tech.frequency);
        let period = frequency.period().value();

        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        let in_node = ckt.node("in");
        let vdd_src = ckt.vsource("VDD", vdd_node, Circuit::GND, Waveform::dc(vdd.value()));
        ckt.vsource(
            "VIN",
            in_node,
            Circuit::GND,
            Waveform::pwm_with_edges(
                amplitude.value(),
                frequency.value(),
                spec.duty,
                self.tech.edge_fraction(frequency),
            ),
        );
        let inv = Inverter::build(
            &mut ckt, &self.tech, "dut", in_node, vdd_node, self.rout, self.cout,
        );

        let tau = self.output_tau(vdd);
        let (dt, t_stop, win) = quality.plan(period, tau);
        let result =
            Session::new(&ckt).transient(&Transient::new(dt, t_stop).use_initial_conditions())?;

        let vout_trace = result.voltage(inv.output);
        let vout = vout_trace.steady_state_average(period, win);
        let (_, t_end) = vout_trace.span();
        let t_win = t_end - win as f64 * period;
        let ripple = vout_trace.ripple_between(t_win, t_end);
        let power = result
            .source_power(vdd_src)?
            .as_trace()
            .average_between(t_win, t_end);

        Ok(InverterMeasurement {
            vout: Volts(vout),
            ripple: Volts(ripple),
            supply_power: Watts(power),
            vdd,
        })
    }

    /// Small-signal frequency response of the transcoding path: the
    /// inverter is biased with its input at mid-rail (both devices
    /// conducting) and a unit AC stimulus rides the gate; the returned
    /// pairs are `(frequency, |V(out)| / |V(out at the first frequency)|)`
    /// — the normalised magnitude of the output filter, whose dominant
    /// pole is what gives the design its ripple rejection.
    ///
    /// # Errors
    ///
    /// Propagates DC-operating-point and AC-solver errors.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty.
    pub fn frequency_response(&self, frequencies: &[f64]) -> Result<Vec<(f64, f64)>, Error> {
        self.frequency_response_at(self.tech.vdd * 0.5, frequencies)
    }

    /// [`InverterTestbench::frequency_response`] with an explicit gate
    /// bias. Mid-rail biases both devices in saturation (high output
    /// resistance); a rail bias puts the conducting device in triode,
    /// where its on-resistance sets the unloaded pole.
    ///
    /// # Errors
    ///
    /// Propagates DC-operating-point and AC-solver errors.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty.
    pub fn frequency_response_at(
        &self,
        bias: Volts,
        frequencies: &[f64],
    ) -> Result<Vec<(f64, f64)>, Error> {
        assert!(!frequencies.is_empty(), "need at least one frequency");
        let vdd = self.tech.vdd;
        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        let in_node = ckt.node("in");
        ckt.vsource("VDD", vdd_node, Circuit::GND, Waveform::dc(vdd.value()));
        let vin = ckt.vsource("VIN", in_node, Circuit::GND, Waveform::dc(bias.value()));
        let inv = Inverter::build(
            &mut ckt, &self.tech, "dut", in_node, vdd_node, self.rout, self.cout,
        );
        let ac = mssim::Session::new(&ckt).ac(vin, frequencies)?;
        let mags = ac.magnitude(inv.output);
        let reference = mags[0].max(1e-30);
        Ok(frequencies
            .iter()
            .zip(&mags)
            .map(|(&f, &m)| (f, m / reference))
            .collect())
    }

    /// First-order output time constant at the given supply, with the
    /// on-resistance clamped so a below-threshold supply still yields a
    /// finite simulation plan.
    fn output_tau(&self, vdd: Volts) -> f64 {
        let drive = vdd.value();
        let ron_n = self.tech.nmos.r_on(drive).min(10e6);
        let ron_p = self.tech.pmos.r_on(drive).min(10e6);
        let ron = 0.5 * (ron_n + ron_p);
        (self.rout.map_or(0.0, Ohms::value) + ron) * self.cout.value()
    }
}

/// Steady-state measurement of the weighted adder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdderMeasurement {
    /// Cycle-averaged output voltage.
    pub vout: Volts,
    /// Peak-to-peak output ripple over the measurement window.
    pub ripple: Volts,
    /// Average power drawn from the supply (the paper's Fig. 8 quantity).
    pub supply_power: Watts,
    /// The supply voltage the measurement ran at.
    pub vdd: Volts,
}

/// Steady-state adder measurement taken under the transient rescue
/// ladder (see [`AdderBatchBench::measure_rescued`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RescuedAdderMeasurement {
    /// The measurement. For a partial run this averages the trailing
    /// window of the truncated waveform instead of the planned window.
    pub measurement: AdderMeasurement,
    /// Whether the transient stopped before `t_stop` (rescue ladder
    /// exhausted) — the measurement is then degraded, not exact.
    pub partial: bool,
    /// Total rescue-ladder rungs attempted (0 for a clean run).
    pub rescue_attempts: usize,
}

/// Transistor-level testbench for the Fig. 3 weighted adder.
#[derive(Debug, Clone)]
pub struct AdderTestbench {
    tech: Technology,
    spec: AdderSpec,
}

impl AdderTestbench {
    /// Testbench for an arbitrary adder size.
    pub fn new(tech: &Technology, spec: AdderSpec) -> Self {
        AdderTestbench {
            tech: tech.clone(),
            spec,
        }
    }

    /// The paper's 3×3 case study.
    pub fn paper(tech: &Technology) -> Self {
        Self::new(tech, AdderSpec::paper_3x3())
    }

    /// The adder dimensions under test.
    pub fn spec(&self) -> AdderSpec {
        self.spec
    }

    /// Transistor count of the device under test.
    pub fn transistor_count(&self) -> usize {
        self.spec.transistor_count()
    }

    /// Runs one transient measurement at nominal supply and frequency.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `duties`/`weights` do not match the adder dimensions or
    /// are out of range.
    pub fn measure(
        &self,
        duties: &[f64],
        weights: &[u32],
        quality: &SimQuality,
    ) -> Result<AdderMeasurement, Error> {
        self.measure_at(duties, weights, self.tech.frequency, self.tech.vdd, quality)
    }

    /// Runs one transient measurement at an explicit frequency and supply.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `duties`/`weights` do not match the adder dimensions or
    /// are out of range.
    pub fn measure_at(
        &self,
        duties: &[f64],
        weights: &[u32],
        frequency: Hertz,
        vdd: Volts,
        quality: &SimQuality,
    ) -> Result<AdderMeasurement, Error> {
        assert_eq!(duties.len(), self.spec.inputs, "one duty per input");
        let period = frequency.period().value();

        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        let vdd_src = ckt.vsource("VDD", vdd_node, Circuit::GND, Waveform::dc(vdd.value()));
        let adder = WeightedAdder::build(&mut ckt, &self.tech, "dut", vdd_node, weights, self.spec);
        for (i, &d) in duties.iter().enumerate() {
            ckt.vsource(
                &format!("VIN{i}"),
                adder.inputs[i],
                Circuit::GND,
                Waveform::pwm_with_edges(
                    vdd.value(),
                    frequency.value(),
                    d,
                    self.tech.edge_fraction(frequency),
                ),
            );
        }

        let tau = self.output_tau(vdd);
        let (dt, t_stop, win) = quality.plan(period, tau);
        let result =
            Session::new(&ckt).transient(&Transient::new(dt, t_stop).use_initial_conditions())?;

        let vout_trace = result.voltage(adder.output);
        let vout = vout_trace.steady_state_average(period, win);
        let (_, t_end) = vout_trace.span();
        let t_win = t_end - win as f64 * period;
        let ripple = vout_trace.ripple_between(t_win, t_end);
        let power = result
            .source_power(vdd_src)?
            .as_trace()
            .average_between(t_win, t_end);

        Ok(AdderMeasurement {
            vout: Volts(vout),
            ripple: Volts(ripple),
            supply_power: Watts(power),
            vdd,
        })
    }

    /// First-order time constant of the shared output node: the parallel
    /// combination of every cell's series resistance into `Cout`.
    fn output_tau(&self, vdd: Volts) -> f64 {
        let drive = vdd.value();
        let ron =
            0.5 * (self.tech.nmos.r_on(drive).min(10e6) + self.tech.pmos.r_on(drive).min(10e6));
        let r_cell = self.tech.rout.value() + ron;
        // Conductance units: each input contributes 1+2+…+2^(n−1).
        let units = self.spec.inputs as f64 * (self.spec.max_weight() as f64);
        (r_cell / units) * self.tech.cout_adder.value()
    }

    /// Prepares a reusable runner for repeated measurements that differ
    /// only in duty cycles: the circuit, transient plan and waveform
    /// parameters are built once, and each [`AdderBatchBench::measure`]
    /// swaps input waveforms on a clone (waveform edits do not change the
    /// matrix structure, so the solver's symbolic work is identical).
    ///
    /// Produces bitwise-identical measurements to [`Self::measure_at`]
    /// with the same arguments.
    ///
    /// # Panics
    ///
    /// Panics if `weights` do not match the adder dimensions or are out
    /// of range.
    pub fn batch_runner(
        &self,
        weights: &[u32],
        frequency: Hertz,
        vdd: Volts,
        quality: &SimQuality,
    ) -> AdderBatchBench {
        let period = frequency.period().value();

        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        let vdd_src = ckt.vsource("VDD", vdd_node, Circuit::GND, Waveform::dc(vdd.value()));
        let adder = WeightedAdder::build(&mut ckt, &self.tech, "dut", vdd_node, weights, self.spec);
        // Placeholder stimulus; measure() replaces each waveform. Built
        // through the same constructor as measure_at so element ordering
        // (and therefore matrix ordering) matches exactly.
        let vin_srcs: Vec<ElementId> = (0..self.spec.inputs)
            .map(|i| {
                ckt.vsource(
                    &format!("VIN{i}"),
                    adder.inputs[i],
                    Circuit::GND,
                    Waveform::pwm_with_edges(
                        vdd.value(),
                        frequency.value(),
                        0.5,
                        self.tech.edge_fraction(frequency),
                    ),
                )
            })
            .collect();

        let tau = self.output_tau(vdd);
        let (dt, t_stop, win) = quality.plan(period, tau);
        AdderBatchBench {
            ckt,
            vin_srcs,
            vdd_src,
            output: adder.output,
            edge_fraction: self.tech.edge_fraction(frequency),
            frequency,
            vdd,
            period,
            dt,
            t_stop,
            win,
        }
    }
}

/// Reusable measurement runner for one adder configuration (weights,
/// frequency, supply, quality) across many duty-cycle vectors.
///
/// Created by [`AdderTestbench::batch_runner`]. The runner is `Sync`, so
/// a batch of duty vectors can be fanned over `mssim::sweep::sweep`; each
/// measurement clones the prepared circuit and swaps input waveforms,
/// skipping netlist construction and transient planning.
#[derive(Debug, Clone)]
pub struct AdderBatchBench {
    ckt: Circuit,
    vin_srcs: Vec<ElementId>,
    vdd_src: ElementId,
    output: NodeId,
    edge_fraction: f64,
    frequency: Hertz,
    vdd: Volts,
    period: f64,
    dt: f64,
    t_stop: f64,
    win: usize,
}

impl AdderBatchBench {
    /// Runs one measurement for the given duty-cycle vector.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `duties` does not match the adder's input count.
    pub fn measure(&self, duties: &[f64]) -> Result<AdderMeasurement, Error> {
        assert_eq!(duties.len(), self.vin_srcs.len(), "one duty per input");
        let mut ckt = self.ckt.clone();
        for (&src, &d) in self.vin_srcs.iter().zip(duties) {
            ckt.set_waveform(
                src,
                Waveform::pwm_with_edges(
                    self.vdd.value(),
                    self.frequency.value(),
                    d,
                    self.edge_fraction,
                ),
            )?;
        }

        let result = Session::new(&ckt)
            .transient(&Transient::new(self.dt, self.t_stop).use_initial_conditions())?;

        let vout_trace = result.voltage(self.output);
        let vout = vout_trace.steady_state_average(self.period, self.win);
        let (_, t_end) = vout_trace.span();
        let t_win = t_end - self.win as f64 * self.period;
        let ripple = vout_trace.ripple_between(t_win, t_end);
        let power = result
            .source_power(self.vdd_src)?
            .as_trace()
            .average_between(t_win, t_end);

        Ok(AdderMeasurement {
            vout: Volts(vout),
            ripple: Volts(ripple),
            supply_power: Watts(power),
            vdd: self.vdd,
        })
    }

    /// [`AdderBatchBench::measure`] run under the transient rescue ladder:
    /// recoverable non-convergence is retried per step, and a run whose
    /// ladder runs dry still yields a measurement over the trailing window
    /// of the truncated waveform, flagged `partial` — serving layers can
    /// hand it out as a degraded answer instead of failing the query.
    ///
    /// A run that needs no rescue is bitwise identical to
    /// [`AdderBatchBench::measure`].
    ///
    /// # Errors
    ///
    /// Propagates structural errors (lint rejection, singular matrix,
    /// initial-DC non-convergence), and the terminal non-convergence when
    /// a partial waveform is too short to measure at all.
    ///
    /// # Panics
    ///
    /// Panics if `duties` does not match the adder's input count.
    pub fn measure_rescued(
        &self,
        duties: &[f64],
        policy: &RescuePolicy,
    ) -> Result<RescuedAdderMeasurement, Error> {
        assert_eq!(duties.len(), self.vin_srcs.len(), "one duty per input");
        let mut ckt = self.ckt.clone();
        for (&src, &d) in self.vin_srcs.iter().zip(duties) {
            ckt.set_waveform(
                src,
                Waveform::pwm_with_edges(
                    self.vdd.value(),
                    self.frequency.value(),
                    d,
                    self.edge_fraction,
                ),
            )?;
        }

        let outcome = Session::new(&ckt).transient_rescued(
            &Transient::new(self.dt, self.t_stop).use_initial_conditions(),
            policy,
        )?;
        let partial = outcome.is_partial();
        let rescue_attempts = outcome.rescues().total_attempts();
        let (result, terminal) = match outcome {
            TransientOutcome::Complete { result, .. } => (result, None),
            TransientOutcome::Partial { result, error, .. } => (result, Some(error)),
        };

        let vout_trace = result.voltage(self.output);
        let (t_start, t_end) = vout_trace.span();
        // Full window for a complete run (identical to measure()); the
        // trailing window clamped to the recorded span for a partial one.
        let t_win = if partial {
            let clamped = (t_end - self.win as f64 * self.period).max(t_start);
            if vout_trace.len() < 2 || clamped >= t_end {
                return Err(terminal.expect("partial outcome carries its error"));
            }
            clamped
        } else {
            t_end - self.win as f64 * self.period
        };
        let vout = vout_trace.average_between(t_win, t_end);
        let ripple = vout_trace.ripple_between(t_win, t_end);
        let power = result
            .source_power(self.vdd_src)?
            .as_trace()
            .average_between(t_win, t_end);

        Ok(RescuedAdderMeasurement {
            measurement: AdderMeasurement {
                vout: Volts(vout),
                ripple: Volts(ripple),
                supply_power: Watts(power),
                vdd: self.vdd,
            },
            partial,
            rescue_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;

    /// Lower-frequency, small-Cout technology keeps debug-mode tests fast;
    /// the paper configuration runs in the bench harness.
    fn quick_tech() -> Technology {
        let mut t = Technology::umc65_like();
        t.cout_inverter = Farads(100e-15);
        t.cout_adder = Farads(500e-15);
        t.frequency = Hertz(50e6);
        t
    }

    #[test]
    fn inverter_transfer_is_inverse_in_duty() {
        let tb = InverterTestbench::new(&quick_tech());
        let q = SimQuality::fast();
        let m25 = tb.measure(&MeasureSpec::duty(0.25), &q).unwrap();
        let m75 = tb.measure(&MeasureSpec::duty(0.75), &q).unwrap();
        assert!(m25.vout.value() > m75.vout.value());
        assert!((m25.vout.value() - 2.5 * 0.75).abs() < 0.15, "{m25:?}");
        assert!((m75.vout.value() - 2.5 * 0.25).abs() < 0.15, "{m75:?}");
    }

    #[test]
    fn inverter_measurement_reports_positive_power_and_ripple() {
        let tb = InverterTestbench::new(&quick_tech());
        let m = tb
            .measure(&MeasureSpec::duty(0.5), &SimQuality::fast())
            .unwrap();
        assert!(m.supply_power.value() > 0.0, "power {:?}", m.supply_power);
        assert!(m.ripple.value() > 0.0);
        assert!((m.relative_output() - 0.5).abs() < 0.08);
    }

    #[test]
    fn no_load_variant_is_more_nonlinear_than_100k() {
        // Deviation from the ideal straight line at mid-duty should be
        // visibly larger without the linearising resistor — the essence of
        // the paper's Fig. 4.
        let tech = quick_tech();
        let q = SimQuality::fast();
        let err_of = |tb: &InverterTestbench| {
            let m = tb.measure(&MeasureSpec::duty(0.5), &q).unwrap();
            (m.vout.value() - analytic::inverter_vout(2.5, 0.5)).abs()
        };
        let err_noload = err_of(&InverterTestbench::without_load(&tech));
        let err_100k = err_of(&InverterTestbench::new(&tech));
        assert!(
            err_noload > err_100k,
            "no-load err {err_noload:.4} should exceed 100k err {err_100k:.4}"
        );
    }

    #[test]
    fn adder_measurement_tracks_eq2() {
        let tech = quick_tech();
        let tb = AdderTestbench::paper(&tech);
        assert_eq!(tb.transistor_count(), 54);
        let duties = [0.7, 0.8, 0.9];
        let weights = [7, 7, 7];
        let m = tb.measure(&duties, &weights, &SimQuality::fast()).unwrap();
        let expect = analytic::adder_vout(2.5, &duties, &weights, 3);
        assert!(
            (m.vout.value() - expect).abs() < 0.15,
            "vout {:.3} vs Eq.2 {expect:.3}",
            m.vout.value()
        );
    }

    #[test]
    fn batch_runner_matches_measure_at_bitwise() {
        let tech = quick_tech();
        let tb = AdderTestbench::paper(&tech);
        let weights = [7, 5, 3];
        let quality = SimQuality::fast();
        let runner = tb.batch_runner(&weights, tech.frequency, tech.vdd, &quality);
        for duties in [[0.7, 0.8, 0.9], [0.0, 0.5, 1.0], [0.25, 0.25, 0.25]] {
            let reference = tb
                .measure_at(&duties, &weights, tech.frequency, tech.vdd, &quality)
                .unwrap();
            let batched = runner.measure(&duties).unwrap();
            assert_eq!(batched.vout, reference.vout, "{duties:?}");
            assert_eq!(batched.ripple, reference.ripple, "{duties:?}");
            assert_eq!(batched.supply_power, reference.supply_power, "{duties:?}");
        }
    }

    #[test]
    fn measure_rescued_matches_measure_bitwise_when_clean() {
        let tech = quick_tech();
        let tb = AdderTestbench::paper(&tech);
        let weights = [7, 5, 3];
        let quality = SimQuality::fast();
        let runner = tb.batch_runner(&weights, tech.frequency, tech.vdd, &quality);
        let duties = [0.3, 0.6, 0.9];
        let clean = runner.measure(&duties).unwrap();
        let rescued = runner
            .measure_rescued(&duties, &RescuePolicy::default())
            .unwrap();
        assert!(!rescued.partial);
        assert_eq!(rescued.rescue_attempts, 0);
        assert_eq!(rescued.measurement, clean);
    }

    #[test]
    fn quality_plan_respects_caps() {
        let q = SimQuality::fast();
        // Extreme τ/T ratio must hit the period cap.
        let (_, t_stop, _) = q.plan(1e-9, 1.0);
        assert!(t_stop <= q.max_total_periods as f64 * 1e-9 + 1e-15);
        // Relaxed ratio obeys the minimum settle.
        let (dt, t_stop2, _) = q.plan(1e-6, 1e-9);
        assert!((dt - 1e-6 / 100.0).abs() < 1e-18);
        let periods = (t_stop2 / 1e-6).round() as usize;
        assert_eq!(periods, q.min_settle_periods + q.measure_periods);
    }

    #[test]
    #[should_panic(expected = "duty must be in 0..=1")]
    fn measure_spec_rejects_bad_duty() {
        let _ = MeasureSpec::duty(-0.1);
    }

    #[test]
    fn frequency_response_is_a_low_pass() {
        let tech = Technology::umc65_like();
        let tb = InverterTestbench::new(&tech);
        let freqs = mssim::sweep::logspace(1e3, 1e9, 13);
        let resp = tb.frequency_response(&freqs).unwrap();
        // Normalised to the first point.
        assert!((resp[0].1 - 1.0).abs() < 1e-12);
        // Monotone roll-off.
        for w in resp.windows(2) {
            assert!(w[1].1 <= w[0].1 * 1.001, "{resp:?}");
        }
        // Strong attenuation at 1 GHz — this is the ripple filter that
        // makes Fig. 5 flat.
        assert!(resp.last().unwrap().1 < 1e-2, "{resp:?}");
        // Beyond the pole the slope approaches −20 dB/decade.
        let hi = resp[resp.len() - 1].1;
        let lo = resp[resp.len() - 2].1; // one log-step below
        let step = freqs[12] / freqs[11];
        assert!(
            (lo / hi - step).abs() / step < 0.2,
            "slope ratio {} vs decade step {step}",
            lo / hi
        );
    }

    #[test]
    fn no_load_inverter_has_wider_bandwidth() {
        // Without the series resistor the output pole sits much higher —
        // the quantitative version of "Rout adds ripple filtering". Bias
        // the gate at the rail so the conducting NMOS is in triode and
        // its ~9 kΩ on-resistance sets the unloaded pole (at mid-rail
        // both devices would be saturated and high-impedance instead).
        let tech = Technology::umc65_like();
        let freqs = mssim::sweep::logspace(1e4, 1e10, 31);
        let bias = tech.vdd;
        let half_bandwidth = |tb: &InverterTestbench| {
            let resp = tb.frequency_response_at(bias, &freqs).unwrap();
            resp.iter()
                .find(|(_, m)| *m < 0.5)
                .map(|(f, _)| *f)
                .unwrap_or(f64::INFINITY)
        };
        let bw_loaded = half_bandwidth(&InverterTestbench::new(&tech));
        let bw_unloaded = half_bandwidth(&InverterTestbench::without_load(&tech));
        assert!(
            bw_unloaded > 5.0 * bw_loaded,
            "unloaded {bw_unloaded:.3e} vs loaded {bw_loaded:.3e}"
        );
    }
}
