//! The weighted adder — the paper's Fig. 3.
//!
//! `k` PWM inputs, each multiplied by an `n`-bit digital weight, are summed
//! onto one output capacitor. Every weight bit owns a 6-transistor AND
//! cell whose output drives the shared node through a binary-scaled
//! resistor: the LSB cell (×1) uses the smallest transistors and the
//! largest resistor, each higher bit doubles the transistor width and
//! halves the resistor. A **disabled** bit still drives the node — low —
//! so the output is the conductance-weighted average described by the
//! paper's Eq. 2 (see [`crate::analytic::adder_vout`]).

use mssim::prelude::{Circuit, ElementId, NodeId};

use crate::gates::AndCell;
use crate::tech::Technology;

/// Dimensions of a weighted adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderSpec {
    /// Number of PWM inputs `k`.
    pub inputs: usize,
    /// Weight width `n` in bits.
    pub bits: u32,
}

impl AdderSpec {
    /// Creates a spec, validating the dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0` or `bits` is outside `1..=16`.
    pub fn new(inputs: usize, bits: u32) -> Self {
        assert!(inputs > 0, "adder needs at least one input");
        assert!((1..=16).contains(&bits), "weight width must be 1..=16 bits");
        AdderSpec { inputs, bits }
    }

    /// The paper's 3×3 case study.
    pub fn paper_3x3() -> Self {
        AdderSpec::new(3, 3)
    }

    /// Largest representable weight, `2ⁿ − 1`.
    pub fn max_weight(self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Total transistor count: 6 per weight bit per input (the paper's 54
    /// for 3×3).
    pub fn transistor_count(self) -> usize {
        self.inputs * self.bits as usize * AndCell::TRANSISTORS
    }
}

/// Handles to one instantiated weighted adder.
#[derive(Debug, Clone)]
pub struct WeightedAdder {
    spec: AdderSpec,
    weights: Vec<u32>,
    /// PWM input nodes, one per input.
    pub inputs: Vec<NodeId>,
    /// Shared analog output node.
    pub output: NodeId,
    /// AND cells, indexed `[input][bit]`.
    pub cells: Vec<Vec<AndCell>>,
    /// Per-cell output resistors, indexed `[input][bit]`.
    pub cell_resistors: Vec<Vec<ElementId>>,
    /// The shared output capacitor.
    pub cout: ElementId,
}

impl WeightedAdder {
    /// Instantiates the adder into `circuit` with the given digital
    /// weights. Weight bits are wired structurally: a set bit ties the
    /// cell's enable gate to `vdd`, a clear bit ties it to ground (the
    /// cell then continuously drives low, loading the output as the paper
    /// intends).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != spec.inputs`, any weight exceeds
    /// `spec.max_weight()`, or element names collide (reuse of `prefix`).
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        vdd: NodeId,
        weights: &[u32],
        spec: AdderSpec,
    ) -> Self {
        assert_eq!(
            weights.len(),
            spec.inputs,
            "need one weight per input ({} != {})",
            weights.len(),
            spec.inputs
        );
        for &w in weights {
            assert!(
                w <= spec.max_weight(),
                "weight {w} exceeds {}-bit range",
                spec.bits
            );
        }

        let output = circuit.node(&format!("{prefix}_out"));
        let mut inputs = Vec::with_capacity(spec.inputs);
        let mut cells = Vec::with_capacity(spec.inputs);
        let mut cell_resistors = Vec::with_capacity(spec.inputs);

        #[allow(clippy::needless_range_loop)] // `i` names nodes AND indexes weights
        for i in 0..spec.inputs {
            let input = circuit.node(&format!("{prefix}_in{i}"));
            inputs.push(input);
            let mut row = Vec::with_capacity(spec.bits as usize);
            let mut row_res = Vec::with_capacity(spec.bits as usize);
            for b in 0..spec.bits {
                let scale = (1u32 << b) as f64;
                let enable = if weights[i] & (1 << b) != 0 {
                    vdd
                } else {
                    Circuit::GND
                };
                let cell = AndCell::build(
                    circuit,
                    tech,
                    &format!("{prefix}_c{i}b{b}"),
                    input,
                    enable,
                    vdd,
                    scale,
                );
                let r = circuit.resistor(
                    &format!("{prefix}_R{i}b{b}"),
                    cell.output,
                    output,
                    tech.rout.value() / scale,
                );
                row.push(cell);
                row_res.push(r);
            }
            cells.push(row);
            cell_resistors.push(row_res);
        }

        let cout = circuit.capacitor(
            &format!("{prefix}_Cout"),
            output,
            Circuit::GND,
            tech.cout_adder.value(),
        );

        WeightedAdder {
            spec,
            weights: weights.to_vec(),
            inputs,
            output,
            cells,
            cell_resistors,
            cout,
        }
    }

    /// The adder's dimensions.
    pub fn spec(&self) -> AdderSpec {
        self.spec
    }

    /// The structural weights this instance was built with.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Total transistor count of this instance.
    pub fn transistor_count(&self) -> usize {
        self.spec.transistor_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssim::prelude::*;

    #[test]
    fn spec_paper_case_study() {
        let spec = AdderSpec::paper_3x3();
        assert_eq!(spec.inputs, 3);
        assert_eq!(spec.bits, 3);
        assert_eq!(spec.max_weight(), 7);
        // The paper's headline simplicity claim: 54 transistors.
        assert_eq!(spec.transistor_count(), 54);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_weight_panics() {
        let mut ckt = Circuit::new();
        let tech = Technology::umc65_like();
        let vdd = ckt.node("vdd");
        let _ = WeightedAdder::build(
            &mut ckt,
            &tech,
            "a",
            vdd,
            &[8, 0, 0],
            AdderSpec::paper_3x3(),
        );
    }

    #[test]
    #[should_panic(expected = "one weight per input")]
    fn wrong_weight_count_panics() {
        let mut ckt = Circuit::new();
        let tech = Technology::umc65_like();
        let vdd = ckt.node("vdd");
        let _ = WeightedAdder::build(&mut ckt, &tech, "a", vdd, &[1, 2], AdderSpec::paper_3x3());
    }

    fn dc_fixture(input_levels: &[f64], weights: &[u32]) -> (Circuit, WeightedAdder) {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        let adder = WeightedAdder::build(
            &mut ckt,
            &tech,
            "a",
            vdd,
            weights,
            AdderSpec::new(input_levels.len(), 3),
        );
        for (i, &lv) in input_levels.iter().enumerate() {
            let node = adder.inputs[i];
            ckt.vsource(&format!("VIN{i}"), node, Circuit::GND, Waveform::dc(lv));
        }
        (ckt, adder)
    }

    #[test]
    fn dc_extremes() {
        // All inputs high, all weights maximal → output at Vdd.
        let (ckt, adder) = dc_fixture(&[2.5, 2.5, 2.5], &[7, 7, 7]);
        let op = dc_operating_point(&ckt).unwrap();
        assert!(op.voltage(adder.output) > 2.4);

        // All inputs low → output at ground.
        let (ckt, adder) = dc_fixture(&[0.0, 0.0, 0.0], &[7, 7, 7]);
        let op = dc_operating_point(&ckt).unwrap();
        assert!(op.voltage(adder.output) < 0.1);
    }

    #[test]
    fn dc_conductance_average() {
        // One input high (weight 7 of 21 total conductance units) → the
        // output sits at Vdd/3, the conductance-weighted average.
        let (ckt, adder) = dc_fixture(&[2.5, 0.0, 0.0], &[7, 7, 7]);
        let op = dc_operating_point(&ckt).unwrap();
        let v = op.voltage(adder.output);
        let expect = 2.5 / 3.0;
        assert!((v - expect).abs() < 0.08, "v = {v}, expected ≈ {expect:.3}");
    }

    #[test]
    fn disabled_weight_loads_the_node() {
        // Input high but weight 0: its cells drive low. With the other
        // inputs low too, output must be ~0, not floating.
        let (ckt, adder) = dc_fixture(&[2.5, 0.0, 0.0], &[0, 7, 7]);
        let op = dc_operating_point(&ckt).unwrap();
        assert!(op.voltage(adder.output) < 0.1);
    }

    #[test]
    fn binary_weighting_of_resistors() {
        let (ckt, adder) = dc_fixture(&[0.0, 0.0, 0.0], &[7, 7, 7]);
        for row in &adder.cell_resistors {
            let values: Vec<f64> = row
                .iter()
                .map(|&id| match ckt.element(id) {
                    mssim::elements::Element::Resistor { ohms, .. } => *ohms,
                    _ => panic!("expected resistor"),
                })
                .collect();
            assert!((values[0] / values[1] - 2.0).abs() < 1e-12);
            assert!((values[1] / values[2] - 2.0).abs() < 1e-12);
        }
    }

    /// Small (2×2, reduced Cout) transient check against Eq. 2 so the unit
    /// suite stays fast; the paper-sized Table II runs live in the bench
    /// harness.
    #[test]
    fn pwm_transient_matches_eq2() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        let spec = AdderSpec::new(2, 2);
        let weights = [3u32, 1];
        let duties = [0.8, 0.4];
        let adder = WeightedAdder::build(&mut ckt, &tech, "a", vdd, &weights, spec);
        // Shrink the output capacitor so the node settles in a few cycles.
        ckt.set_capacitance(adder.cout, 200e-15).unwrap();
        let freq = 50e6;
        for (i, &d) in duties.iter().enumerate() {
            ckt.vsource(
                &format!("VIN{i}"),
                adder.inputs[i],
                Circuit::GND,
                Waveform::pwm(2.5, freq, d),
            );
        }
        let period = 1.0 / freq;
        let result = Transient::new(period / 200.0, 25.0 * period)
            .use_initial_conditions()
            .run(&ckt)
            .unwrap();
        let vout = result.voltage(adder.output).steady_state_average(period, 3);
        let expect = crate::analytic::adder_vout(2.5, &duties, &weights, 2);
        assert!(
            (vout - expect).abs() < 0.12,
            "vout = {vout:.3}, Eq.2 = {expect:.3}"
        );
    }
}
