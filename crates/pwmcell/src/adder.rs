//! The weighted adder — the paper's Fig. 3.
//!
//! `k` PWM inputs, each multiplied by an `n`-bit digital weight, are summed
//! onto one output capacitor. Every weight bit owns a 6-transistor AND
//! cell whose output drives the shared node through a binary-scaled
//! resistor: the LSB cell (×1) uses the smallest transistors and the
//! largest resistor, each higher bit doubles the transistor width and
//! halves the resistor. A **disabled** bit still drives the node — low —
//! so the output is the conductance-weighted average described by the
//! paper's Eq. 2 (see [`crate::analytic::adder_vout`]).

use mssim::prelude::{Circuit, ElementId, NodeId};

use crate::gates::AndCell;
use crate::tech::Technology;

/// Dimensions of a weighted adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderSpec {
    /// Number of PWM inputs `k`.
    pub inputs: usize,
    /// Weight width `n` in bits.
    pub bits: u32,
}

impl AdderSpec {
    /// Creates a spec, validating the dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0` or `bits` is outside `1..=16`.
    pub fn new(inputs: usize, bits: u32) -> Self {
        assert!(inputs > 0, "adder needs at least one input");
        assert!((1..=16).contains(&bits), "weight width must be 1..=16 bits");
        AdderSpec { inputs, bits }
    }

    /// The paper's 3×3 case study.
    pub fn paper_3x3() -> Self {
        AdderSpec::new(3, 3)
    }

    /// Largest representable weight, `2ⁿ − 1`.
    pub fn max_weight(self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Total transistor count: 6 per weight bit per input (the paper's 54
    /// for 3×3).
    pub fn transistor_count(self) -> usize {
        self.inputs * self.bits as usize * AndCell::TRANSISTORS
    }
}

/// Handles to one instantiated weighted adder.
#[derive(Debug, Clone)]
pub struct WeightedAdder {
    spec: AdderSpec,
    weights: Vec<u32>,
    /// PWM input nodes, one per input.
    pub inputs: Vec<NodeId>,
    /// Shared analog output node.
    pub output: NodeId,
    /// AND cells, indexed `[input][bit]`.
    pub cells: Vec<Vec<AndCell>>,
    /// Per-cell output resistors, indexed `[input][bit]`.
    pub cell_resistors: Vec<Vec<ElementId>>,
    /// The shared output capacitor.
    pub cout: ElementId,
}

impl WeightedAdder {
    /// Instantiates the adder into `circuit` with the given digital
    /// weights. Weight bits are wired structurally: a set bit ties the
    /// cell's enable gate to `vdd`, a clear bit ties it to ground (the
    /// cell then continuously drives low, loading the output as the paper
    /// intends).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != spec.inputs`, any weight exceeds
    /// `spec.max_weight()`, or element names collide (reuse of `prefix`).
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        vdd: NodeId,
        weights: &[u32],
        spec: AdderSpec,
    ) -> Self {
        assert_eq!(
            weights.len(),
            spec.inputs,
            "need one weight per input ({} != {})",
            weights.len(),
            spec.inputs
        );
        for &w in weights {
            assert!(
                w <= spec.max_weight(),
                "weight {w} exceeds {}-bit range",
                spec.bits
            );
        }

        let output = circuit.node(&format!("{prefix}_out"));
        let mut inputs = Vec::with_capacity(spec.inputs);
        let mut cells = Vec::with_capacity(spec.inputs);
        let mut cell_resistors = Vec::with_capacity(spec.inputs);

        #[allow(clippy::needless_range_loop)] // `i` names nodes AND indexes weights
        for i in 0..spec.inputs {
            let input = circuit.node(&format!("{prefix}_in{i}"));
            inputs.push(input);
            let mut row = Vec::with_capacity(spec.bits as usize);
            let mut row_res = Vec::with_capacity(spec.bits as usize);
            for b in 0..spec.bits {
                let scale = (1u32 << b) as f64;
                let enable = if weights[i] & (1 << b) != 0 {
                    vdd
                } else {
                    Circuit::GND
                };
                let cell = AndCell::build(
                    circuit,
                    tech,
                    &format!("{prefix}_c{i}b{b}"),
                    input,
                    enable,
                    vdd,
                    scale,
                );
                let r = circuit.resistor(
                    &format!("{prefix}_R{i}b{b}"),
                    cell.output,
                    output,
                    tech.rout.value() / scale,
                );
                row.push(cell);
                row_res.push(r);
            }
            cells.push(row);
            cell_resistors.push(row_res);
        }

        let cout = circuit.capacitor(
            &format!("{prefix}_Cout"),
            output,
            Circuit::GND,
            tech.cout_adder.value(),
        );

        WeightedAdder {
            spec,
            weights: weights.to_vec(),
            inputs,
            output,
            cells,
            cell_resistors,
            cout,
        }
    }

    /// The adder's dimensions.
    pub fn spec(&self) -> AdderSpec {
        self.spec
    }

    /// The structural weights this instance was built with.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Total transistor count of this instance.
    pub fn transistor_count(&self) -> usize {
        self.spec.transistor_count()
    }
}

/// Switch-level realization of the weighted adder.
///
/// Replaces every 6-transistor AND cell + resistor of [`WeightedAdder`]
/// with a complementary pair of voltage-controlled switches: a pull-up
/// from `vdd` and a pull-down to ground, both scaled to the bit's binary
/// weight (`r_on = rout / 2ᵇ`). When the PWM input is above mid-rail the
/// pull-up conducts; below mid-rail the pull-down does, so the output is
/// the same conductance-weighted average as Eq. 2 without the MOSFET
/// channel nonlinearity. A cleared weight bit has its controls tied to
/// ground, leaving the pull-down permanently on — the bit still loads the
/// node low, exactly like a disabled AND cell.
///
/// This is the abstraction level used by the hot-path benchmarks: the
/// Jacobian is piecewise constant over each flat PWM portion, which is
/// precisely the regime the solver's factorization and bypass caches are
/// built to exploit.
#[derive(Debug, Clone)]
pub struct SwitchAdder {
    spec: AdderSpec,
    weights: Vec<u32>,
    /// PWM input nodes, one per input.
    pub inputs: Vec<NodeId>,
    /// Shared analog output node.
    pub output: NodeId,
    /// `(pull-up, pull-down)` switch pairs, indexed `[input][bit]`.
    pub switch_pairs: Vec<Vec<(ElementId, ElementId)>>,
    /// The shared output capacitor.
    pub cout: ElementId,
}

impl SwitchAdder {
    /// Off-state resistance of every switch, effectively an open circuit.
    pub const R_OFF: f64 = 1e12;

    /// Instantiates the switch-level adder into `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != spec.inputs`, any weight exceeds
    /// `spec.max_weight()`, or element names collide (reuse of `prefix`).
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        vdd: NodeId,
        weights: &[u32],
        spec: AdderSpec,
    ) -> Self {
        assert_eq!(
            weights.len(),
            spec.inputs,
            "need one weight per input ({} != {})",
            weights.len(),
            spec.inputs
        );
        for &w in weights {
            assert!(
                w <= spec.max_weight(),
                "weight {w} exceeds {}-bit range",
                spec.bits
            );
        }

        let half_vdd = tech.vdd.value() / 2.0;
        let output = circuit.node(&format!("{prefix}_out"));
        let mut inputs = Vec::with_capacity(spec.inputs);
        let mut switch_pairs = Vec::with_capacity(spec.inputs);

        #[allow(clippy::needless_range_loop)] // `i` names nodes AND indexes weights
        for i in 0..spec.inputs {
            let input = circuit.node(&format!("{prefix}_in{i}"));
            inputs.push(input);
            let mut row = Vec::with_capacity(spec.bits as usize);
            for b in 0..spec.bits {
                let scale = (1u32 << b) as f64;
                let r_on = tech.rout.value() / scale;
                // A cleared bit never sees its input: the pull-up stays
                // open and the pull-down stays closed, loading the node.
                let ctrl = if weights[i] & (1 << b) != 0 {
                    input
                } else {
                    Circuit::GND
                };
                // Closed when v(ctrl) > Vdd/2.
                let s_up = circuit.switch(
                    &format!("{prefix}_SU{i}b{b}"),
                    vdd,
                    output,
                    ctrl,
                    Circuit::GND,
                    half_vdd,
                    r_on,
                    Self::R_OFF,
                );
                // Control sense inverted: closed when v(ctrl) < Vdd/2.
                let s_down = circuit.switch(
                    &format!("{prefix}_SD{i}b{b}"),
                    output,
                    Circuit::GND,
                    Circuit::GND,
                    ctrl,
                    -half_vdd,
                    r_on,
                    Self::R_OFF,
                );
                row.push((s_up, s_down));
            }
            switch_pairs.push(row);
        }

        let cout = circuit.capacitor(
            &format!("{prefix}_Cout"),
            output,
            Circuit::GND,
            tech.cout_adder.value(),
        );

        SwitchAdder {
            spec,
            weights: weights.to_vec(),
            inputs,
            output,
            switch_pairs,
            cout,
        }
    }

    /// The adder's dimensions.
    pub fn spec(&self) -> AdderSpec {
        self.spec
    }

    /// The structural weights this instance was built with.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Total switch count: two per weight bit per input.
    pub fn switch_count(&self) -> usize {
        self.spec.inputs * self.spec.bits as usize * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssim::prelude::*;

    #[test]
    fn spec_paper_case_study() {
        let spec = AdderSpec::paper_3x3();
        assert_eq!(spec.inputs, 3);
        assert_eq!(spec.bits, 3);
        assert_eq!(spec.max_weight(), 7);
        // The paper's headline simplicity claim: 54 transistors.
        assert_eq!(spec.transistor_count(), 54);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_weight_panics() {
        let mut ckt = Circuit::new();
        let tech = Technology::umc65_like();
        let vdd = ckt.node("vdd");
        let _ = WeightedAdder::build(
            &mut ckt,
            &tech,
            "a",
            vdd,
            &[8, 0, 0],
            AdderSpec::paper_3x3(),
        );
    }

    #[test]
    #[should_panic(expected = "one weight per input")]
    fn wrong_weight_count_panics() {
        let mut ckt = Circuit::new();
        let tech = Technology::umc65_like();
        let vdd = ckt.node("vdd");
        let _ = WeightedAdder::build(&mut ckt, &tech, "a", vdd, &[1, 2], AdderSpec::paper_3x3());
    }

    fn dc_fixture(input_levels: &[f64], weights: &[u32]) -> (Circuit, WeightedAdder) {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        let adder = WeightedAdder::build(
            &mut ckt,
            &tech,
            "a",
            vdd,
            weights,
            AdderSpec::new(input_levels.len(), 3),
        );
        for (i, &lv) in input_levels.iter().enumerate() {
            let node = adder.inputs[i];
            ckt.vsource(&format!("VIN{i}"), node, Circuit::GND, Waveform::dc(lv));
        }
        (ckt, adder)
    }

    #[test]
    fn dc_extremes() {
        // All inputs high, all weights maximal → output at Vdd.
        let (ckt, adder) = dc_fixture(&[2.5, 2.5, 2.5], &[7, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!(op.voltage(adder.output) > 2.4);

        // All inputs low → output at ground.
        let (ckt, adder) = dc_fixture(&[0.0, 0.0, 0.0], &[7, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!(op.voltage(adder.output) < 0.1);
    }

    #[test]
    fn dc_conductance_average() {
        // One input high (weight 7 of 21 total conductance units) → the
        // output sits at Vdd/3, the conductance-weighted average.
        let (ckt, adder) = dc_fixture(&[2.5, 0.0, 0.0], &[7, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        let v = op.voltage(adder.output);
        let expect = 2.5 / 3.0;
        assert!((v - expect).abs() < 0.08, "v = {v}, expected ≈ {expect:.3}");
    }

    #[test]
    fn disabled_weight_loads_the_node() {
        // Input high but weight 0: its cells drive low. With the other
        // inputs low too, output must be ~0, not floating.
        let (ckt, adder) = dc_fixture(&[2.5, 0.0, 0.0], &[0, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!(op.voltage(adder.output) < 0.1);
    }

    #[test]
    fn binary_weighting_of_resistors() {
        let (ckt, adder) = dc_fixture(&[0.0, 0.0, 0.0], &[7, 7, 7]);
        for row in &adder.cell_resistors {
            let values: Vec<f64> = row
                .iter()
                .map(|&id| match ckt.element(id) {
                    mssim::elements::Element::Resistor { ohms, .. } => *ohms,
                    _ => panic!("expected resistor"),
                })
                .collect();
            assert!((values[0] / values[1] - 2.0).abs() < 1e-12);
            assert!((values[1] / values[2] - 2.0).abs() < 1e-12);
        }
    }

    fn switch_dc_fixture(input_levels: &[f64], weights: &[u32]) -> (Circuit, SwitchAdder) {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        let adder = SwitchAdder::build(
            &mut ckt,
            &tech,
            "s",
            vdd,
            weights,
            AdderSpec::new(input_levels.len(), 3),
        );
        for (i, &lv) in input_levels.iter().enumerate() {
            let node = adder.inputs[i];
            ckt.vsource(&format!("VIN{i}"), node, Circuit::GND, Waveform::dc(lv));
        }
        (ckt, adder)
    }

    #[test]
    fn switch_adder_dc_extremes() {
        // All inputs high → every pull-up on, output at Vdd.
        let (ckt, adder) = switch_dc_fixture(&[2.5, 2.5, 2.5], &[7, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!((op.voltage(adder.output) - 2.5).abs() < 1e-3);

        // All inputs low → every pull-down on, output at ground.
        let (ckt, adder) = switch_dc_fixture(&[0.0, 0.0, 0.0], &[7, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!(op.voltage(adder.output).abs() < 1e-3);
    }

    #[test]
    fn switch_adder_matches_eq2_conductance_average() {
        // One of three equal-weight inputs high: ideal switches realize
        // Eq. 2 exactly, so the output sits at Vdd/3 up to the r_off leak.
        let (ckt, adder) = switch_dc_fixture(&[2.5, 0.0, 0.0], &[7, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        let v = op.voltage(adder.output);
        let expect = crate::analytic::adder_vout(2.5, &[1.0, 0.0, 0.0], &[7, 7, 7], 3);
        assert!((v - expect).abs() < 1e-3, "v = {v}, Eq.2 = {expect:.4}");
    }

    #[test]
    fn switch_adder_disabled_weight_loads_the_node() {
        // Input high but weight 0: the pair's controls are grounded, so
        // the pull-down conducts and the node reads low, not floating.
        let (ckt, adder) = switch_dc_fixture(&[2.5, 0.0, 0.0], &[0, 7, 7]);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!(op.voltage(adder.output).abs() < 1e-3);
    }

    #[test]
    fn switch_adder_counts() {
        let mut ckt = Circuit::new();
        let tech = Technology::umc65_like();
        let vdd = ckt.node("vdd");
        let adder = SwitchAdder::build(
            &mut ckt,
            &tech,
            "s",
            vdd,
            &[7, 7, 7],
            AdderSpec::paper_3x3(),
        );
        assert_eq!(adder.switch_count(), 18);
        assert_eq!(adder.weights(), &[7, 7, 7]);
        assert_eq!(adder.spec(), AdderSpec::paper_3x3());
    }

    /// Small (2×2, reduced Cout) transient check against Eq. 2 so the unit
    /// suite stays fast; the paper-sized Table II runs live in the bench
    /// harness.
    #[test]
    fn pwm_transient_matches_eq2() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        let spec = AdderSpec::new(2, 2);
        let weights = [3u32, 1];
        let duties = [0.8, 0.4];
        let adder = WeightedAdder::build(&mut ckt, &tech, "a", vdd, &weights, spec);
        // Shrink the output capacitor so the node settles in a few cycles.
        ckt.set_capacitance(adder.cout, 200e-15).unwrap();
        let freq = 50e6;
        for (i, &d) in duties.iter().enumerate() {
            ckt.vsource(
                &format!("VIN{i}"),
                adder.inputs[i],
                Circuit::GND,
                Waveform::pwm(2.5, freq, d),
            );
        }
        let period = 1.0 / freq;
        let result = Session::new(&ckt)
            .transient(&Transient::new(period / 200.0, 25.0 * period).use_initial_conditions())
            .unwrap();
        let vout = result.voltage(adder.output).steady_state_average(period, 3);
        let expect = crate::analytic::adder_vout(2.5, &duties, &weights, 2);
        assert!(
            (vout - expect).abs() < 0.12,
            "vout = {vout:.3}, Eq.2 = {expect:.3}"
        );
    }
}
