//! The transcoding inverter — the paper's Fig. 2.
//!
//! A static CMOS inverter "analogised" by three measures so that its
//! output becomes the time-average of its switching waveform, i.e. a
//! voltage proportional to `1 − duty`:
//!
//! 1. high input switching frequency,
//! 2. increased output capacitance (`Cout` to ground), and
//! 3. limited output current (series `Rout`), which also linearises the
//!    transfer characteristic by swamping the drain-voltage-dependent
//!    transistor resistance.

use mssim::prelude::{Circuit, ElementId, NodeId, Ohms};
use mssim::units::Farads;

use crate::tech::Technology;

/// Handles to one instantiated transcoding inverter.
#[derive(Debug, Clone)]
pub struct Inverter {
    /// PWM input (gate) node.
    pub input: NodeId,
    /// Analog output node (across `Cout`).
    pub output: NodeId,
    /// Internal drain node (equals `output` when built without `Rout`).
    pub drain: NodeId,
    /// Pull-up PMOS element.
    pub pmos: ElementId,
    /// Pull-down NMOS element.
    pub nmos: ElementId,
    /// Series output resistor, if present.
    pub rout: Option<ElementId>,
    /// Output capacitor element.
    pub cout: ElementId,
}

impl Inverter {
    /// Instantiates the Fig. 2 inverter into `circuit`.
    ///
    /// `rout = None` builds the "no load (resistor)" variant of the
    /// paper's Fig. 4, where the drain drives `Cout` directly.
    /// All element names are prefixed with `prefix` so multiple instances
    /// can coexist.
    ///
    /// # Panics
    ///
    /// Panics if element names collide (reuse of `prefix`) or nodes belong
    /// to a different circuit.
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        input: NodeId,
        vdd: NodeId,
        rout: Option<Ohms>,
        cout: Farads,
    ) -> Self {
        let output = circuit.node(&format!("{prefix}_out"));
        let drain = match rout {
            Some(_) => circuit.node(&format!("{prefix}_drv")),
            None => output,
        };
        let pmos = circuit.mosfet(&format!("{prefix}_MP"), drain, input, vdd, tech.pmos);
        let nmos = circuit.mosfet(
            &format!("{prefix}_MN"),
            drain,
            input,
            Circuit::GND,
            tech.nmos,
        );
        let rout_elem = rout.map(|r| {
            // With a series resistor the drain is a separate node; give it
            // its junction parasitic (without one, Cout dominates anyway).
            circuit.capacitor(
                &format!("{prefix}_Cp"),
                drain,
                Circuit::GND,
                tech.cnode.value(),
            );
            circuit.resistor(&format!("{prefix}_Rout"), drain, output, r.value())
        });
        let cout_elem = circuit.capacitor(
            &format!("{prefix}_Cout"),
            output,
            Circuit::GND,
            cout.value(),
        );
        Inverter {
            input,
            output,
            drain,
            pmos,
            nmos,
            rout: rout_elem,
            cout: cout_elem,
        }
    }

    /// Number of transistors in this cell (always 2).
    pub fn transistor_count(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssim::prelude::*;

    #[test]
    fn builds_with_and_without_rout() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));

        let inv = Inverter::build(
            &mut ckt,
            &tech,
            "u1",
            inp,
            vdd,
            Some(tech.rout),
            tech.cout_inverter,
        );
        assert_ne!(inv.drain, inv.output);
        assert!(inv.rout.is_some());
        assert_eq!(inv.transistor_count(), 2);

        let inv2 = Inverter::build(&mut ckt, &tech, "u2", inp, vdd, None, tech.cout_inverter);
        assert_eq!(inv2.drain, inv2.output);
        assert!(inv2.rout.is_none());

        let report = mssim::lint::lint(&ckt);
        assert!(!report.has_denials(), "lint denials: {report}");
    }

    #[test]
    fn dc_transfer_inverts() {
        let tech = Technology::umc65_like();
        for (vin, hi) in [(0.0, true), (2.5, false)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let inp = ckt.node("in");
            ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
            ckt.vsource("VIN", inp, Circuit::GND, Waveform::dc(vin));
            let inv = Inverter::build(
                &mut ckt,
                &tech,
                "u1",
                inp,
                vdd,
                Some(tech.rout),
                tech.cout_inverter,
            );
            let op = Session::new(&ckt).dc_operating_point().unwrap();
            let v = op.voltage(inv.output);
            if hi {
                assert!(v > 2.4, "vin={vin}: v={v}");
            } else {
                assert!(v < 0.1, "vin={vin}: v={v}");
            }
        }
    }

    /// The headline behaviour: a PWM input is transcoded into an analog
    /// voltage ≈ Vdd·(1 − duty). Reduced Cout keeps this unit test quick;
    /// the full paper configuration is exercised by the testbench and the
    /// bench harness.
    #[test]
    fn transcodes_duty_cycle_to_voltage() {
        let tech = Technology::umc65_like();
        let duty = 0.25;
        let freq = 50e6;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::pwm(2.5, freq, duty));
        let inv = Inverter::build(
            &mut ckt,
            &tech,
            "u1",
            inp,
            vdd,
            Some(tech.rout),
            Farads(100e-15), // τ ≈ 11 ns, settles in a few 20 ns periods
        );
        let period = 1.0 / freq;
        let result = Session::new(&ckt)
            .transient(&Transient::new(period / 200.0, 12.0 * period).use_initial_conditions())
            .unwrap();
        let vout = result.voltage(inv.output).steady_state_average(period, 2);
        let expect = 2.5 * (1.0 - duty);
        assert!(
            (vout - expect).abs() < 0.12,
            "vout = {vout}, expected ≈ {expect}"
        );
    }
}
