//! Analog PWM modulator — the input side of the system.
//!
//! The paper assumes PWM-coded inputs exist; real sensors produce
//! *voltages*. The classic voltage→duty converter is a triangle-crossing
//! modulator: a comparator slices a triangle carrier at the sensor
//! voltage, producing a pulse train whose duty cycle is the sensor
//! voltage's position within the triangle's span,
//!
//! ```text
//! duty = (v_sensor − tri_low) / (tri_high − tri_low).
//! ```
//!
//! This module builds that modulator from the [`DiffComparator`] cell
//! (triangle on the inverting input, which keeps the carrier inside the
//! comparator's common-mode range) and provides a testbench that measures
//! the generated duty cycle from the simulated waveform. Together with
//! [`crate::PerceptronCircuit`], the whole paper system — sensor voltage
//! in, classified decision out — closes at transistor level.

use mssim::prelude::*;
use mssim::waveform::Pulse;

use crate::comparator::DiffComparator;
use crate::tech::Technology;

/// Handles to one instantiated modulator.
#[derive(Debug, Clone)]
pub struct PwmModulator {
    /// Sensor (analog) input node.
    pub input: NodeId,
    /// Triangle-carrier node.
    pub carrier: NodeId,
    /// PWM output (rail to rail).
    pub output: NodeId,
    /// The slicing comparator.
    pub comparator: DiffComparator,
}

impl PwmModulator {
    /// Low end of the default carrier span, as a fraction of Vdd.
    pub const CARRIER_LOW: f64 = 0.30;
    /// High end of the default carrier span, as a fraction of Vdd.
    pub const CARRIER_HIGH: f64 = 0.65;

    /// Instantiates the modulator: a triangle source on `carrier` and a
    /// comparator slicing it at the `input` voltage. The carrier spans
    /// `[0.30, 0.65]·Vdd` — the comparator's common-mode window — so
    /// sensor voltages must be conditioned into that range (that is what
    /// [`PwmModulator::duty_for`] describes).
    ///
    /// # Panics
    ///
    /// Panics on element-name collisions (reuse of `prefix`).
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        input: NodeId,
        vdd: NodeId,
        vdd_value: f64,
        frequency: f64,
    ) -> Self {
        let carrier = circuit.node(&format!("{prefix}_tri"));
        let period = 1.0 / frequency;
        let lo = Self::CARRIER_LOW * vdd_value;
        let hi = Self::CARRIER_HIGH * vdd_value;
        // A pulse with rise = fall = period/2 and zero flat top *is* a
        // triangle between `low` and `high`.
        circuit.vsource(
            &format!("{prefix}_Vtri"),
            carrier,
            Circuit::GND,
            Waveform::Pulse(Pulse {
                low: lo,
                high: hi,
                delay: 0.0,
                rise: period / 2.0,
                fall: period / 2.0,
                width: 0.0,
                period,
            }),
        );
        let comparator =
            DiffComparator::build(circuit, tech, &format!("{prefix}_cmp"), input, carrier, vdd);
        PwmModulator {
            input,
            carrier,
            output: comparator.output,
            comparator,
        }
    }

    /// The duty cycle an ideal modulator produces for a sensor voltage at
    /// supply `vdd` (clamped to `0..=1` outside the carrier span).
    pub fn duty_for(v_sensor: f64, vdd: f64) -> f64 {
        let lo = Self::CARRIER_LOW * vdd;
        let hi = Self::CARRIER_HIGH * vdd;
        ((v_sensor - lo) / (hi - lo)).clamp(0.0, 1.0)
    }
}

/// Transistor-level modulator testbench.
#[derive(Debug, Clone)]
pub struct ModulatorTestbench {
    tech: Technology,
}

impl ModulatorTestbench {
    /// Testbench at the given technology.
    pub fn new(tech: &Technology) -> Self {
        ModulatorTestbench { tech: tech.clone() }
    }

    /// Builds the modulator, applies a DC sensor voltage, simulates a few
    /// carrier periods and measures the duty cycle of the PWM output
    /// (threshold at Vdd/2, exact crossing interpolation).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn measure_duty(
        &self,
        v_sensor: f64,
        vdd: f64,
        frequency: f64,
        periods: usize,
    ) -> Result<f64, Error> {
        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        let sense = ckt.node("sense");
        ckt.vsource("VDD", vdd_node, Circuit::GND, Waveform::dc(vdd));
        ckt.vsource("VS", sense, Circuit::GND, Waveform::dc(v_sensor));
        let dut = PwmModulator::build(&mut ckt, &self.tech, "mod", sense, vdd_node, vdd, frequency);
        let period = 1.0 / frequency;
        let total = (periods + 1) as f64 * period; // 1 warm-up period
        let result = Session::new(&ckt)
            .transient(&Transient::new(period / 400.0, total).use_initial_conditions())?;
        let out = result.voltage(dut.output);
        Ok(out.duty_cycle_between(0.5 * vdd, period, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Modulation is comparator-speed-limited: keep the carrier slow
    // relative to the comparator's internal poles.
    const F_CARRIER: f64 = 2e6;

    #[test]
    fn duty_tracks_the_sensor_voltage() {
        let tech = Technology::umc65_like();
        let tb = ModulatorTestbench::new(&tech);
        for frac in [0.25, 0.5, 0.75] {
            let lo = PwmModulator::CARRIER_LOW * 2.5;
            let hi = PwmModulator::CARRIER_HIGH * 2.5;
            let v = lo + frac * (hi - lo);
            let duty = tb.measure_duty(v, 2.5, F_CARRIER, 4).unwrap();
            assert!(
                (duty - frac).abs() < 0.06,
                "v_sensor {v:.3}: duty {duty:.3} vs ideal {frac}"
            );
        }
    }

    #[test]
    fn rails_saturate() {
        let tech = Technology::umc65_like();
        let tb = ModulatorTestbench::new(&tech);
        // Below the carrier: output never fires.
        let d = tb.measure_duty(0.3, 2.5, F_CARRIER, 3).unwrap();
        assert!(d < 0.05, "duty {d}");
        // Above the carrier: output always high.
        let d = tb.measure_duty(2.0, 2.5, F_CARRIER, 3).unwrap();
        assert!(d > 0.95, "duty {d}");
    }

    #[test]
    fn modulation_is_ratiometric() {
        // The same *relative* sensor position gives the same duty at a
        // different supply — provided the sensor conditioning is also
        // ratiometric, which is the design intent.
        let tech = Technology::umc65_like();
        let tb = ModulatorTestbench::new(&tech);
        let frac = 0.6;
        let duty_at = |vdd: f64| {
            let lo = PwmModulator::CARRIER_LOW * vdd;
            let hi = PwmModulator::CARRIER_HIGH * vdd;
            tb.measure_duty(lo + frac * (hi - lo), vdd, F_CARRIER, 4)
                .unwrap()
        };
        let d25 = duty_at(2.5);
        let d18 = duty_at(1.8);
        assert!((d25 - d18).abs() < 0.08, "2.5 V: {d25}, 1.8 V: {d18}");
    }

    #[test]
    fn ideal_duty_mapping() {
        assert_eq!(PwmModulator::duty_for(0.0, 2.5), 0.0);
        assert_eq!(PwmModulator::duty_for(2.5, 2.5), 1.0);
        let mid = 0.5 * (PwmModulator::CARRIER_LOW + PwmModulator::CARRIER_HIGH) * 2.5;
        assert!((PwmModulator::duty_for(mid, 2.5) - 0.5).abs() < 1e-12);
    }
}
