//! A transistor-level comparator — the decision element of Fig. 1.
//!
//! The paper draws the comparator as a block; to close the loop at
//! transistor level this module provides an open-loop continuous-time
//! comparator: a resistively-loaded **PMOS differential pair** (PMOS so
//! the input common-mode range reaches down to ground, where most of the
//! adder's output range lives) followed by two logic inverters that
//! restore full rails.
//!
//! It is deliberately simple — no clocked regeneration, no hysteresis —
//! because its job here is architectural: demonstrate that the whole
//! perceptron (weighted adder → reference → decision) closes at
//! transistor level with a bounded input-referred offset (tens of
//! millivolts; measured by the tests), which is far below the adder's
//! 119 mV output LSB.

use mssim::prelude::{Circuit, ElementId, NodeId};

use crate::gates::LogicInverter;
use crate::tech::Technology;

/// Width multiplier of the input pair relative to the base PMOS.
const PAIR_WIDTH_SCALE: f64 = 10.0;
/// Width multiplier of the mirror/tail devices relative to the base PMOS.
const TAIL_WIDTH_SCALE: f64 = 7.0;
/// Bias resistor setting the mirror reference current
/// `(Vdd − Vsg) / R_BIAS ≈ 8 µA` at 2.5 V — roughly proportional to the
/// supply, so the balanced output tracks the inverter threshold across
/// supplies (the comparator stays ratiometric).
const R_BIAS: f64 = 230e3;
/// Load resistors from the drains to ground, sized so the balanced
/// drain voltage (`Itail/2 · R_LOAD`) sits at the restoring inverter's
/// switching threshold.
const R_LOAD: f64 = 320e3;

/// Handles to one instantiated comparator.
#[derive(Debug, Clone)]
pub struct DiffComparator {
    /// Non-inverting input (the adder output).
    pub inp: NodeId,
    /// Inverting input (the reference).
    pub inn: NodeId,
    /// Rail-to-rail digital output: high when `v(inp) > v(inn)` (within
    /// the measured offset).
    pub output: NodeId,
    /// Analog drain of the reference-side device (pre-inverter).
    pub raw: NodeId,
    /// The differential-pair devices.
    pub pair: [ElementId; 2],
    /// The two restoring inverters.
    pub inverters: [LogicInverter; 2],
}

impl DiffComparator {
    /// Transistors in the cell: 2 (pair) + 2 (mirror + tail) +
    /// 2 × 2 (inverters).
    pub const TRANSISTORS: usize = 8;

    /// Instantiates the comparator.
    ///
    /// Input common-mode validity: `inn` (the reference) should sit
    /// between ~0.3·Vdd and ~0.65·Vdd; `inp` may range rail to rail (an
    /// off input device still yields the correct decision because the
    /// other side keeps conducting).
    ///
    /// # Panics
    ///
    /// Panics on element-name collisions (reuse of `prefix`).
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        inp: NodeId,
        inn: NodeId,
        vdd: NodeId,
    ) -> Self {
        let tail = circuit.node(&format!("{prefix}_tail"));
        let bias = circuit.node(&format!("{prefix}_bias"));
        let d_p = circuit.node(&format!("{prefix}_dp"));
        let d_n = circuit.node(&format!("{prefix}_dn"));
        // Supply-referenced current mirror: a diode-connected PMOS and a
        // bias resistor set Iref ≈ (Vdd − Vsg)/R_BIAS; the tail device
        // copies it, making the tail current independent of the input
        // common mode (a resistor tail would re-bias with CM and wreck
        // the offset at low references).
        let tail_params = tech.pmos.scaled_width(TAIL_WIDTH_SCALE);
        circuit.mosfet(&format!("{prefix}_MMir"), bias, bias, vdd, tail_params);
        circuit.resistor(&format!("{prefix}_Rb"), bias, Circuit::GND, R_BIAS);
        circuit.mosfet(&format!("{prefix}_MTail"), tail, bias, vdd, tail_params);
        let pair_params = tech.pmos.scaled_width(PAIR_WIDTH_SCALE);
        // A higher gate voltage turns its PMOS further off, steering the
        // tail current into the *other* branch. So when inp > inn the
        // reference-side drain d_n carries more current and sits HIGH.
        // Two restoring inverters on d_n keep that polarity while adding
        // two stages of gain.
        let mp = circuit.mosfet(&format!("{prefix}_MPp"), d_p, inp, tail, pair_params);
        let mn = circuit.mosfet(&format!("{prefix}_MPn"), d_n, inn, tail, pair_params);
        circuit.resistor(&format!("{prefix}_Rlp"), d_p, Circuit::GND, R_LOAD);
        circuit.resistor(&format!("{prefix}_Rln"), d_n, Circuit::GND, R_LOAD);
        let inv1 = LogicInverter::build(circuit, tech, &format!("{prefix}_i1"), d_n, vdd, 1.0);
        let inv2 = LogicInverter::build(
            circuit,
            tech,
            &format!("{prefix}_i2"),
            inv1.output,
            vdd,
            1.0,
        );
        DiffComparator {
            inp,
            inn,
            output: inv2.output,
            raw: d_n,
            pair: [mp, mn],
            inverters: [inv1, inv2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssim::prelude::*;

    fn decision(vp: f64, vn: f64, vdd_v: f64) -> bool {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(vdd_v));
        ckt.vsource("VA", a, Circuit::GND, Waveform::dc(vp));
        ckt.vsource("VB", b, Circuit::GND, Waveform::dc(vn));
        let cmp = DiffComparator::build(&mut ckt, &tech, "c", a, b, vdd);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        op.voltage(cmp.output) > vdd_v * 0.5
    }

    #[test]
    fn resolves_clear_differences() {
        // Reference at mid-rail, inputs across the adder's output range.
        for (vp, expect) in [
            (0.3, false),
            (0.9, false),
            (1.10, false),
            (1.40, true),
            (2.0, true),
            (2.4, true),
        ] {
            assert_eq!(
                decision(vp, 1.25, 2.5),
                expect,
                "inp = {vp} V vs ref 1.25 V"
            );
        }
    }

    #[test]
    fn offset_is_below_the_adder_lsb() {
        // Walk the switching point at several references: the decision
        // must flip within ±60 mV of the ideal threshold — half the
        // 119 mV output LSB of the paper's 3×3 adder.
        for vref in [0.9, 1.25, 1.5] {
            let mut flip = None;
            let mut prev = decision(vref - 0.25, vref, 2.5);
            assert!(!prev, "well below the reference must read low");
            let steps = 100;
            for k in 1..=steps {
                let vp = vref - 0.25 + 0.5 * k as f64 / steps as f64;
                let now = decision(vp, vref, 2.5);
                if now && !prev {
                    flip = Some(vp);
                    break;
                }
                prev = now;
            }
            let flip = flip.expect("decision must flip");
            assert!(
                (flip - vref).abs() < 0.06,
                "offset at ref {vref}: switching point {flip}"
            );
        }
    }

    #[test]
    fn works_ratiometrically_across_supplies() {
        // Same relative inputs at different supplies → same decision.
        for vdd in [1.8, 2.5, 3.3] {
            assert!(decision(0.6 * vdd, 0.5 * vdd, vdd), "vdd = {vdd}");
            assert!(!decision(0.4 * vdd, 0.5 * vdd, vdd), "vdd = {vdd}");
        }
    }

    #[test]
    fn transistor_budget() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VA", a, Circuit::GND, Waveform::dc(1.0));
        ckt.vsource("VB", b, Circuit::GND, Waveform::dc(1.2));
        let _ = DiffComparator::build(&mut ckt, &tech, "c", a, b, vdd);
        let mos = ckt
            .elements()
            .filter(|(_, _, e)| matches!(e, mssim::elements::Element::Mosfet { .. }))
            .count();
        assert_eq!(mos, DiffComparator::TRANSISTORS);
    }
}
