//! # pwmcell — the paper's mixed-signal cell library
//!
//! Transistor-level building blocks of the PWM perceptron from
//! *"A Pulse Width Modulation based Power-elastic and Robust Mixed-signal
//! Perceptron Design"* (DATE 2019), built on the [`mssim`] analog
//! simulator:
//!
//! * [`Technology`] — the paper's Table I parameters (UMC-65-like level-1
//!   devices, 2.5 V supply, 320 nm / 865 nm × 1.2 µm transistors),
//! * [`Inverter`] — the Fig. 2 transcoding inverter (PWM duty cycle →
//!   analog voltage) with output resistor and capacitor,
//! * [`gates`] — 4-transistor NAND and 2-transistor inverter composed into
//!   the 6-transistor AND cell,
//! * [`WeightedAdder`] — the Fig. 3 k×n weighted adder with binary-scaled
//!   cells (×1/×2/×4 widths, ÷1/÷2/÷4 output resistors),
//! * [`analytic`] — the paper's Eq. 2 ideal output model and first-order
//!   RC estimates,
//! * [`PwmNode`] — a fast switch-level model with an exact
//!   periodic-steady-state solver, used where thousands of evaluations are
//!   needed (training loops, Monte Carlo),
//! * [`InverterTestbench`] / [`AdderTestbench`] — ready-made measurement
//!   harnesses that reproduce the paper's experiments.
//!
//! ## Example: transcode a 30 % duty cycle
//!
//! ```
//! use pwmcell::{InverterTestbench, MeasureSpec, SimQuality, Technology};
//!
//! # fn main() -> Result<(), mssim::Error> {
//! let tech = Technology::umc65_like();
//! let tb = InverterTestbench::new(&tech);
//! let m = tb.measure(&MeasureSpec::duty(0.3), &SimQuality::fast())?;
//! // The inverter output is inversely proportional to the duty cycle:
//! // Vout ≈ Vdd · (1 − duty) = 1.75 V.
//! assert!((m.vout.value() - 1.75).abs() < 0.15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod analytic;
pub mod comparator;
pub mod faults;
pub mod gates;
pub mod inverter;
pub mod modulator;
pub mod perceptron_circuit;
pub mod switch_model;
pub mod tech;
pub mod testbench;

pub use adder::{AdderSpec, SwitchAdder, WeightedAdder};
pub use comparator::DiffComparator;
pub use inverter::Inverter;
pub use modulator::{ModulatorTestbench, PwmModulator};
pub use perceptron_circuit::{PerceptronCircuit, PerceptronTestbench};
pub use switch_model::{PwmNode, SwitchCell};
pub use tech::Technology;
pub use testbench::{
    AdderBatchBench, AdderMeasurement, AdderTestbench, InverterMeasurement, InverterTestbench,
    MeasureSpec, RescuedAdderMeasurement, SimQuality,
};
