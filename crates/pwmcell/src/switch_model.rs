//! Fast switch-level model of a PWM-driven output node.
//!
//! Each cell (inverter or AND gate) is abstracted as a resistor that
//! connects the shared output node either to `Vdd` (conductance `g_high`)
//! or to ground (conductance `g_low`) depending on its logic state, which
//! is a square wave of the input's duty cycle. Between switching events
//! the node obeys a single linear ODE,
//!
//! ```text
//! C·dV/dt = Σⱼ gⱼ(t)·(sⱼ(t) − V),
//! ```
//!
//! whose solution is an exponential toward the instantaneous equilibrium
//! `V∞ = Σ g·s / Σ g`. One period is therefore a composition of affine
//! maps `V ↦ α·V + β`, and the **periodic steady state** is the fixed
//! point of that composition — computed exactly in `O(events)` with no
//! time stepping. This is what makes hardware-in-the-loop perceptron
//! training and Monte-Carlo robustness sweeps affordable.
//!
//! The model deliberately ignores the square-law transistor nonlinearity
//! (it uses fixed on-resistances) and edge ramps; the transistor-level
//! [`crate::testbench`] harnesses quantify how much that costs (a few per
//! cent — see EXPERIMENTS.md).

use mssim::trace::TraceData;

use crate::tech::Technology;

/// One cell driving the shared node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchCell {
    /// Conductance to `Vdd` while the cell drives high, in siemens.
    pub g_high: f64,
    /// Conductance to ground while the cell drives low, in siemens.
    pub g_low: f64,
    /// Fraction of each period spent driving high, `0..=1`.
    pub duty_high: f64,
    /// Phase (fraction of a period, `0..1`) at which the high interval
    /// starts.
    pub phase: f64,
}

impl SwitchCell {
    /// Creates a cell, validating parameters.
    ///
    /// # Panics
    ///
    /// Panics if conductances are not positive finite, `duty_high` is
    /// outside `0..=1`, or `phase` is outside `0..1`.
    pub fn new(g_high: f64, g_low: f64, duty_high: f64, phase: f64) -> Self {
        assert!(
            g_high > 0.0 && g_high.is_finite() && g_low > 0.0 && g_low.is_finite(),
            "conductances must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&duty_high),
            "duty_high must be in 0..=1"
        );
        assert!((0.0..1.0).contains(&phase), "phase must be in 0..1");
        SwitchCell {
            g_high,
            g_low,
            duty_high,
            phase,
        }
    }

    /// `true` if the cell drives high at period fraction `u ∈ [0,1)`.
    fn is_high(&self, u: f64) -> bool {
        if self.duty_high >= 1.0 {
            return true;
        }
        if self.duty_high <= 0.0 {
            return false;
        }
        let rel = (u - self.phase).rem_euclid(1.0);
        rel < self.duty_high
    }

    /// Conductance and drive level (0 or 1 × Vdd) at period fraction `u`.
    fn drive(&self, u: f64) -> (f64, f64) {
        if self.is_high(u) {
            (self.g_high, 1.0)
        } else {
            (self.g_low, 0.0)
        }
    }
}

/// A PWM-driven output node: several [`SwitchCell`]s sharing one
/// capacitor.
#[derive(Debug, Clone, PartialEq)]
pub struct PwmNode {
    vdd: f64,
    capacitance: f64,
    period: f64,
    cells: Vec<SwitchCell>,
}

impl PwmNode {
    /// Creates a node model.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is negative, `capacitance`/`period` are not
    /// strictly positive, or `cells` is empty.
    pub fn new(vdd: f64, capacitance: f64, period: f64, cells: Vec<SwitchCell>) -> Self {
        assert!(vdd >= 0.0, "vdd must be non-negative");
        assert!(capacitance > 0.0, "capacitance must be positive");
        assert!(period > 0.0, "period must be positive");
        assert!(!cells.is_empty(), "need at least one cell");
        PwmNode {
            vdd,
            capacitance,
            period,
            cells,
        }
    }

    /// Switch-level model of the Fig. 2 transcoding inverter: one cell
    /// that drives **high while the input is low** (hence
    /// `duty_high = 1 − duty`, starting when the input falls at phase
    /// `duty`).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `0..=1` or `frequency` is not positive.
    pub fn inverter(
        tech: &Technology,
        rout: Option<f64>,
        cout: f64,
        duty: f64,
        frequency: f64,
        vdd: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&duty), "duty must be in 0..=1");
        assert!(frequency > 0.0, "frequency must be positive");
        let r = rout.unwrap_or(0.0);
        let g_high = 1.0 / (r + tech.pmos.r_on(vdd).max(1.0));
        let g_low = 1.0 / (r + tech.nmos.r_on(vdd).max(1.0));
        let phase = if duty >= 1.0 { 0.0 } else { duty };
        let cell = SwitchCell::new(g_high, g_low, 1.0 - duty, phase);
        PwmNode::new(vdd, cout, 1.0 / frequency, vec![cell])
    }

    /// Switch-level model of the Fig. 3 weighted adder: one cell per
    /// weight bit per input. Enabled bits drive high during the input's
    /// high phase; disabled bits always drive low (they still load the
    /// node).
    ///
    /// # Panics
    ///
    /// Panics if slices mismatch, duties are out of range, weights exceed
    /// the bit width, or `frequency` is not positive.
    #[allow(clippy::too_many_arguments)]
    pub fn weighted_adder(
        tech: &Technology,
        duties: &[f64],
        weights: &[u32],
        bits: u32,
        frequency: f64,
        vdd: f64,
        cout: f64,
    ) -> Self {
        assert_eq!(duties.len(), weights.len(), "duties and weights pair up");
        assert!(frequency > 0.0, "frequency must be positive");
        let w_max = (1u32 << bits) - 1;
        let mut cells = Vec::with_capacity(duties.len() * bits as usize);
        for (&d, &w) in duties.iter().zip(weights) {
            assert!((0.0..=1.0).contains(&d), "duty must be in 0..=1");
            assert!(w <= w_max, "weight {w} exceeds {bits}-bit range");
            for b in 0..bits {
                let scale = (1u32 << b) as f64;
                // Both the resistor and the transistor scale with the bit
                // weight, so the series conductance scales exactly.
                let g_high = scale / (tech.rout.value() + tech.pmos.r_on(vdd).max(1.0));
                let g_low = scale / (tech.rout.value() + tech.nmos.r_on(vdd).max(1.0));
                let enabled = w & (1 << b) != 0;
                let duty_high = if enabled { d } else { 0.0 };
                cells.push(SwitchCell::new(g_high, g_low, duty_high, 0.0));
            }
        }
        PwmNode::new(vdd, cout, 1.0 / frequency, cells)
    }

    /// The PWM period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Event times within one period, as sorted unique fractions in
    /// `[0, 1)`, always including 0.
    fn event_fractions(&self) -> Vec<f64> {
        let mut ev = vec![0.0];
        for c in &self.cells {
            if c.duty_high > 0.0 && c.duty_high < 1.0 {
                ev.push(c.phase);
                ev.push((c.phase + c.duty_high).rem_euclid(1.0));
            }
        }
        ev.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));
        ev.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
        ev
    }

    /// Piecewise-constant segments over one period:
    /// `(duration_fraction, g_total, v_equilibrium)`.
    fn segments(&self) -> Vec<(f64, f64, f64)> {
        let ev = self.event_fractions();
        let mut segs = Vec::with_capacity(ev.len());
        for (i, &u0) in ev.iter().enumerate() {
            let u1 = if i + 1 < ev.len() { ev[i + 1] } else { 1.0 };
            let width = u1 - u0;
            if width <= 0.0 {
                continue;
            }
            let um = u0 + width * 0.5;
            let mut g_sum = 0.0;
            let mut i_sum = 0.0;
            for c in &self.cells {
                let (g, level) = c.drive(um);
                g_sum += g;
                i_sum += g * level * self.vdd;
            }
            let v_inf = if g_sum > 0.0 { i_sum / g_sum } else { 0.0 };
            segs.push((width, g_sum, v_inf));
        }
        segs
    }

    /// The exact node voltage at the start of a period in periodic steady
    /// state — the fixed point of the one-period affine map.
    pub fn periodic_start_voltage(&self) -> f64 {
        let (a, b) = self.period_map();
        if (1.0 - a).abs() < 1e-300 {
            // Σg = 0 cannot happen (cells validated positive), but guard.
            return b;
        }
        b / (1.0 - a)
    }

    /// Composes the one-period map `V_end = a·V_start + b`.
    fn period_map(&self) -> (f64, f64) {
        let mut a = 1.0;
        let mut b = 0.0;
        for (width, g_sum, v_inf) in self.segments() {
            let dt = width * self.period;
            let alpha = (-g_sum * dt / self.capacitance).exp();
            // V1 = v_inf (1 − α) + V0 α, composed onto (a, b).
            b = v_inf * (1.0 - alpha) + b * alpha;
            a *= alpha;
        }
        (a, b)
    }

    /// The exact time-averaged output voltage in periodic steady state —
    /// the quantity the paper's figures plot.
    pub fn steady_state_average(&self) -> f64 {
        let mut v = self.periodic_start_voltage();
        let mut integral = 0.0;
        for (width, g_sum, v_inf) in self.segments() {
            let dt = width * self.period;
            let tau = self.capacitance / g_sum;
            let alpha = (-dt / tau).exp();
            // ∫ V over the segment = v_inf·dt + (V0 − v_inf)·τ·(1 − α).
            integral += v_inf * dt + (v - v_inf) * tau * (1.0 - alpha);
            v = v_inf + (v - v_inf) * alpha;
        }
        integral / self.period
    }

    /// Peak-to-peak ripple in periodic steady state, evaluated at segment
    /// boundaries (the extremes of a piecewise-exponential waveform).
    pub fn steady_state_ripple(&self) -> f64 {
        let mut v = self.periodic_start_voltage();
        let mut lo = v;
        let mut hi = v;
        for (width, g_sum, v_inf) in self.segments() {
            let dt = width * self.period;
            let alpha = (-g_sum * dt / self.capacitance).exp();
            v = v_inf + (v - v_inf) * alpha;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }

    /// Explicit transient from an arbitrary starting voltage, sampled
    /// `samples_per_period` times per period for `periods` periods.
    /// Propagation between samples is **event-exact**: a sample interval
    /// that straddles a switching event is split at the event, so the
    /// result carries no sampling bias and converges to the periodic
    /// steady state computed by [`PwmNode::periodic_start_voltage`].
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0` or `samples_per_period == 0`.
    pub fn transient(&self, v_start: f64, periods: usize, samples_per_period: usize) -> TraceData {
        assert!(periods > 0 && samples_per_period > 0, "empty transient");
        let events = self.event_fractions();
        let n = periods * samples_per_period;
        let dt_frac = 1.0 / samples_per_period as f64;
        let mut t = Vec::with_capacity(n + 1);
        let mut vs = Vec::with_capacity(n + 1);
        let mut v = v_start;
        t.push(0.0);
        vs.push(v);
        for k in 0..n {
            let u0 = (k % samples_per_period) as f64 * dt_frac;
            v = self.propagate(v, u0, dt_frac, &events);
            t.push((k + 1) as f64 * dt_frac * self.period);
            vs.push(v);
        }
        TraceData::new(t, vs)
    }

    /// Advances the node voltage from period fraction `u0` across a span
    /// of `width` period fractions (≤ 1), splitting at switching events.
    fn propagate(&self, mut v: f64, mut u0: f64, mut width: f64, events: &[f64]) -> f64 {
        const EPS: f64 = 1e-12;
        while width > EPS {
            // Next event strictly after u0 (wrapping at 1.0).
            let next = events
                .iter()
                .copied()
                .find(|&e| e > u0 + EPS)
                .unwrap_or(1.0);
            let span = (next - u0).min(width);
            let um = u0 + span * 0.5;
            let mut g_sum = 0.0;
            let mut i_sum = 0.0;
            for c in &self.cells {
                let (g, level) = c.drive(um);
                g_sum += g;
                i_sum += g * level * self.vdd;
            }
            let v_inf = if g_sum > 0.0 { i_sum / g_sum } else { v };
            let alpha = (-g_sum * span * self.period / self.capacitance).exp();
            v = v_inf + (v - v_inf) * alpha;
            u0 += span;
            if u0 >= 1.0 - EPS {
                u0 = 0.0;
            }
            width -= span;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::umc65_like()
    }

    #[test]
    fn inverter_average_tracks_one_minus_duty() {
        let t = tech();
        for &d in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let node = PwmNode::inverter(&t, Some(100e3), 1e-12, d, 500e6, 2.5);
            let v = node.steady_state_average();
            let expect = 2.5 * (1.0 - d);
            assert!(
                (v - expect).abs() < 0.03,
                "duty {d}: v = {v:.4}, expected {expect:.4}"
            );
        }
    }

    #[test]
    fn adder_average_matches_eq2() {
        let t = tech();
        let rows: [(&[f64], &[u32], f64); 3] = [
            (&[0.70, 0.80, 0.90], &[7, 7, 7], 2.00),
            (&[0.50, 0.50, 0.50], &[1, 2, 4], 0.42),
            (&[0.80, 0.20, 0.50], &[7, 3, 4], 0.96),
        ];
        for (duties, weights, expected) in rows {
            let node = PwmNode::weighted_adder(&t, duties, weights, 3, 500e6, 2.5, 10e-12);
            let v = node.steady_state_average();
            assert!(
                (v - expected).abs() < 0.05,
                "{duties:?} {weights:?}: v = {v:.4}, paper theory {expected}"
            );
        }
    }

    #[test]
    fn pss_matches_long_transient() {
        let t = tech();
        let node = PwmNode::inverter(&t, Some(100e3), 1e-12, 0.3, 500e6, 2.5);
        // Run 10 τ worth of explicit periods, then average the final one.
        let tr = node.transient(0.0, 600, 64);
        let trace = tr.as_trace();
        let avg_tail = trace.steady_state_average(node.period(), 3);
        let pss = node.steady_state_average();
        assert!(
            (avg_tail - pss).abs() < 5e-3,
            "transient {avg_tail:.5} vs PSS {pss:.5}"
        );
    }

    #[test]
    fn periodic_start_voltage_is_a_fixed_point() {
        let t = tech();
        let node = PwmNode::weighted_adder(&t, &[0.2, 0.6, 0.8], &[5, 6, 7], 3, 500e6, 2.5, 10e-12);
        let v0 = node.periodic_start_voltage();
        let tr = node.transient(v0, 1, 4096);
        let v_end = tr.as_trace().last_value();
        assert!((v_end - v0).abs() < 1e-6, "{v_end} vs {v0}");
    }

    #[test]
    fn frequency_does_not_move_the_average() {
        // The paper's Fig. 5 claim, in the switch model: the steady-state
        // average is frequency-independent.
        let t = tech();
        let v_at =
            |f: f64| PwmNode::inverter(&t, Some(100e3), 1e-12, 0.25, f, 2.5).steady_state_average();
        let v1 = v_at(1e6);
        let v2 = v_at(100e6);
        let v3 = v_at(1.5e9);
        assert!((v1 - v2).abs() < 0.02, "{v1} vs {v2}");
        assert!((v2 - v3).abs() < 0.02, "{v2} vs {v3}");
    }

    #[test]
    fn ripple_shrinks_with_frequency() {
        let t = tech();
        let r_slow =
            PwmNode::inverter(&t, Some(100e3), 1e-12, 0.5, 10e6, 2.5).steady_state_ripple();
        let r_fast = PwmNode::inverter(&t, Some(100e3), 1e-12, 0.5, 1e9, 2.5).steady_state_ripple();
        assert!(r_fast < r_slow / 10.0, "{r_fast} vs {r_slow}");
    }

    #[test]
    fn output_scales_with_vdd() {
        // Power elasticity in its simplest form: Vout/Vdd constant.
        let t = tech();
        let ratio = |vdd: f64| {
            PwmNode::inverter(&t, Some(100e3), 1e-12, 0.25, 500e6, vdd).steady_state_average() / vdd
        };
        // Above ~1.5 V the ratio is essentially constant (the switch model
        // keeps conducting at any Vdd; thresholds enter via ron only).
        assert!((ratio(2.0) - ratio(5.0)).abs() < 0.02);
    }

    #[test]
    fn disabled_cells_pull_down() {
        let t = tech();
        let all_on =
            PwmNode::weighted_adder(&t, &[1.0], &[7], 3, 500e6, 2.5, 1e-12).steady_state_average();
        let partial =
            PwmNode::weighted_adder(&t, &[1.0], &[3], 3, 500e6, 2.5, 1e-12).steady_state_average();
        assert!(all_on > 2.3);
        // Weight 3 of 7: Eq. 2 gives 2.5·3/7 ≈ 1.07.
        assert!((partial - 2.5 * 3.0 / 7.0).abs() < 0.08, "v = {partial}");
    }

    #[test]
    fn phase_offsets_do_not_change_the_average() {
        // Time-shifting one input leaves its time-average contribution
        // unchanged (only the ripple shape moves).
        let mk = |phase: f64| {
            let g = 1.0 / 110e3;
            PwmNode::new(
                2.5,
                1e-12,
                2e-9,
                vec![
                    SwitchCell::new(g, g, 0.5, 0.0),
                    SwitchCell::new(g, g, 0.3, phase),
                ],
            )
            .steady_state_average()
        };
        let a = mk(0.0);
        let b = mk(0.4);
        let c = mk(0.9);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        assert!((a - c).abs() < 1e-9, "{a} vs {c}");
    }

    #[test]
    fn extreme_duties_hit_the_rails() {
        let t = tech();
        let hi = PwmNode::inverter(&t, Some(100e3), 1e-12, 0.0, 500e6, 2.5);
        assert!((hi.steady_state_average() - 2.5).abs() < 1e-9);
        assert!(hi.steady_state_ripple() < 1e-12);
        let lo = PwmNode::inverter(&t, Some(100e3), 1e-12, 1.0, 500e6, 2.5);
        assert!(lo.steady_state_average() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duty_high must be in 0..=1")]
    fn cell_rejects_bad_duty() {
        let _ = SwitchCell::new(1e-5, 1e-5, 1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one cell")]
    fn node_rejects_empty_cells() {
        let _ = PwmNode::new(2.5, 1e-12, 2e-9, vec![]);
    }
}
