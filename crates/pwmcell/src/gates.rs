//! Transistor-level logic gates.
//!
//! The weighted adder replaces the Fig. 2 inverter with an AND gate so
//! that each weight bit can enable or disable its cell. The AND is built
//! the standard CMOS way — a 4-transistor NAND followed by a 2-transistor
//! inverter — giving the paper's count of **6 transistors per weight bit**
//! and 54 for the 3×3 adder.

use mssim::prelude::{Circuit, ElementId, NodeId};

use crate::tech::Technology;

/// Handles to a 4-transistor CMOS NAND2.
#[derive(Debug, Clone)]
pub struct Nand2 {
    /// First input.
    pub a: NodeId,
    /// Second input.
    pub b: NodeId,
    /// Output node.
    pub output: NodeId,
    /// Internal node of the NMOS stack.
    pub stack_mid: NodeId,
    /// The four device elements.
    pub devices: [ElementId; 4],
}

impl Nand2 {
    /// Instantiates a NAND2 into `circuit` with all transistor widths
    /// scaled by `drive` (the series NMOS stack gets an extra ×2 so its
    /// pull-down matches a single device of the scaled width).
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not strictly positive or element names collide.
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        a: NodeId,
        b: NodeId,
        vdd: NodeId,
        drive: f64,
    ) -> Self {
        assert!(drive > 0.0, "drive strength must be positive");
        let output = circuit.node(&format!("{prefix}_y"));
        let stack_mid = circuit.node(&format!("{prefix}_m"));
        let p = tech.pmos.scaled_width(drive);
        let n_stacked = tech.nmos.scaled_width(2.0 * drive);
        let mpa = circuit.mosfet(&format!("{prefix}_MPA"), output, a, vdd, p);
        let mpb = circuit.mosfet(&format!("{prefix}_MPB"), output, b, vdd, p);
        let mna = circuit.mosfet(&format!("{prefix}_MNA"), output, a, stack_mid, n_stacked);
        let mnb = circuit.mosfet(
            &format!("{prefix}_MNB"),
            stack_mid,
            b,
            Circuit::GND,
            n_stacked,
        );
        // Drain junction + local wire parasitic: this node's switching
        // energy is what makes power grow with frequency (Fig. 8).
        circuit.capacitor(
            &format!("{prefix}_Cp"),
            output,
            Circuit::GND,
            tech.cnode.value() * drive,
        );
        Nand2 {
            a,
            b,
            output,
            stack_mid,
            devices: [mpa, mpb, mna, mnb],
        }
    }
}

/// Handles to a 2-transistor logic inverter (no output RC — compare
/// [`crate::Inverter`] for the transcoding version).
#[derive(Debug, Clone)]
pub struct LogicInverter {
    /// Input node.
    pub input: NodeId,
    /// Output node.
    pub output: NodeId,
    /// The two device elements.
    pub devices: [ElementId; 2],
}

impl LogicInverter {
    /// Instantiates a logic inverter with widths scaled by `drive`.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not strictly positive or element names collide.
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        input: NodeId,
        vdd: NodeId,
        drive: f64,
    ) -> Self {
        assert!(drive > 0.0, "drive strength must be positive");
        let output = circuit.node(&format!("{prefix}_y"));
        let mp = circuit.mosfet(
            &format!("{prefix}_MP"),
            output,
            input,
            vdd,
            tech.pmos.scaled_width(drive),
        );
        let mn = circuit.mosfet(
            &format!("{prefix}_MN"),
            output,
            input,
            Circuit::GND,
            tech.nmos.scaled_width(drive),
        );
        circuit.capacitor(
            &format!("{prefix}_Cp"),
            output,
            Circuit::GND,
            tech.cnode.value() * drive,
        );
        LogicInverter {
            input,
            output,
            devices: [mp, mn],
        }
    }
}

/// Handles to a 6-transistor AND cell (NAND2 + inverter) — one weight bit
/// of the paper's adder.
#[derive(Debug, Clone)]
pub struct AndCell {
    /// PWM input.
    pub a: NodeId,
    /// Weight-bit enable input.
    pub b: NodeId,
    /// AND output (the inverter drain that drives the cell's `Rout`).
    pub output: NodeId,
    /// Internal NAND output node.
    pub nand_out: NodeId,
    /// The NAND stage.
    pub nand: Nand2,
    /// The output inverter stage.
    pub inverter: LogicInverter,
}

impl AndCell {
    /// Number of transistors in one AND cell.
    pub const TRANSISTORS: usize = 6;

    /// Instantiates the AND cell with all widths scaled by `drive`
    /// (×1, ×2, ×4 for the paper's three weight bits).
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not strictly positive or element names collide.
    pub fn build(
        circuit: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        a: NodeId,
        b: NodeId,
        vdd: NodeId,
        drive: f64,
    ) -> Self {
        let nand = Nand2::build(circuit, tech, &format!("{prefix}_nd"), a, b, vdd, drive);
        let inverter = LogicInverter::build(
            circuit,
            tech,
            &format!("{prefix}_iv"),
            nand.output,
            vdd,
            drive,
        );
        AndCell {
            a,
            b,
            output: inverter.output,
            nand_out: nand.output,
            nand,
            inverter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssim::prelude::*;

    fn truth_table_fixture(vin_a: f64, vin_b: f64) -> (Circuit, AndCell) {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VA", a, Circuit::GND, Waveform::dc(vin_a));
        ckt.vsource("VB", b, Circuit::GND, Waveform::dc(vin_b));
        let cell = AndCell::build(&mut ckt, &tech, "u1", a, b, vdd, 1.0);
        // Light load so DC levels are well defined.
        ckt.resistor("RL", cell.output, Circuit::GND, 10e6);
        (ckt, cell)
    }

    #[test]
    fn and_cell_truth_table() {
        for (a, b, expect_hi) in [
            (0.0, 0.0, false),
            (0.0, 2.5, false),
            (2.5, 0.0, false),
            (2.5, 2.5, true),
        ] {
            let (ckt, cell) = truth_table_fixture(a, b);
            let op = Session::new(&ckt).dc_operating_point().unwrap();
            let v = op.voltage(cell.output);
            if expect_hi {
                assert!(v > 2.3, "a={a} b={b}: v={v}");
            } else {
                assert!(v < 0.2, "a={a} b={b}: v={v}");
            }
            // NAND intermediate is the complement.
            let vn = op.voltage(cell.nand_out);
            if expect_hi {
                assert!(vn < 0.2, "nand out should be low, got {vn}");
            } else {
                assert!(vn > 2.3, "nand out should be high, got {vn}");
            }
        }
    }

    #[test]
    fn transistor_budget() {
        assert_eq!(AndCell::TRANSISTORS, 6);
        let (ckt, cell) = truth_table_fixture(0.0, 0.0);
        let mos_count = ckt
            .elements()
            .filter(|(_, _, e)| matches!(e, mssim::elements::Element::Mosfet { .. }))
            .count();
        assert_eq!(mos_count, 6);
        assert_eq!(cell.nand.devices.len() + cell.inverter.devices.len(), 6);
    }

    #[test]
    fn drive_scaling_scales_widths() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        let cell = AndCell::build(&mut ckt, &tech, "x4", a, b, vdd, 4.0);
        let mp = ckt.element(cell.inverter.devices[0]);
        if let mssim::elements::Element::Mosfet { params, .. } = mp {
            assert!((params.w / tech.pmos.w - 4.0).abs() < 1e-12);
        } else {
            panic!("expected a mosfet");
        }
    }

    #[test]
    #[should_panic(expected = "drive strength must be positive")]
    fn zero_drive_panics() {
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let _ = AndCell::build(&mut ckt, &tech, "u", a, a, vdd, 0.0);
    }
}
