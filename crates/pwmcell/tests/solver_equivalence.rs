//! Golden equivalence on the paper's shipped transistor-level cells: the
//! compiled-plan solver must match the naive reference assembler within
//! 1e-12 on the Fig. 3 weighted adder, at both abstraction levels.

use mssim::prelude::*;
use pwmcell::{AdderSpec, SwitchAdder, Technology, WeightedAdder};

const TOL: f64 = 1e-12;

fn divergence(ckt: &Circuit, probes: &[NodeId], dt: f64, steps: usize) -> f64 {
    let tran = |reference: bool| {
        Transient::new(dt, steps as f64 * dt)
            .use_initial_conditions()
            .with_reference_solver(reference)
    };
    let plan = Session::new(ckt)
        .transient(&tran(false))
        .expect("plan converges");
    let reference = Session::new(ckt)
        .transient(&tran(true))
        .expect("reference converges");
    let mut worst = 0.0f64;
    for &node in probes {
        for (a, b) in plan
            .voltage(node)
            .values()
            .iter()
            .zip(reference.voltage(node).values())
        {
            worst = worst.max((a - b).abs());
        }
    }
    worst
}

#[test]
fn mos_adder3x3_matches_reference() {
    let tech = Technology::umc65_like();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = WeightedAdder::build(
        &mut ckt,
        &tech,
        "add",
        vdd,
        &[7, 7, 7],
        AdderSpec::paper_3x3(),
    );
    for (i, &duty) in [0.70, 0.80, 0.90].iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), duty),
        );
    }
    let mut probes = vec![vdd, adder.output];
    probes.extend_from_slice(&adder.inputs);
    let d = divergence(&ckt, &probes, 10e-12, 300);
    assert!(d <= TOL, "MOS 3x3 adder diverges by {d:e}");
}

#[test]
fn switch_adder3x3_matches_reference() {
    let tech = Technology::umc65_like();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = SwitchAdder::build(
        &mut ckt,
        &tech,
        "add",
        vdd,
        &[7, 3, 5],
        AdderSpec::paper_3x3(),
    );
    for (i, &duty) in [0.20, 0.60, 0.80].iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), duty),
        );
    }
    let mut probes = vec![vdd, adder.output];
    probes.extend_from_slice(&adder.inputs);
    let d = divergence(&ckt, &probes, 10e-12, 600);
    assert!(d <= TOL, "switch-level 3x3 adder diverges by {d:e}");
}
