//! Property-based tests of the cell library's invariants.

use proptest::prelude::*;
use pwmcell::{analytic, PwmNode, SwitchCell, Technology};

fn tech() -> Technology {
    Technology::umc65_like()
}

/// Strategy: a valid (duties, weights) pair for a 3×3 adder.
fn adder_inputs() -> impl Strategy<Value = (Vec<f64>, Vec<u32>)> {
    (
        prop::collection::vec(0.0f64..=1.0, 3),
        prop::collection::vec(0u32..=7, 3),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 2 output always lies in [0, Vdd].
    #[test]
    fn eq2_is_bounded((duties, weights) in adder_inputs(), vdd in 0.5f64..5.0) {
        let v = analytic::adder_vout(vdd, &duties, &weights, 3);
        prop_assert!((0.0..=vdd + 1e-12).contains(&v), "v = {v}");
    }

    /// Eq. 2 is monotone: raising any duty or weight never lowers Vout.
    #[test]
    fn eq2_is_monotone((duties, weights) in adder_inputs(), idx in 0usize..3) {
        let base = analytic::adder_vout(2.5, &duties, &weights, 3);
        let mut d2 = duties.clone();
        d2[idx] = (d2[idx] + 0.1).min(1.0);
        prop_assert!(analytic::adder_vout(2.5, &d2, &weights, 3) >= base - 1e-12);
        let mut w2 = weights.clone();
        w2[idx] = (w2[idx] + 1).min(7);
        prop_assert!(analytic::adder_vout(2.5, &duties, &w2, 3) >= base - 1e-12);
    }

    /// Eq. 2 is exactly linear in Vdd.
    #[test]
    fn eq2_scales_with_vdd((duties, weights) in adder_inputs(), scale in 0.1f64..4.0) {
        let v1 = analytic::adder_vout(1.0, &duties, &weights, 3);
        let vs = analytic::adder_vout(scale, &duties, &weights, 3);
        prop_assert!((vs - scale * v1).abs() < 1e-12);
    }

    /// The switch-level PSS average agrees with Eq. 2 for any input.
    #[test]
    fn switch_model_tracks_eq2((duties, weights) in adder_inputs()) {
        let t = tech();
        let v_eq2 = analytic::adder_vout(2.5, &duties, &weights, 3);
        let v_pss = PwmNode::weighted_adder(&t, &duties, &weights, 3, 500e6, 2.5, 10e-12)
            .steady_state_average();
        prop_assert!(
            (v_eq2 - v_pss).abs() < 0.06,
            "eq2 {v_eq2:.4} vs switch {v_pss:.4} for {duties:?}/{weights:?}"
        );
    }

    /// PSS equals the long-transient limit for arbitrary cell soups.
    #[test]
    fn pss_is_the_transient_fixed_point(
        n_cells in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let cells: Vec<SwitchCell> = (0..n_cells)
            .map(|_| {
                SwitchCell::new(
                    1e-6 + next() * 1e-4,
                    1e-6 + next() * 1e-4,
                    next(),
                    next() * 0.999,
                )
            })
            .collect();
        let node = PwmNode::new(2.5, 1e-12, 2e-9, cells);
        let v0 = node.periodic_start_voltage();
        // One exact period from the fixed point returns to it.
        let end = node.transient(v0, 1, 64).as_trace().last_value();
        prop_assert!((end - v0).abs() < 1e-9, "{end} vs {v0}");
        // And the average is bounded by the rails.
        let avg = node.steady_state_average();
        prop_assert!((0.0..=2.5 + 1e-9).contains(&avg));
    }

    /// Convergence from any starting voltage: after many periods the
    /// transient lands on the PSS fixed point.
    #[test]
    fn transient_converges_from_any_start(v_start in -1.0f64..4.0, duty in 0.05f64..0.95) {
        let t = tech();
        let node = PwmNode::inverter(&t, Some(100e3), 1e-12, duty, 500e6, 2.5);
        // 500 periods = 1 µs ≈ 9 τ.
        let end = node.transient(v_start, 500, 16).as_trace().last_value();
        let v0 = node.periodic_start_voltage();
        prop_assert!((end - v0).abs() < 1e-3, "{end} vs fixed point {v0}");
    }

    /// The inverter's switch-level average tracks Vdd·(1−duty).
    #[test]
    fn inverter_complement_law(duty in 0.0f64..=1.0, vdd in 1.5f64..5.0) {
        let t = tech();
        let v = PwmNode::inverter(&t, Some(100e3), 1e-12, duty, 500e6, vdd)
            .steady_state_average();
        prop_assert!(
            (v - vdd * (1.0 - duty)).abs() < 0.05 * vdd,
            "duty {duty}: {v} vs {}", vdd * (1.0 - duty)
        );
    }

    /// Frequency never moves the PSS average by more than the ripple scale.
    #[test]
    fn frequency_invariance(duty in 0.1f64..0.9, f_exp in 6.0f64..9.2) {
        let t = tech();
        let f = 10f64.powf(f_exp);
        let v = PwmNode::inverter(&t, Some(100e3), 1e-12, duty, f, 2.5)
            .steady_state_average();
        let v_ref = PwmNode::inverter(&t, Some(100e3), 1e-12, duty, 500e6, 2.5)
            .steady_state_average();
        prop_assert!((v - v_ref).abs() < 0.03, "{v} vs {v_ref} at f={f:.3e}");
    }

    /// Ripple is non-negative and shrinks monotonically in capacitance.
    #[test]
    fn ripple_shrinks_with_cout(duty in 0.1f64..0.9) {
        let t = tech();
        let r_small = PwmNode::inverter(&t, Some(100e3), 0.2e-12, duty, 100e6, 2.5)
            .steady_state_ripple();
        let r_big = PwmNode::inverter(&t, Some(100e3), 5e-12, duty, 100e6, 2.5)
            .steady_state_ripple();
        prop_assert!(r_small >= 0.0 && r_big >= 0.0);
        prop_assert!(r_big < r_small, "{r_big} !< {r_small}");
    }
}
