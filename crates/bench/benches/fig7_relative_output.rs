//! Fig. 7 bench: the Vout/Vdd ratio computation over the supply sweep
//! (switch-level, which is what makes dense Fig. 7 grids affordable).
//! Full series: `repro fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use pwm_perceptron::elasticity::{inverter_ratio_sweep, ratio_flatness};
use pwmcell::Technology;

fn bench(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let vdds: Vec<f64> = (1..=10).map(|i| 0.5 * i as f64).collect();
    let mut group = c.benchmark_group("fig7_relative_output");
    group.bench_function("ratio_sweep_10pts", |b| {
        b.iter(|| {
            let pts = inverter_ratio_sweep(&tech, std::hint::black_box(0.25), &vdds);
            ratio_flatness(&pts)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
