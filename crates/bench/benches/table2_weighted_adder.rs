//! Table II bench: one transistor-level 3×3 adder measurement (row 1) and
//! the switch-level equivalent, showing the cost gap between the two
//! fidelity tiers. Full table: `repro table2`.

use criterion::{criterion_group, criterion_main, Criterion};
use pwmcell::{AdderTestbench, PwmNode, SimQuality, Technology};

fn bench(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let quality = SimQuality::fast();
    let duties = [0.70, 0.80, 0.90];
    let weights = [7u32, 7, 7];
    let mut group = c.benchmark_group("table2_weighted_adder");
    group.sample_size(10);
    group.bench_function("transistor_level_row1", |b| {
        let tb = AdderTestbench::paper(&tech);
        b.iter(|| {
            tb.measure(&std::hint::black_box(duties), &weights, &quality)
                .expect("measurement converges")
                .vout
        })
    });
    group.bench_function("switch_level_row1", |b| {
        b.iter(|| {
            PwmNode::weighted_adder(
                &tech,
                &std::hint::black_box(duties),
                &weights,
                3,
                tech.frequency.value(),
                tech.vdd.value(),
                tech.cout_adder.value(),
            )
            .steady_state_average()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
