//! Fig. 6 bench: inverter measurement at low / nominal / high supply.
//! Full series: `repro fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use mssim::units::Volts;
use pwmcell::{InverterTestbench, MeasureSpec, SimQuality, Technology};

fn bench(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let quality = SimQuality::fast();
    let tb = InverterTestbench::new(&tech);
    let mut group = c.benchmark_group("fig6_supply_sweep");
    group.sample_size(10);
    for (name, vdd) in [("0.5V", 0.5), ("2.5V", 2.5), ("5V", 5.0)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                tb.measure(
                    &MeasureSpec::duty(0.5).with_vdd(Volts(std::hint::black_box(vdd))),
                    &quality,
                )
                .expect("measurement converges")
                .vout
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
