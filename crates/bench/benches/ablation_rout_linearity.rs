//! A1 bench: the Rout linearity metric at one resistor value.
//! Full sweep: `repro ablation-rout`.

use bench::experiments::ablation_rout;
use criterion::{criterion_group, criterion_main, Criterion};
use pwmcell::{SimQuality, Technology};

fn bench(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let quality = SimQuality::fast();
    let mut group = c.benchmark_group("ablation_rout_linearity");
    group.sample_size(10);
    group.bench_function("inl_at_20k", |b| {
        b.iter(|| ablation_rout(&tech, &quality, &[std::hint::black_box(20e3)], 3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
