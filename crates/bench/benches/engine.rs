//! Simulator-engine microbenchmarks: the primitives every experiment
//! above is built from. Useful for tracking performance regressions of
//! the substrate itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mssim::prelude::*;
use pwmcell::{PwmNode, Technology};

/// Fixed-step transient throughput on the 3×3 adder circuit (the
/// workhorse of Table II / Fig. 8).
fn transient_steps(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    let adder = pwmcell::WeightedAdder::build(
        &mut ckt,
        &tech,
        "a",
        vdd,
        &[7, 7, 7],
        pwmcell::AdderSpec::paper_3x3(),
    );
    for (i, d) in [0.7, 0.8, 0.9].into_iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(2.5, 500e6, d),
        );
    }
    let steps = 2000usize;
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(steps as u64));
    group.sample_size(10);
    group.bench_function("adder_transient_steps", |b| {
        b.iter(|| {
            Session::new(&ckt)
                .transient(
                    &Transient::new(10e-12, steps as f64 * 10e-12)
                        .use_initial_conditions()
                        .record_every(50),
                )
                .expect("transient converges")
        })
    });
    group.finish();
}

/// Periodic-steady-state solves per second (the training-loop primitive).
fn pss_solves(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let mut group = c.benchmark_group("engine");
    group.bench_function("adder_pss_solve", |b| {
        b.iter(|| {
            PwmNode::weighted_adder(
                &tech,
                &std::hint::black_box([0.2, 0.6, 0.8]),
                &[5, 6, 7],
                3,
                500e6,
                2.5,
                10e-12,
            )
            .steady_state_average()
        })
    });
    group.finish();
}

/// DC operating point of the full 62-transistor perceptron.
fn dc_solve(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    let dut = pwmcell::perceptron_circuit::PerceptronCircuit::build(
        &mut ckt,
        &tech,
        "p",
        vdd,
        &[7, 7, 7],
        pwmcell::AdderSpec::paper_3x3(),
        0.5,
    );
    for (i, lv) in [2.5, 0.0, 2.5].into_iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            dut.adder.inputs[i],
            Circuit::GND,
            Waveform::dc(lv),
        );
    }
    let mut group = c.benchmark_group("engine");
    group.bench_function("full_perceptron_dcop", |b| {
        b.iter(|| {
            Session::new(std::hint::black_box(&ckt))
                .dc_operating_point()
                .expect("op converges")
        })
    });
    group.finish();
}

criterion_group!(benches, transient_steps, pss_solves, dc_solve);
criterion_main!(benches);
