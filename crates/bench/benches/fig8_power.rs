//! Fig. 8 bench: one adder supply-power measurement at the low and high
//! ends of the paper's frequency range. Full series: `repro fig8`.

use bench::experiments::{FIG8_DUTIES, FIG8_WEIGHTS};
use criterion::{criterion_group, criterion_main, Criterion};
use mssim::units::Hertz;
use pwmcell::{AdderTestbench, SimQuality, Technology};

fn bench(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let quality = SimQuality::fast();
    let tb = AdderTestbench::paper(&tech);
    let mut group = c.benchmark_group("fig8_power");
    group.sample_size(10);
    for (name, freq) in [("100MHz", 100e6), ("1GHz", 1e9)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                tb.measure_at(
                    &FIG8_DUTIES,
                    &FIG8_WEIGHTS,
                    Hertz(std::hint::black_box(freq)),
                    tech.vdd,
                    &quality,
                )
                .expect("measurement converges")
                .supply_power
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
