//! A2 bench: the Cout ripple/settling measurement at one capacitor value.
//! Full sweep: `repro ablation-cout`.

use bench::experiments::ablation_cout;
use criterion::{criterion_group, criterion_main, Criterion};
use pwmcell::{SimQuality, Technology};

fn bench(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let quality = SimQuality::fast();
    let mut group = c.benchmark_group("ablation_cout");
    group.sample_size(10);
    group.bench_function("ripple_at_1pF", |b| {
        b.iter(|| ablation_cout(&tech, &quality, &[std::hint::black_box(1e-12)]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
