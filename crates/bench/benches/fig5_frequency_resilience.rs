//! Fig. 5 bench: inverter measurement at the low and high ends of the
//! paper's frequency sweep. Full series: `repro fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use mssim::units::Hertz;
use pwmcell::{InverterTestbench, MeasureSpec, SimQuality, Technology};

fn bench(c: &mut Criterion) {
    let tech = Technology::umc65_like();
    let quality = SimQuality::fast();
    let tb = InverterTestbench::new(&tech);
    let mut group = c.benchmark_group("fig5_frequency_resilience");
    group.sample_size(10);
    for (name, freq) in [("1MHz", 1e6), ("500MHz", 500e6)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                tb.measure(
                    &MeasureSpec::duty(0.25).with_frequency(Hertz(std::hint::black_box(freq))),
                    &quality,
                )
                .expect("measurement converges")
                .vout
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
