//! Compares two `BENCH_mssim.json` records and fails on regression.
//!
//! ```text
//! cargo run -p bench --release --bin bench_compare -- baseline.json new.json
//! ```
//!
//! The gate protects the plan-cache speedups two ways:
//!
//! 1. **Relative**: for every fixture whose baseline speedup is above 1×
//!    (i.e. where the compiled stamp plan beats the reference assembler),
//!    the new speedup must stay within 25% of the baseline.
//! 2. **Absolute floors** on the *new* record: every fixture must be at
//!    least 1.0× (the plan path never loses to the reference), and the
//!    batched-MOS headline `tran_adder3x3_mos` must be at least 5.0×.
//!
//! When **both** records carry a `serve` section (written by `repro
//! serve`), the inference-engine gates also run: hot-set cache hit rate
//! ≥ 90%, batched speedup over the naive per-query circuit path ≥ 10×,
//! zero classification divergences, and the hot-set p99 latency within
//! 2× of the baseline. Records without a serve section (plain `repro
//! bench` output) skip these with an info line, so the bench-smoke job
//! stays green.
//!
//! When the **new** record carries a `chaos` section (written by `repro
//! chaos`), the resilience gates run on each stream: availability (single
//! and batched) ≥ 99.9%, zero escaped panics, zero degraded answers
//! outside their certified bound, zero classification divergences on
//! full-fidelity answers. These are absolute floors — the baseline record
//! is not consulted — and are skipped with an info line when the section
//! is absent.
//!
//! The parser is a deliberate hand-rolled scan over the fixed
//! `mssim-bench-v1` schema (the workspace has no JSON dependency and the
//! writer in `bench::hotpath` is equally hand-rolled).

use std::process::ExitCode;

/// Max tolerated fractional drop of a gated fixture's speedup.
const TOLERANCE: f64 = 0.25;

/// Every fixture in the new record must meet this speedup.
const GLOBAL_FLOOR: f64 = 1.0;

/// Fixture-specific absolute floors on the new record: `(name, floor)`.
/// `tran_adder3x3_mos` carries the batched-MOS tentpole's ≥5× contract.
const ENTRY_FLOORS: &[(&str, f64)] = &[("tran_adder3x3_mos", 5.0)];

/// Minimum hot-set cache hit rate in the new serve section.
const SERVE_HIT_RATE_FLOOR: f64 = 0.90;

/// Minimum batched speedup over the naive per-query circuit path.
const SERVE_SPEEDUP_FLOOR: f64 = 10.0;

/// Max tolerated hot-set p99 latency growth over the baseline record.
const SERVE_P99_GROWTH: f64 = 2.0;

/// Minimum availability of every chaos stream (single and batched pass).
const CHAOS_AVAILABILITY_FLOOR: f64 = 0.999;

/// One `(name, speedup)` pair scanned out of a bench record.
#[derive(Debug)]
struct Entry {
    name: String,
    speedup: f64,
}

/// Extracts the string value following `"key": "` starting at `from`.
fn scan_string(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let pat = format!("\"{key}\": \"");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find('"')? + start;
    Some((text[start..end].to_string(), end))
}

/// Extracts the numeric value following `"key": ` starting at `from`.
fn scan_number(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\": ");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find([',', '\n', '}']).map(|e| e + start)?;
    text[start..end].trim().parse().ok().map(|v| (v, end))
}

/// Scans every entry's name and speedup out of a `mssim-bench-v1` record.
fn scan_entries(text: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    let Some(mut pos) = text.find("\"entries\"") else {
        return entries;
    };
    while let Some((name, after_name)) = scan_string(text, "name", pos) {
        let Some((speedup, after)) = scan_number(text, "speedup", after_name) else {
            break;
        };
        entries.push(Entry { name, speedup });
        pos = after;
    }
    entries
}

/// The serve-section metrics the gate cares about.
#[derive(Debug)]
struct Serve {
    speedup_vs_naive: f64,
    divergences: f64,
    hotset_p99_ns: f64,
    hotset_hit_rate: f64,
}

/// Scans the `serve` section out of a record, if present. The section
/// sits before `"entries"` and never contains bare `"name"`/`"speedup"`
/// keys, so the entry scanner is unaffected by it.
fn scan_serve(text: &str) -> Option<Serve> {
    let start = text.find("\"serve\"")?;
    let end = text.find("\"entries\"").unwrap_or(text.len());
    let region = &text[start..end];
    let (speedup_vs_naive, _) = scan_number(region, "speedup_vs_naive", 0)?;
    let (divergences, _) = scan_number(region, "divergences", 0)?;
    let hot = region.find("\"stream\": \"hotset\"")?;
    let (hotset_p99_ns, after) = scan_number(region, "p99_ns", hot)?;
    let (hotset_hit_rate, _) = scan_number(region, "hit_rate", after)?;
    Some(Serve {
        speedup_vs_naive,
        divergences,
        hotset_p99_ns,
        hotset_hit_rate,
    })
}

/// Runs the serve gates when both records carry a serve section; returns
/// the number of failed gates.
fn compare_serve(baseline: Option<Serve>, fresh: Option<Serve>) -> usize {
    let (base, new) = match (baseline, fresh) {
        (Some(b), Some(n)) => (b, n),
        (b, n) => {
            println!(
                "bench_compare: serve gates skipped (baseline {}, new {})",
                if b.is_some() { "present" } else { "absent" },
                if n.is_some() { "present" } else { "absent" },
            );
            return 0;
        }
    };
    let mut failures = 0usize;
    println!("bench_compare: inference-engine serve gates");
    let p99_ceiling = base.hotset_p99_ns * SERVE_P99_GROWTH;
    let checks: [(&str, f64, f64, bool); 4] = [
        (
            "hotset hit_rate",
            new.hotset_hit_rate,
            SERVE_HIT_RATE_FLOOR,
            new.hotset_hit_rate >= SERVE_HIT_RATE_FLOOR,
        ),
        (
            "speedup_vs_naive",
            new.speedup_vs_naive,
            SERVE_SPEEDUP_FLOOR,
            new.speedup_vs_naive >= SERVE_SPEEDUP_FLOOR,
        ),
        ("divergences", new.divergences, 0.0, new.divergences == 0.0),
        (
            "hotset p99_ns",
            new.hotset_p99_ns,
            p99_ceiling,
            new.hotset_p99_ns <= p99_ceiling,
        ),
    ];
    for (name, value, bound, ok) in checks {
        if !ok {
            failures += 1;
        }
        println!(
            "  {} {:<18} {value:.4} (bound {bound:.4})",
            if ok { "ok  " } else { "FAIL" },
            name
        );
    }
    failures
}

/// The chaos-stream metrics the gate cares about.
#[derive(Debug)]
struct ChaosStream {
    stream: String,
    availability: f64,
    batch_availability: f64,
    panics: f64,
    bound_violations: f64,
    divergences: f64,
}

/// Scans the `chaos` section's streams out of a record, if present. The
/// section sits before `"entries"` and never contains bare
/// `"name"`/`"speedup"` keys, so the entry scanner is unaffected by it.
fn scan_chaos(text: &str) -> Option<Vec<ChaosStream>> {
    let start = text.find("  \"chaos\": {")?;
    // Brace-match to the end of the chaos object so sibling sections
    // (serve, entries) never leak into the stream scan.
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut end = text.len();
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    let region = &text[start..end];
    let mut streams = Vec::new();
    let mut pos = 0usize;
    while let Some((stream, after)) = scan_string(region, "stream", pos) {
        let (availability, p) = scan_number(region, "availability", after)?;
        let (bound_violations, p) = scan_number(region, "bound_violations", p)?;
        let (divergences, p) = scan_number(region, "divergences", p)?;
        let (panics, p) = scan_number(region, "panics", p)?;
        let (batch_availability, p) = scan_number(region, "batch_availability", p)?;
        streams.push(ChaosStream {
            stream,
            availability,
            batch_availability,
            panics,
            bound_violations,
            divergences,
        });
        pos = p;
    }
    if streams.is_empty() {
        return None;
    }
    Some(streams)
}

/// Runs the chaos resilience gates on the new record's streams; returns
/// the number of failed gates. Absolute floors only — no baseline
/// comparison.
fn compare_chaos(fresh: Option<Vec<ChaosStream>>) -> usize {
    let Some(streams) = fresh else {
        println!("bench_compare: chaos gates skipped (no chaos section in new record)");
        return 0;
    };
    let mut failures = 0usize;
    println!("bench_compare: resilience chaos gates");
    for s in &streams {
        let checks: [(&str, f64, f64, bool); 5] = [
            (
                "availability",
                s.availability,
                CHAOS_AVAILABILITY_FLOOR,
                s.availability >= CHAOS_AVAILABILITY_FLOOR,
            ),
            (
                "batch_availability",
                s.batch_availability,
                CHAOS_AVAILABILITY_FLOOR,
                s.batch_availability >= CHAOS_AVAILABILITY_FLOOR,
            ),
            ("panics", s.panics, 0.0, s.panics == 0.0),
            (
                "bound_violations",
                s.bound_violations,
                0.0,
                s.bound_violations == 0.0,
            ),
            ("divergences", s.divergences, 0.0, s.divergences == 0.0),
        ];
        for (name, value, bound, ok) in checks {
            if !ok {
                failures += 1;
            }
            println!(
                "  {} {:<10} {:<18} {value:.4} (bound {bound:.4})",
                if ok { "ok  " } else { "FAIL" },
                s.stream,
                name
            );
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <new.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| -> String {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_compare: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline_text = read(baseline_path);
    let new_text = read(new_path);
    for (path, text) in [(baseline_path, &baseline_text), (new_path, &new_text)] {
        if !text.contains("\"schema\": \"mssim-bench-v1\"") {
            eprintln!("bench_compare: {path} is not an mssim-bench-v1 record");
            return ExitCode::from(2);
        }
    }

    let baseline = scan_entries(&baseline_text);
    let fresh = scan_entries(&new_text);
    if baseline.is_empty() || fresh.is_empty() {
        eprintln!(
            "bench_compare: no entries scanned (baseline {}, new {})",
            baseline.len(),
            fresh.len()
        );
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    println!(
        "bench_compare: plan-cache speedup gate (tolerance -{:.0}%)",
        TOLERANCE * 100.0
    );
    for base in &baseline {
        let Some(new) = fresh.iter().find(|e| e.name == base.name) else {
            eprintln!("  FAIL {}: fixture missing from new record", base.name);
            failures += 1;
            continue;
        };
        let gated = base.speedup > 1.0;
        let floor = base.speedup * (1.0 - TOLERANCE);
        let regressed = new.speedup < floor;
        let verdict = match (gated, regressed) {
            (true, true) => {
                failures += 1;
                "FAIL"
            }
            (true, false) => "ok  ",
            (false, _) => "info",
        };
        println!(
            "  {verdict} {:<20} baseline {:.3}x -> new {:.3}x{}",
            base.name,
            base.speedup,
            new.speedup,
            if gated {
                format!(" (floor {floor:.3}x)")
            } else {
                String::from(" (not gated: baseline at/below parity)")
            }
        );
    }

    println!("bench_compare: absolute speedup floors on the new record");
    for new in &fresh {
        let floor = ENTRY_FLOORS
            .iter()
            .find(|(name, _)| *name == new.name)
            .map_or(GLOBAL_FLOOR, |&(_, f)| f);
        let ok = new.speedup >= floor;
        if !ok {
            failures += 1;
        }
        println!(
            "  {} {:<20} {:.3}x (floor {:.1}x)",
            if ok { "ok  " } else { "FAIL" },
            new.name,
            new.speedup,
            floor
        );
    }

    failures += compare_serve(scan_serve(&baseline_text), scan_serve(&new_text));
    failures += compare_chaos(scan_chaos(&new_text));

    if failures > 0 {
        eprintln!("bench_compare: {failures} fixture(s) regressed or fell below a floor");
        return ExitCode::FAILURE;
    }
    println!("bench_compare: all gated fixtures within tolerance and above floors");
    ExitCode::SUCCESS
}
