//! Compares two `BENCH_mssim.json` records and fails on regression.
//!
//! ```text
//! cargo run -p bench --release --bin bench_compare -- baseline.json new.json
//! ```
//!
//! The gate protects the plan-cache speedups two ways:
//!
//! 1. **Relative**: for every fixture whose baseline speedup is above 1×
//!    (i.e. where the compiled stamp plan beats the reference assembler),
//!    the new speedup must stay within 25% of the baseline.
//! 2. **Absolute floors** on the *new* record: every fixture must be at
//!    least 1.0× (the plan path never loses to the reference), and the
//!    batched-MOS headline `tran_adder3x3_mos` must be at least 5.0×.
//!
//! The parser is a deliberate hand-rolled scan over the fixed
//! `mssim-bench-v1` schema (the workspace has no JSON dependency and the
//! writer in `bench::hotpath` is equally hand-rolled).

use std::process::ExitCode;

/// Max tolerated fractional drop of a gated fixture's speedup.
const TOLERANCE: f64 = 0.25;

/// Every fixture in the new record must meet this speedup.
const GLOBAL_FLOOR: f64 = 1.0;

/// Fixture-specific absolute floors on the new record: `(name, floor)`.
/// `tran_adder3x3_mos` carries the batched-MOS tentpole's ≥5× contract.
const ENTRY_FLOORS: &[(&str, f64)] = &[("tran_adder3x3_mos", 5.0)];

/// One `(name, speedup)` pair scanned out of a bench record.
#[derive(Debug)]
struct Entry {
    name: String,
    speedup: f64,
}

/// Extracts the string value following `"key": "` starting at `from`.
fn scan_string(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let pat = format!("\"{key}\": \"");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find('"')? + start;
    Some((text[start..end].to_string(), end))
}

/// Extracts the numeric value following `"key": ` starting at `from`.
fn scan_number(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\": ");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find([',', '\n', '}']).map(|e| e + start)?;
    text[start..end].trim().parse().ok().map(|v| (v, end))
}

/// Scans every entry's name and speedup out of a `mssim-bench-v1` record.
fn scan_entries(text: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    let Some(mut pos) = text.find("\"entries\"") else {
        return entries;
    };
    while let Some((name, after_name)) = scan_string(text, "name", pos) {
        let Some((speedup, after)) = scan_number(text, "speedup", after_name) else {
            break;
        };
        entries.push(Entry { name, speedup });
        pos = after;
    }
    entries
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <new.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| -> String {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_compare: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline_text = read(baseline_path);
    let new_text = read(new_path);
    for (path, text) in [(baseline_path, &baseline_text), (new_path, &new_text)] {
        if !text.contains("\"schema\": \"mssim-bench-v1\"") {
            eprintln!("bench_compare: {path} is not an mssim-bench-v1 record");
            return ExitCode::from(2);
        }
    }

    let baseline = scan_entries(&baseline_text);
    let fresh = scan_entries(&new_text);
    if baseline.is_empty() || fresh.is_empty() {
        eprintln!(
            "bench_compare: no entries scanned (baseline {}, new {})",
            baseline.len(),
            fresh.len()
        );
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    println!(
        "bench_compare: plan-cache speedup gate (tolerance -{:.0}%)",
        TOLERANCE * 100.0
    );
    for base in &baseline {
        let Some(new) = fresh.iter().find(|e| e.name == base.name) else {
            eprintln!("  FAIL {}: fixture missing from new record", base.name);
            failures += 1;
            continue;
        };
        let gated = base.speedup > 1.0;
        let floor = base.speedup * (1.0 - TOLERANCE);
        let regressed = new.speedup < floor;
        let verdict = match (gated, regressed) {
            (true, true) => {
                failures += 1;
                "FAIL"
            }
            (true, false) => "ok  ",
            (false, _) => "info",
        };
        println!(
            "  {verdict} {:<20} baseline {:.3}x -> new {:.3}x{}",
            base.name,
            base.speedup,
            new.speedup,
            if gated {
                format!(" (floor {floor:.3}x)")
            } else {
                String::from(" (not gated: baseline at/below parity)")
            }
        );
    }

    println!("bench_compare: absolute speedup floors on the new record");
    for new in &fresh {
        let floor = ENTRY_FLOORS
            .iter()
            .find(|(name, _)| *name == new.name)
            .map_or(GLOBAL_FLOOR, |&(_, f)| f);
        let ok = new.speedup >= floor;
        if !ok {
            failures += 1;
        }
        println!(
            "  {} {:<20} {:.3}x (floor {:.1}x)",
            if ok { "ok  " } else { "FAIL" },
            new.name,
            new.speedup,
            floor
        );
    }

    if failures > 0 {
        eprintln!("bench_compare: {failures} fixture(s) regressed or fell below a floor");
        return ExitCode::FAILURE;
    }
    println!("bench_compare: all gated fixtures within tolerance and above floors");
    ExitCode::SUCCESS
}
