//! Compares two `BENCH_mssim.json` records and fails on regression.
//!
//! ```text
//! cargo run -p bench --release --bin bench_compare -- baseline.json new.json
//! ```
//!
//! The gate protects the plan-cache speedups two ways:
//!
//! 1. **Relative**: for every fixture whose baseline speedup is above 1×
//!    (i.e. where the compiled stamp plan beats the reference assembler),
//!    the new speedup must stay within 25% of the baseline.
//! 2. **Absolute floors** on the *new* record: every fixture must be at
//!    least 1.0× (the plan path never loses to the reference), and the
//!    batched-MOS headline `tran_adder3x3_mos` must be at least 5.0×.
//!
//! When **both** records carry a `serve` section (written by `repro
//! serve`), the inference-engine gates also run: hot-set cache hit rate
//! ≥ 90%, batched speedup over the naive per-query circuit path ≥ 10×,
//! zero classification divergences, and the hot-set p99 latency within
//! 2× of the baseline. Records without a serve section (plain `repro
//! bench` output) skip these with an info line, so the bench-smoke job
//! stays green.
//!
//! The parser is a deliberate hand-rolled scan over the fixed
//! `mssim-bench-v1` schema (the workspace has no JSON dependency and the
//! writer in `bench::hotpath` is equally hand-rolled).

use std::process::ExitCode;

/// Max tolerated fractional drop of a gated fixture's speedup.
const TOLERANCE: f64 = 0.25;

/// Every fixture in the new record must meet this speedup.
const GLOBAL_FLOOR: f64 = 1.0;

/// Fixture-specific absolute floors on the new record: `(name, floor)`.
/// `tran_adder3x3_mos` carries the batched-MOS tentpole's ≥5× contract.
const ENTRY_FLOORS: &[(&str, f64)] = &[("tran_adder3x3_mos", 5.0)];

/// Minimum hot-set cache hit rate in the new serve section.
const SERVE_HIT_RATE_FLOOR: f64 = 0.90;

/// Minimum batched speedup over the naive per-query circuit path.
const SERVE_SPEEDUP_FLOOR: f64 = 10.0;

/// Max tolerated hot-set p99 latency growth over the baseline record.
const SERVE_P99_GROWTH: f64 = 2.0;

/// One `(name, speedup)` pair scanned out of a bench record.
#[derive(Debug)]
struct Entry {
    name: String,
    speedup: f64,
}

/// Extracts the string value following `"key": "` starting at `from`.
fn scan_string(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let pat = format!("\"{key}\": \"");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find('"')? + start;
    Some((text[start..end].to_string(), end))
}

/// Extracts the numeric value following `"key": ` starting at `from`.
fn scan_number(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\": ");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find([',', '\n', '}']).map(|e| e + start)?;
    text[start..end].trim().parse().ok().map(|v| (v, end))
}

/// Scans every entry's name and speedup out of a `mssim-bench-v1` record.
fn scan_entries(text: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    let Some(mut pos) = text.find("\"entries\"") else {
        return entries;
    };
    while let Some((name, after_name)) = scan_string(text, "name", pos) {
        let Some((speedup, after)) = scan_number(text, "speedup", after_name) else {
            break;
        };
        entries.push(Entry { name, speedup });
        pos = after;
    }
    entries
}

/// The serve-section metrics the gate cares about.
#[derive(Debug)]
struct Serve {
    speedup_vs_naive: f64,
    divergences: f64,
    hotset_p99_ns: f64,
    hotset_hit_rate: f64,
}

/// Scans the `serve` section out of a record, if present. The section
/// sits before `"entries"` and never contains bare `"name"`/`"speedup"`
/// keys, so the entry scanner is unaffected by it.
fn scan_serve(text: &str) -> Option<Serve> {
    let start = text.find("\"serve\"")?;
    let end = text.find("\"entries\"").unwrap_or(text.len());
    let region = &text[start..end];
    let (speedup_vs_naive, _) = scan_number(region, "speedup_vs_naive", 0)?;
    let (divergences, _) = scan_number(region, "divergences", 0)?;
    let hot = region.find("\"stream\": \"hotset\"")?;
    let (hotset_p99_ns, after) = scan_number(region, "p99_ns", hot)?;
    let (hotset_hit_rate, _) = scan_number(region, "hit_rate", after)?;
    Some(Serve {
        speedup_vs_naive,
        divergences,
        hotset_p99_ns,
        hotset_hit_rate,
    })
}

/// Runs the serve gates when both records carry a serve section; returns
/// the number of failed gates.
fn compare_serve(baseline: Option<Serve>, fresh: Option<Serve>) -> usize {
    let (base, new) = match (baseline, fresh) {
        (Some(b), Some(n)) => (b, n),
        (b, n) => {
            println!(
                "bench_compare: serve gates skipped (baseline {}, new {})",
                if b.is_some() { "present" } else { "absent" },
                if n.is_some() { "present" } else { "absent" },
            );
            return 0;
        }
    };
    let mut failures = 0usize;
    println!("bench_compare: inference-engine serve gates");
    let p99_ceiling = base.hotset_p99_ns * SERVE_P99_GROWTH;
    let checks: [(&str, f64, f64, bool); 4] = [
        (
            "hotset hit_rate",
            new.hotset_hit_rate,
            SERVE_HIT_RATE_FLOOR,
            new.hotset_hit_rate >= SERVE_HIT_RATE_FLOOR,
        ),
        (
            "speedup_vs_naive",
            new.speedup_vs_naive,
            SERVE_SPEEDUP_FLOOR,
            new.speedup_vs_naive >= SERVE_SPEEDUP_FLOOR,
        ),
        ("divergences", new.divergences, 0.0, new.divergences == 0.0),
        (
            "hotset p99_ns",
            new.hotset_p99_ns,
            p99_ceiling,
            new.hotset_p99_ns <= p99_ceiling,
        ),
    ];
    for (name, value, bound, ok) in checks {
        if !ok {
            failures += 1;
        }
        println!(
            "  {} {:<18} {value:.4} (bound {bound:.4})",
            if ok { "ok  " } else { "FAIL" },
            name
        );
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <new.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| -> String {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_compare: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline_text = read(baseline_path);
    let new_text = read(new_path);
    for (path, text) in [(baseline_path, &baseline_text), (new_path, &new_text)] {
        if !text.contains("\"schema\": \"mssim-bench-v1\"") {
            eprintln!("bench_compare: {path} is not an mssim-bench-v1 record");
            return ExitCode::from(2);
        }
    }

    let baseline = scan_entries(&baseline_text);
    let fresh = scan_entries(&new_text);
    if baseline.is_empty() || fresh.is_empty() {
        eprintln!(
            "bench_compare: no entries scanned (baseline {}, new {})",
            baseline.len(),
            fresh.len()
        );
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    println!(
        "bench_compare: plan-cache speedup gate (tolerance -{:.0}%)",
        TOLERANCE * 100.0
    );
    for base in &baseline {
        let Some(new) = fresh.iter().find(|e| e.name == base.name) else {
            eprintln!("  FAIL {}: fixture missing from new record", base.name);
            failures += 1;
            continue;
        };
        let gated = base.speedup > 1.0;
        let floor = base.speedup * (1.0 - TOLERANCE);
        let regressed = new.speedup < floor;
        let verdict = match (gated, regressed) {
            (true, true) => {
                failures += 1;
                "FAIL"
            }
            (true, false) => "ok  ",
            (false, _) => "info",
        };
        println!(
            "  {verdict} {:<20} baseline {:.3}x -> new {:.3}x{}",
            base.name,
            base.speedup,
            new.speedup,
            if gated {
                format!(" (floor {floor:.3}x)")
            } else {
                String::from(" (not gated: baseline at/below parity)")
            }
        );
    }

    println!("bench_compare: absolute speedup floors on the new record");
    for new in &fresh {
        let floor = ENTRY_FLOORS
            .iter()
            .find(|(name, _)| *name == new.name)
            .map_or(GLOBAL_FLOOR, |&(_, f)| f);
        let ok = new.speedup >= floor;
        if !ok {
            failures += 1;
        }
        println!(
            "  {} {:<20} {:.3}x (floor {:.1}x)",
            if ok { "ok  " } else { "FAIL" },
            new.name,
            new.speedup,
            floor
        );
    }

    failures += compare_serve(scan_serve(&baseline_text), scan_serve(&new_text));

    if failures > 0 {
        eprintln!("bench_compare: {failures} fixture(s) regressed or fell below a floor");
        return ExitCode::FAILURE;
    }
    println!("bench_compare: all gated fixtures within tolerance and above floors");
    ExitCode::SUCCESS
}
