//! Cross-checks two `mssim-faults-v2` records for triage soundness.
//!
//! ```text
//! cargo run -p bench --bin faults_compare -- triaged.json simulated.json
//! ```
//!
//! The first record comes from a triaged campaign (`repro faults`), the
//! second from a full simulated sweep of the same universe (`repro
//! faults --no-triage`). A statically certified verdict claims to be
//! *guaranteed*, so CI holds it to exactly that standard: every fault
//! label must land in the same outcome class in both records, and any
//! divergence on a `guaranteed_*` row is a soundness contradiction that
//! fails the build. The parser is deliberately line-based — the exporter
//! writes one `"key": value` pair per line — so the gate needs no JSON
//! dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One outcome row: the class it landed in and its static verdict tag
/// (`None` when the row was simulated).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    class: String,
    static_verdict: Option<String>,
}

/// Extracts the string value from a `  "key": "value",` line.
fn quoted_value(line: &str) -> Option<&str> {
    let (_, rest) = line.split_once(':')?;
    let rest = rest.trim().trim_end_matches(',');
    rest.strip_prefix('"')?.strip_suffix('"')
}

/// Parses the exporter's per-outcome `label`/`class`/`static_verdict`
/// lines into a label-keyed map. Returns an error line description when
/// the record misses a field or repeats a label.
fn parse_outcomes(text: &str, path: &str) -> Result<BTreeMap<String, Row>, String> {
    if !text.contains("\"schema\": \"mssim-faults-v2\"") {
        return Err(format!("{path}: not an mssim-faults-v2 record"));
    }
    let mut rows = BTreeMap::new();
    let mut label: Option<String> = None;
    let mut class: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("\"label\":") {
            label = Some(
                quoted_value(trimmed)
                    .ok_or_else(|| format!("{path}: malformed label line: {trimmed}"))?
                    .to_string(),
            );
        } else if trimmed.starts_with("\"class\":") {
            class = Some(
                quoted_value(trimmed)
                    .ok_or_else(|| format!("{path}: malformed class line: {trimmed}"))?
                    .to_string(),
            );
        } else if trimmed.starts_with("\"static_verdict\":") {
            let l = label
                .take()
                .ok_or_else(|| format!("{path}: static_verdict before any label"))?;
            let c = class
                .take()
                .ok_or_else(|| format!("{path}: outcome '{l}' has no class"))?;
            let verdict = quoted_value(trimmed).map(str::to_string);
            if rows
                .insert(
                    l.clone(),
                    Row {
                        class: c,
                        static_verdict: verdict,
                    },
                )
                .is_some()
            {
                return Err(format!("{path}: duplicate fault label '{l}'"));
            }
        }
    }
    if rows.is_empty() {
        return Err(format!("{path}: no outcome rows found"));
    }
    Ok(rows)
}

fn run(triaged_path: &str, simulated_path: &str) -> Result<usize, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let triaged = parse_outcomes(&read(triaged_path)?, triaged_path)?;
    let simulated = parse_outcomes(&read(simulated_path)?, simulated_path)?;

    if triaged.len() != simulated.len() {
        return Err(format!(
            "universe mismatch: {} outcomes in {triaged_path}, {} in {simulated_path}",
            triaged.len(),
            simulated.len()
        ));
    }
    let mut contradictions = 0usize;
    let mut certified = 0usize;
    for (label, t) in &triaged {
        let Some(s) = simulated.get(label) else {
            return Err(format!("{simulated_path}: missing fault '{label}'"));
        };
        if t.static_verdict.is_some() {
            certified += 1;
        }
        if t.class != s.class {
            contradictions += 1;
            eprintln!(
                "CONTRADICTION {label}: triaged={} ({}), simulated={}",
                t.class,
                t.static_verdict.as_deref().unwrap_or("simulated"),
                s.class
            );
        }
    }
    println!(
        "faults_compare: {} outcomes, {certified} statically certified, {contradictions} contradiction(s)",
        triaged.len()
    );
    Ok(contradictions)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [triaged, simulated] = args.as_slice() else {
        eprintln!("usage: faults_compare <triaged.json> <simulated.json>");
        return ExitCode::from(2);
    };
    match run(triaged, simulated) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("faults_compare: static verdicts contradict the simulated sweep — failing");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("faults_compare: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = r#"{
  "schema": "mssim-faults-v2",
  "outcomes": [
    {
      "label": "a",
      "class": "masked",
      "static_verdict": null,
      "vout": 0.1
    },
    {
      "label": "b",
      "class": "functional_fail",
      "static_verdict": "guaranteed_fail",
      "vout": null
    }
  ]
}
"#;

    #[test]
    fn parses_labels_classes_and_verdicts() {
        let rows = parse_outcomes(RECORD, "test").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows["a"].class, "masked");
        assert_eq!(rows["a"].static_verdict, None);
        assert_eq!(rows["b"].class, "functional_fail");
        assert_eq!(rows["b"].static_verdict.as_deref(), Some("guaranteed_fail"));
    }

    #[test]
    fn rejects_v1_records_and_empty_input() {
        assert!(parse_outcomes("{\"schema\": \"mssim-faults-v1\"}", "t").is_err());
        assert!(parse_outcomes("{\"schema\": \"mssim-faults-v2\"}", "t").is_err());
    }
}
