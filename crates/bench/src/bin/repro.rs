//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --release --bin repro -- all
//! cargo run -p bench --release --bin repro -- fig4 table2 ...
//! cargo run -p bench --release --bin repro -- --fast all
//! ```
//!
//! Prints the paper's tables/series and writes CSVs into `results/`.

use std::time::Instant;

use bench::experiments as ex;
use bench::output::{f, render_table, results_dir, write_csv};
use pwmcell::{SimQuality, Technology};

const EXPERIMENTS: &[&str] = &[
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table2",
    "fig8",
    "ablation-rout",
    "ablation-cout",
    "mc",
    "table2-freq",
    "baseline",
    "kessels",
    "xval",
    "train",
    "ablation-bits",
    "scaling",
    "full-perceptron",
    "temperature",
    "spice",
    "noise",
    "map",
    "lint",
    "verify",
    "analyze",
    "bench",
    "trace",
    "faults",
    "serve",
    "chaos",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let no_collapse = args.iter().any(|a| a == "--no-collapse");
    let no_triage = args.iter().any(|a| a == "--no-triage");
    let triage_only = args.iter().any(|a| a == "--triage-only");
    let queries = args
        .iter()
        .position(|a| a == "--queries")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--queries expects a positive integer, got '{v}'");
                std::process::exit(2);
            })
        });
    let mut skip_next = false;
    let mut selected: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--queries" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    if selected.is_empty() || selected.contains(&"all") {
        selected = EXPERIMENTS.to_vec();
    }
    for s in &selected {
        if !EXPERIMENTS.contains(s) {
            eprintln!("unknown experiment '{s}'. known: all {EXPERIMENTS:?}");
            std::process::exit(2);
        }
    }

    let tech = Technology::umc65_like();
    let quality = if fast {
        SimQuality::fast()
    } else {
        SimQuality::paper()
    };
    println!("PWM mixed-signal perceptron — paper reproduction harness");
    println!(
        "Table I parameters: Vdd={}, n={:.0}nm / p={:.0}nm x L={:.1}um, Cout(inv)={}, Cout(adder)={}, Rout={}, f={}",
        tech.vdd,
        tech.nmos.w * 1e9,
        tech.pmos.w * 1e9,
        tech.nmos.l * 1e6,
        tech.cout_inverter,
        tech.cout_adder,
        tech.rout,
        tech.frequency,
    );
    println!(
        "quality: {} ({} steps/period, settle {}τ)",
        if fast { "fast" } else { "paper" },
        quality.steps_per_period,
        quality.settle_time_constants
    );

    for name in selected {
        let t0 = Instant::now();
        match name {
            "fig4" => fig4(&tech, &quality, fast),
            "fig5" => fig5(&tech, &quality, fast),
            "fig6" | "fig7" => fig6_fig7(&tech, &quality, fast, name),
            "table2" => table2(&tech, &quality),
            "fig8" => fig8(&tech, &quality, fast),
            "ablation-rout" => ablation_rout(&tech, &quality, fast),
            "ablation-cout" => ablation_cout(&tech, &quality),
            "mc" => mc(&tech, &quality, fast),
            "table2-freq" => table2_freq(&tech),
            "baseline" => baseline(),
            "kessels" => kessels(),
            "xval" => xval(&tech, &quality),
            "train" => train_demo(),
            "ablation-bits" => ablation_bits(),
            "scaling" => scaling(&tech),
            "full-perceptron" => full_perceptron(&tech, &quality),
            "temperature" => temperature(&tech),
            "spice" => spice(&tech),
            "noise" => noise(&tech),
            "map" => map(&tech),
            "lint" => lint_report(&tech),
            "verify" => verify_report(&tech),
            "analyze" => analyze_report(&tech),
            "bench" => bench(&tech, fast),
            "trace" => trace(&tech),
            "faults" => faults(&tech, fast, no_collapse, no_triage, triage_only),
            "serve" => serve(queries, fast),
            "chaos" => chaos(queries, fast),
            _ => unreachable!(),
        }
        eprintln!("  [{name} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
}

fn fig4(tech: &Technology, q: &SimQuality, fast: bool) {
    let points = if fast { 6 } else { 11 };
    let rows = ex::fig4(tech, q, points);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.duty * 100.0, 0),
                f(r.vout_no_load, 3),
                f(r.vout_5k, 3),
                f(r.vout_100k, 3),
                f(r.ideal, 3),
            ]
        })
        .collect();
    let header = ["DC %", "no load V", "5kOhm V", "100kOhm V", "ideal V"];
    println!(
        "{}",
        render_table("Fig. 4 — inverter Vout vs duty cycle", &header, &table)
    );
    write_csv(&results_dir().join("fig4.csv"), &header, &table);
}

fn fig5(tech: &Technology, q: &SimQuality, fast: bool) {
    let freqs = ex::fig5_frequencies(if fast { 4 } else { 9 });
    let rows = ex::fig5(tech, q, &freqs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.frequency / 1e6, 0),
                f(r.vout_dc25, 3),
                f(r.vout_dc50, 3),
                f(r.vout_dc75, 3),
            ]
        })
        .collect();
    let header = ["f MHz", "DC=25%", "DC=50%", "DC=75%"];
    println!(
        "{}",
        render_table("Fig. 5 — inverter Vout vs input frequency", &header, &table)
    );
    write_csv(&results_dir().join("fig5.csv"), &header, &table);
}

fn fig6_fig7(tech: &Technology, q: &SimQuality, fast: bool, which: &str) {
    let vdds = ex::fig6_vdds(if fast { 5 } else { 10 });
    let rows = ex::fig6_fig7(tech, q, &vdds);
    if which == "fig6" {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    f(r.vdd, 2),
                    f(r.vout[0], 3),
                    f(r.vout[1], 3),
                    f(r.vout[2], 3),
                ]
            })
            .collect();
        let header = ["Vdd V", "DC=25%", "DC=50%", "DC=75%"];
        println!(
            "{}",
            render_table(
                "Fig. 6 — inverter Vout (absolute) vs supply",
                &header,
                &table
            )
        );
        write_csv(&results_dir().join("fig6.csv"), &header, &table);
    } else {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    f(r.vdd, 2),
                    f(r.ratio[0], 3),
                    f(r.ratio[1], 3),
                    f(r.ratio[2], 3),
                ]
            })
            .collect();
        let header = ["Vdd V", "DC=25%", "DC=50%", "DC=75%"];
        println!(
            "{}",
            render_table("Fig. 7 — inverter Vout/Vdd vs supply", &header, &table)
        );
        write_csv(&results_dir().join("fig7.csv"), &header, &table);
    }
}

fn table2(tech: &Technology, q: &SimQuality) {
    let rows = ex::table2(tech, q);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!(
                    "{}%/{} {}%/{} {}%/{}",
                    (r.duties[0] * 100.0) as u32,
                    r.weights[0],
                    (r.duties[1] * 100.0) as u32,
                    r.weights[1],
                    (r.duties[2] * 100.0) as u32,
                    r.weights[2]
                ),
                f(r.v_theory, 3),
                f(r.v_sim, 3),
                f(r.error, 3),
                f(r.paper.0, 2),
                f(r.paper.1, 2),
            ]
        })
        .collect();
    let header = [
        "DC/W per input",
        "Eq.2 V",
        "sim V",
        "err V",
        "paper th.",
        "paper sim",
    ];
    println!(
        "{}",
        render_table("Table II — 3×3 weighted adder", &header, &table)
    );
    write_csv(&results_dir().join("table2.csv"), &header, &table);
}

fn fig8(tech: &Technology, q: &SimQuality, fast: bool) {
    let freqs = ex::fig8_frequencies(if fast { 4 } else { 10 });
    let rows = ex::fig8(tech, q, &freqs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![f(r.frequency / 1e6, 0), f(r.power * 1e6, 1)])
        .collect();
    let header = ["f MHz", "power uW"];
    println!(
        "{}",
        render_table(
            "Fig. 8 — adder average supply power vs input frequency",
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("fig8.csv"), &header, &table);
}

fn ablation_rout(tech: &Technology, q: &SimQuality, fast: bool) {
    let routs: Vec<f64> = if fast {
        vec![2e3, 20e3, 200e3]
    } else {
        vec![1e3, 2e3, 5e3, 10e3, 20e3, 50e3, 100e3, 200e3, 500e3]
    };
    let rows = ex::ablation_rout(tech, q, &routs, if fast { 3 } else { 7 });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![f(r.rout / 1e3, 0), f(r.max_inl * 1e3, 1)])
        .collect();
    let header = ["Rout kOhm", "max INL mV"];
    println!(
        "{}",
        render_table("A1 — linearity vs output resistor", &header, &table)
    );
    write_csv(&results_dir().join("ablation_rout.csv"), &header, &table);
}

fn ablation_cout(tech: &Technology, q: &SimQuality) {
    let couts = vec![100e-15, 300e-15, 1e-12, 3e-12, 10e-12];
    let rows = ex::ablation_cout(tech, q, &couts);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.cout * 1e12, 2),
                f(r.ripple * 1e3, 2),
                f(r.settle * 1e9, 0),
            ]
        })
        .collect();
    let header = ["Cout pF", "ripple mV", "settle ns"];
    println!(
        "{}",
        render_table("A2 — ripple vs settling trade-off", &header, &table)
    );
    write_csv(&results_dir().join("ablation_cout.csv"), &header, &table);
}

fn mc(tech: &Technology, q: &SimQuality, fast: bool) {
    let trials_switch = if fast { 64 } else { 512 };
    let rows = ex::mc_switch_level(tech, trials_switch, 0xC0FFEE);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(i, s)| {
            vec![
                format!("{}", i + 1),
                f(s.mean, 3),
                f(s.std * 1e3, 1),
                f(s.relative_std() * 100.0, 2),
                f(s.min, 3),
                f(s.max, 3),
            ]
        })
        .collect();
    let header = ["row", "mean V", "std mV", "cv %", "min V", "max V"];
    println!(
        "{}",
        render_table(
            &format!("A3 — switch-level Monte Carlo ({trials_switch} trials/row, global corners)"),
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("mc_switch.csv"), &header, &table);

    let trials_ckt = if fast { 8 } else { 24 };
    let s = ex::mc_circuit_level(tech, q, 2, trials_ckt, 0xBEEF);
    println!(
        "A3 — transistor-level per-device MC, Table II row 3, {trials_ckt} trials: mean {:.3} V, std {:.1} mV, cv {:.2}%",
        s.mean,
        s.std * 1e3,
        s.relative_std() * 100.0
    );
}

fn table2_freq(tech: &Technology) {
    let freqs = [1e6, 10e6, 100e6, 500e6, 1e9];
    let rows = ex::table2_frequency_invariance(tech, &freqs);
    let mut table = Vec::new();
    for (i, _) in ex::TABLE2_CONFIGS.iter().enumerate() {
        let mut cells = vec![format!("{}", i + 1)];
        for &freq in &freqs {
            let v = rows
                .iter()
                .find(|(fq, ri, _)| *ri == i && (*fq - freq).abs() < 1.0)
                .map(|(_, _, v)| *v)
                .unwrap_or(f64::NAN);
            cells.push(f(v, 3));
        }
        table.push(cells);
    }
    let header = ["row", "1MHz", "10MHz", "100MHz", "500MHz", "1GHz"];
    println!(
        "{}",
        render_table(
            "A4 — Table II output vs frequency (switch-level)",
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("table2_freq.csv"), &header, &table);
}

fn baseline() {
    let c = ex::baseline_comparison(10e6, 50);
    println!("\n== A5 — PWM adder vs conventional digital perceptron ==");
    println!(
        "PWM 3×3 weighted adder:      {:>6} transistors",
        c.pwm_transistors
    );
    println!(
        "Digital MAC (3×8b×3b):       {:>6} transistors ({:.1}× more)",
        c.digital_transistors,
        c.digital_transistors as f64 / c.pwm_transistors as f64
    );
    println!(
        "Digital dynamic power at {:.0} Meval/s: {:.1} µW",
        c.eval_rate / 1e6,
        c.digital_power * 1e6
    );
}

fn kessels() {
    let rows = ex::kessels_duty_table(4);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(m, expect, meas)| vec![format!("{m}"), f(*expect * 100.0, 2), f(*meas * 100.0, 2)])
        .collect();
    let header = ["M", "expected %", "measured %"];
    println!(
        "{}",
        render_table(
            "A6 — Kessels-style counter PWM generator duty accuracy",
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("kessels.csv"), &header, &table);

    // Generator cost at two clock rates: the PWM source is cheap next to
    // the digital MAC and its power scales with the clock, as expected.
    for (label, period_ps) in [("100 MHz", 10_000u64), ("500 MHz", 2_000)] {
        let r = ex::kessels_power(8, period_ps, 4);
        println!(
            "8-bit generator at {label}: {} transistors, {:.1} µW dynamic",
            r.transistors,
            r.dynamic_watts * 1e6
        );
    }

    // Waveform artefact: two counter wraps as a GTKWave-compatible VCD.
    let vcd = ex::kessels_waveform_vcd(4, 5);
    let path = results_dir().join("kessels.vcd");
    match std::fs::write(&path, &vcd) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), vcd.len()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
}

fn xval(tech: &Technology, q: &SimQuality) {
    let rows = ex::evaluator_cross_validation(tech, q);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(i, va, vs, vc)| {
            vec![
                format!("{}", i + 1),
                f(*va, 3),
                f(*vs, 3),
                f(*vc, 3),
                f((vs - va) * 1e3, 1),
                f((vc - va) * 1e3, 1),
            ]
        })
        .collect();
    let header = [
        "row",
        "analytic V",
        "switch V",
        "circuit V",
        "Δsw mV",
        "Δckt mV",
    ];
    println!(
        "{}",
        render_table("A7 — evaluator cross-validation", &header, &table)
    );
    write_csv(&results_dir().join("xval.csv"), &header, &table);
}

fn train_demo() {
    let (train_acc, test_acc) = ex::train_demo(2024);
    println!("\n== End-to-end — hardware-in-the-loop training (switch-level) ==");
    println!("train accuracy: {:.1}%", train_acc * 100.0);
    println!("test accuracy:  {:.1}%", test_acc * 100.0);
}

fn ablation_bits() {
    let rows = ex::ablation_weight_bits(31337, &[1, 2, 3, 4, 5, 6]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.bits),
                f(r.train_accuracy * 100.0, 1),
                f(r.test_accuracy * 100.0, 1),
                format!("{}", r.transistors),
            ]
        })
        .collect();
    let header = ["bits", "train %", "test %", "transistors"];
    println!(
        "{}",
        render_table(
            "A8 — accuracy vs weight precision (4 inputs, 1% margin, switch-level HIL)",
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("ablation_bits.csv"), &header, &table);
}

fn map(tech: &Technology) {
    let weights = [7u32, 3];
    let reference = 0.35;
    let grid = 41;
    let pts = ex::decision_map(tech, &weights, reference, grid);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                f(p.d0, 3),
                f(p.d1, 3),
                f(p.ratio, 4),
                format!("{}", p.fires as u8),
            ]
        })
        .collect();
    let header = ["d0", "d1", "ratio", "fires"];
    write_csv(&results_dir().join("decision_map.csv"), &header, &rows);
    // Console: a coarse ASCII rendering of the boundary.
    println!(
        "\n== Decision map — weights {weights:?}, reference {reference}·Vdd (switch-level) =="
    );
    let coarse = 21;
    let coarse_pts = ex::decision_map(tech, &weights, reference, coarse);
    for row in 0..coarse {
        let d1 = 1.0 - row as f64 / (coarse - 1) as f64;
        let line: String = (0..coarse)
            .map(|col| {
                let d0 = col as f64 / (coarse - 1) as f64;
                let p = coarse_pts
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.d0 - d0).abs() + (a.d1 - d1).abs();
                        let db = (b.d0 - d0).abs() + (b.d1 - d1).abs();
                        da.partial_cmp(&db).expect("finite")
                    })
                    .expect("grid non-empty");
                if p.fires {
                    '#'
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {line}");
    }
    println!("  (d0 →, d1 ↑; '#' fires — the boundary is the line 7·d0 + 3·d1 = 7.35)");
}

fn noise(tech: &Technology) {
    let couts = [0.1e-12, 1e-12, 10e-12];
    let rows = ex::noise_budget(tech, &couts);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.cout * 1e12, 1),
                f(r.rms_noise * 1e6, 1),
                f(r.ktc * 1e6, 1),
                f(r.lsb_over_noise, 0),
            ]
        })
        .collect();
    let header = ["Cout pF", "RMS noise µV", "kT/C µV", "LSB/noise"];
    println!(
        "{}",
        render_table(
            "A12 — adder output thermal-noise budget (adjoint .NOISE)",
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("noise.csv"), &header, &table);
    println!("noise sits at the kT/C bound, orders below the 119 mV LSB —");
    println!("mismatch (A3), not thermal noise, limits the architecture's precision.");
}

fn spice(tech: &Technology) {
    use mssim::export::to_spice;
    use mssim::prelude::*;

    println!("\n== SPICE export — cross-validation decks ==");
    let dir = results_dir();

    // Fig. 2 inverter at the paper's operating point.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    ckt.vsource(
        "VIN",
        inp,
        Circuit::GND,
        Waveform::pwm(tech.vdd.value(), tech.frequency.value(), 0.25),
    );
    pwmcell::Inverter::build(
        &mut ckt,
        tech,
        "inv",
        inp,
        vdd,
        Some(tech.rout),
        tech.cout_inverter,
    );
    let deck = to_spice(&ckt, "Fig.2 transcoding inverter, DC=25%, 500MHz");
    std::fs::write(dir.join("inverter.sp"), &deck).expect("write deck");
    println!(
        "  wrote {} ({} lines)",
        dir.join("inverter.sp").display(),
        deck.lines().count()
    );

    // Full 62-transistor perceptron, Table II row 1.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let dut = pwmcell::perceptron_circuit::PerceptronCircuit::build(
        &mut ckt,
        tech,
        "p",
        vdd,
        &[7, 7, 7],
        pwmcell::AdderSpec::paper_3x3(),
        0.5,
    );
    for (i, d) in [0.7, 0.8, 0.9].into_iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            dut.adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), d),
        );
    }
    let deck = to_spice(&ckt, "Full Fig.1 perceptron, Table II row 1");
    std::fs::write(dir.join("full_perceptron.sp"), &deck).expect("write deck");
    println!(
        "  wrote {} ({} lines)",
        dir.join("full_perceptron.sp").display(),
        deck.lines().count()
    );
}

fn temperature(tech: &Technology) {
    let temps = [-40.0, 0.0, 27.0, 85.0, 125.0];
    let rows = ex::temperature_sweep(tech, &temps);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![f(r.celsius, 0)];
            cells.extend(r.vouts.iter().map(|v| f(*v, 3)));
            cells.push(f(r.max_shift * 1e3, 1));
            cells
        })
        .collect();
    let header = [
        "T °C",
        "row1 V",
        "row2 V",
        "row3 V",
        "row4 V",
        "row5 V",
        "row6 V",
        "max Δ mV",
    ];
    println!(
        "{}",
        render_table(
            "A11 — Table II outputs across -40..125 °C (switch-level)",
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("temperature.csv"), &header, &table);
}

fn full_perceptron(tech: &Technology, q: &SimQuality) {
    let rows = ex::full_perceptron(tech, q);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.row + 1),
                f(r.ratio, 3),
                format!("{}", r.expected as u8),
                format!("{}", r.fires_nominal as u8),
                format!("{}", r.fires_low_vdd as u8),
            ]
        })
        .collect();
    let header = ["row", "Eq.2/Vdd", "ideal", "2.5V", "1.8V"];
    println!(
        "{}",
        render_table(
            "A10 — full 62-transistor perceptron (adder + reference + comparator)",
            &header,
            &table
        )
    );
    write_csv(&results_dir().join("full_perceptron.csv"), &header, &table);
    let agree = rows
        .iter()
        .filter(|r| r.fires_nominal == r.expected && r.fires_low_vdd == r.expected)
        .count();
    println!("decisions matching the ideal comparator at both supplies: {agree}/6");
}

/// Every analog circuit the reproduction ships, built exactly as the
/// experiments build them: the Fig. 2 transcoding inverter, the Fig. 3
/// 3×3 weighted adder and the full Fig. 1 perceptron. Shared between the
/// `lint` and `verify` experiments so both gate the same artifacts.
fn shipped_analog_circuits(tech: &Technology) -> Vec<(String, mssim::Circuit)> {
    use mssim::prelude::*;

    let mut analog: Vec<(String, Circuit)> = Vec::new();

    // Fig. 2 transcoding inverter at the paper's operating point.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    ckt.vsource(
        "VIN",
        inp,
        Circuit::GND,
        Waveform::pwm(tech.vdd.value(), tech.frequency.value(), 0.25),
    );
    pwmcell::Inverter::build(
        &mut ckt,
        tech,
        "inv",
        inp,
        vdd,
        Some(tech.rout),
        tech.cout_inverter,
    );
    analog.push(("Fig.2 inverter".into(), ckt));

    // 3×3 weighted adder (Fig. 3 / Table II topology).
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = pwmcell::WeightedAdder::build(
        &mut ckt,
        tech,
        "add",
        vdd,
        &[7, 7, 7],
        pwmcell::AdderSpec::paper_3x3(),
    );
    for (i, input) in adder.inputs.iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            *input,
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), 0.5),
        );
    }
    analog.push(("Fig.3 3x3 weighted adder".into(), ckt));

    // Full 62-transistor perceptron (Fig. 1).
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let dut = pwmcell::perceptron_circuit::PerceptronCircuit::build(
        &mut ckt,
        tech,
        "p",
        vdd,
        &[7, 7, 7],
        pwmcell::AdderSpec::paper_3x3(),
        0.5,
    );
    for (i, d) in [0.7, 0.8, 0.9].into_iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            dut.adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), d),
        );
    }
    analog.push(("Fig.1 full perceptron".into(), ckt));

    analog
}

/// The digital blocks the reproduction ships: the Kessels-counter PWM
/// generator and the baseline fixed-point MAC perceptron.
fn shipped_digital_netlists() -> Vec<(String, gatesim::Netlist)> {
    let mut digital: Vec<(String, gatesim::Netlist)> = Vec::new();
    let mut nl = gatesim::Netlist::new();
    gatesim::kessels::KesselsPwm::build(&mut nl, 8);
    digital.push(("Kessels PWM generator (8-bit)".into(), nl));
    let baseline = baseline::DigitalPerceptron::new(baseline::BaselineSpec::matched_to_paper());
    digital.push(("digital MAC baseline".into(), baseline.netlist().clone()));
    digital
}

/// Lints every circuit and netlist the reproduction ships: the analog
/// cells through `mssim::lint` and the digital blocks through
/// `gatesim::lint`. Exits nonzero if anything reaches deny severity, so
/// CI can gate on it.
fn lint_report(tech: &Technology) {
    println!("\n== Static analysis — every shipped circuit and netlist ==");
    let mut denials = 0usize;

    for (name, ckt) in &shipped_analog_circuits(tech) {
        let report = mssim::lint::lint(ckt);
        denials += report.denials().count();
        print!("[analog] {name}: {report}");
    }

    for (name, nl) in &shipped_digital_netlists() {
        let report = gatesim::lint::lint(nl);
        denials += report.denials().count();
        print!("[digital] {name}: {report}");
    }

    if denials > 0 {
        eprintln!("lint: {denials} deny-level diagnostic(s) — failing");
        std::process::exit(1);
    }
    println!("lint: all shipped circuits clean of deny-level diagnostics");
}

/// Full static verification of every shipped analog circuit: the lint
/// pass (including the MS020-series structural-solvability analysis) plus
/// the PL-series stamp-plan verifier over the compiled DC and transient
/// plans. Exits nonzero on any denial or plan violation, so CI proves
/// every plan sound in release builds too (where the compile-time
/// `debug_assertions` hook is compiled out).
fn verify_report(tech: &Technology) {
    println!("\n== Static verification — structural solvability + plan soundness ==");
    let mut unsound = 0usize;

    for (name, ckt) in &shipped_analog_circuits(tech) {
        let report = mssim::verify_circuit(ckt);
        if !report.is_sound() {
            unsound += 1;
        }
        print!("[verify] {name}: {report}");
    }

    if unsound > 0 {
        eprintln!("verify: {unsound} circuit(s) failed static verification — failing");
        std::process::exit(1);
    }
    println!("verify: all shipped circuits structurally solvable, all compiled plans sound");
}

/// Numeric abstract interpretation of every shipped analog circuit: the
/// interval analyzer ([`mssim::analyze`]) walks each compiled stamp plan
/// with every device parameter widened over ±5% component tolerance and
/// a 0.9–1.0 supply window, and certifies the absence of
/// guaranteed-singular pivots (MS030) and overflow-prone stamp ranges
/// (MS031) over the whole envelope. Warn-level findings (cancellation,
/// certified condition bounds) are reported but do not fail the run.
/// Writes the `mssim-analyze-v1` record `results/ANALYZE_mssim.json` and
/// exits nonzero on any denial, so CI gates on it.
fn analyze_report(tech: &Technology) {
    use bench::output::results_dir;
    use mssim::prelude::Ranges;

    println!(
        "\n== Abstract interpretation — widened interval analysis of every shipped circuit =="
    );
    let ranges = Ranges::default()
        .with_tolerance(0.05)
        .with_supply_scale(0.9, 1.0);
    let mut denials = 0usize;
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mssim-analyze-v1\",\n");
    json.push_str("  \"tolerance\": 0.05,\n  \"supply_scale\": [0.9, 1.0],\n");
    json.push_str("  \"circuits\": [\n");
    let circuits = shipped_analog_circuits(tech);
    for (idx, (name, ckt)) in circuits.iter().enumerate() {
        let t0 = Instant::now();
        let report = mssim::analyze_circuit(ckt, &ranges);
        let wall_ns = t0.elapsed().as_nanos();
        denials += report.denials().count();
        print!("[analyze] {name}: {report}");
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{name}\",\n"));
        json.push_str(&format!(
            "      \"denials\": {},\n",
            report.denials().count()
        ));
        json.push_str(&format!(
            "      \"warnings\": {},\n",
            report.warnings().count()
        ));
        json.push_str(&format!("      \"wall_ns\": {wall_ns},\n"));
        json.push_str("      \"findings\": [");
        for (i, d) in report.findings().iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{}\"", d.code.id()));
        }
        json.push_str("]\n");
        json.push_str(if idx + 1 == circuits.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("ANALYZE_mssim.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), json.len()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
    if denials > 0 {
        eprintln!("analyze: {denials} deny-level finding(s) over the declared ranges — failing");
        std::process::exit(1);
    }
    println!("analyze: every shipped circuit is certified free of MS030/MS031 over the envelope");
}

/// Solver hot-path benchmark: times the compiled stamp plan against the
/// naive reference assembler on the shipped circuits, asserting waveform
/// equivalence within 1e-12 before timing, and writes the machine-readable
/// trajectory record `results/BENCH_mssim.json`.
fn bench(tech: &Technology, fast: bool) {
    use bench::hotpath;

    let repeats = if fast { 3 } else { 11 };
    let rows = hotpath::hot_path(tech, repeats, fast);
    let overhead = hotpath::telemetry_overhead(tech, repeats);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{} {}s", r.items, r.unit),
                f(r.reference_best_ns / 1e6, 2),
                f(r.plan_best_ns / 1e6, 2),
                format!("{}x", f(r.speedup, 2)),
                f(r.plan_ns_per_item, 0),
                f(r.plan_items_per_s / 1e6, 2),
                format!("{:.1e}", r.max_abs_diff),
            ]
        })
        .collect();
    let header = [
        "fixture", "work", "ref ms", "plan ms", "speedup", "ns/item", "Mitem/s", "max |dV|",
    ];
    println!(
        "{}",
        render_table(
            &format!("Solver hot path — plan vs reference (best of {repeats})"),
            &header,
            &table
        )
    );
    let astats = hotpath::analyze_stats(tech);
    println!(
        "abstract interpreter on the 3x3 adder: {:.2} ms; collapse {} -> {} transients (ratio {:.3})",
        astats.analyze_wall_ns / 1e6,
        astats.universe,
        astats.simulated,
        astats.collapse_ratio()
    );
    let json = hotpath::to_json(&rows, repeats, fast, overhead, &astats);
    let path = results_dir().join("BENCH_mssim.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), json.len()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
    if let Some(adder) = rows.iter().find(|r| r.name == "tran_adder3x3") {
        println!(
            "headline: 3x3 switch-level adder transient runs {:.2}x faster than the reference path",
            adder.speedup
        );
    }
    println!(
        "telemetry-disabled overhead on tran_adder3x3: {:.2}% (Session vs legacy entry point)",
        (overhead - 1.0) * 100.0
    );
    if overhead > 1.02 {
        eprintln!(
            "bench: disabled telemetry costs {overhead:.4}x > 1.02x on the hot path — failing"
        );
        std::process::exit(1);
    }
}

/// Structured-trace smoke run: replays the benchmarked 3×3 and 8×8
/// switch-level adder transients through a fully instrumented [`Session`]
/// (memory recorder + summary + JSONL writer fan-out), cross-checks the
/// event-derived Newton counters against the solver's own end-of-analysis
/// report, prints the aggregate tables and writes the schema-versioned
/// trace `results/TRACE_mssim.jsonl`. Exits nonzero on any counter
/// mismatch, so CI gates on telemetry staying truthful.
fn trace(tech: &Technology) {
    use bench::hotpath::switch_adder_circuit;
    use mssim::prelude::*;
    use mssim::telemetry::{Event, SolverCounters, TRACE_SCHEMA};
    use pwmcell::AdderSpec;

    println!("\n== Structured trace — instrumented Session on the shipped adders ==");
    let dt = 10e-12;
    let steps = 2000usize;
    let fixtures: [(&str, Circuit); 2] = [
        (
            "tran_adder3x3",
            switch_adder_circuit(
                tech,
                AdderSpec::paper_3x3(),
                &[7, 7, 7],
                &[0.70, 0.80, 0.90],
            )
            .0,
        ),
        (
            "tran_adder8x8",
            switch_adder_circuit(
                tech,
                AdderSpec::new(8, 8),
                &[255, 170, 129, 100, 77, 64, 31, 9],
                &[0.05, 0.20, 0.35, 0.50, 0.60, 0.75, 0.85, 0.95],
            )
            .0,
        ),
    ];

    let jsonl = JsonlWriter::new(Vec::<u8>::new());
    let mut sink = Tee(MemoryRecorder::new(), Tee(Summary::new(), jsonl));
    let tran = Transient::new(dt, steps as f64 * dt)
        .use_initial_conditions()
        .record_every(16);
    let mut mismatches = 0usize;
    for (name, ckt) in &fixtures {
        let before = sink.0.counter_value("newton.iterations");
        let events_before = sink.0.events().len();
        Session::new(ckt)
            .observe(&mut sink)
            .transient(&tran)
            .expect("transient converges");
        let derived = sink.0.counter_value("newton.iterations") - before;
        // The solver's own accounting: sum of every SolverReport the
        // fixture emitted (the transient plus its nested DC operating
        // point), straight from `SolverStats`.
        let reported: SolverCounters = sink.0.events()[events_before..]
            .iter()
            .filter_map(|e| match e {
                Event::SolverReport { counters, .. } => Some(*counters),
                _ => None,
            })
            .fold(SolverCounters::default(), |acc, c| SolverCounters {
                iterations: acc.iterations + c.iterations,
                factorizations: acc.factorizations + c.factorizations,
                back_substitutions: acc.back_substitutions + c.back_substitutions,
                bypasses: acc.bypasses + c.bypasses,
                rebases: acc.rebases + c.rebases,
                device_evals: acc.device_evals + c.device_evals,
                limit_clamps: acc.limit_clamps + c.limit_clamps,
                latency_hits: acc.latency_hits + c.latency_hits,
            });
        let ok = derived == reported.iterations;
        println!(
            "{name}: newton.iterations from events = {derived}, from SolverStats = {} [{}]",
            reported.iterations,
            if ok { "ok" } else { "MISMATCH" }
        );
        if !ok {
            mismatches += 1;
        }
        // SweepPoint-free single runs: also sanity-check the step count.
        let accepted = sink.0.counter_value("tran.steps_accepted");
        println!("{name}: cumulative accepted steps = {accepted}");
    }

    println!("\n{}", sink.1 .0.render());
    let Tee(_, Tee(_, jsonl)) = sink;
    let bytes = jsonl.finish().expect("in-memory writer cannot fail");
    let lines = bytes.iter().filter(|&&b| b == b'\n').count();
    let path = results_dir().join("TRACE_mssim.jsonl");
    match std::fs::write(&path, &bytes) {
        Ok(()) => println!(
            "wrote {} ({lines} {TRACE_SCHEMA} lines, {} bytes)",
            path.display(),
            bytes.len()
        ),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
    if mismatches > 0 {
        eprintln!("trace: {mismatches} counter cross-check(s) failed — failing");
        std::process::exit(1);
    }
    println!("trace: event-derived counters agree with the solver's own statistics");
}

/// Fault-injection campaign over the paper's 3×3 switch-level adder:
/// enumerates the single-fault universe (stuck switches, open/short/
/// drifted resistors, leaky output cap, drooping supply, jittery PWM
/// sources, curated net bridges), simulates every faulty netlist under
/// the convergence-rescue ladder, classifies each settled output against
/// the Eq. 2 analytic value, prints the verdict table (sorted by fault
/// label) and writes the schema-versioned record
/// `results/FAULTS_mssim.json`. Static fault collapsing is on by default
/// — plan-equivalent faults share one transient — and `--no-collapse`
/// forces the full sweep; both paths produce bitwise-identical verdicts
/// and JSON, which CI cross-checks with `cmp` (pass `--no-triage` on
/// both arms of that pair, since triaged rows legitimately skip their
/// transients). Krawczyk triage is also on by default: fault classes
/// whose guaranteed Vout enclosure lands entirely inside (or entirely
/// outside) the Eq. 2 classification bands are pre-classified without a
/// transient, and the run fails unless triage statically resolves at
/// least 20 % of the switch-level universe. `--triage-only` prints the
/// per-class verdict/enclosure tables for both universes and exits
/// without simulating anything. Exits nonzero if any outcome fails the
/// classification gate, so CI catches both solver regressions and
/// campaign bookkeeping drift.
fn faults(tech: &Technology, fast: bool, no_collapse: bool, no_triage: bool, triage_only: bool) {
    use bench::campaign;
    use mssim::telemetry::MemoryRecorder;
    use pwm_perceptron::faults::{
        switch_adder_campaign_observed, switch_adder_triage, weighted_adder_campaign_observed,
        weighted_adder_triage, CampaignConfig, FaultClass,
    };
    use pwmcell::AdderSpec;

    let weights = [7u32, 5, 3];
    let duties = [0.30, 0.50, 0.70];
    let mut config = CampaignConfig {
        collapse: !no_collapse,
        // Triage implies the collapse partition, so a `--no-collapse`
        // full sweep also runs untriaged.
        triage: !no_triage && !no_collapse,
        ..CampaignConfig::default()
    };
    if fast {
        config.periods = 16;
        config.steps_per_period = 60;
        config.avg_periods = 2;
    }

    if triage_only {
        let t0 = Instant::now();
        let switch = switch_adder_triage(tech, AdderSpec::paper_3x3(), &weights, &duties, &config)
            .expect("the switch-level universe must triage");
        let mos = weighted_adder_triage(tech, AdderSpec::paper_3x3(), &weights, &duties, &config)
            .expect("the MOS universe must triage");
        let wall_ns = t0.elapsed().as_nanos();
        triage_table("switch-level", &switch);
        triage_table("transistor-level (MOS)", &mos);
        println!(
            "triage-only: both universes classified statically in {:.2} ms, zero transients run",
            wall_ns as f64 / 1e6
        );
        if switch.stats.triage_ratio() < 0.20 {
            eprintln!(
                "faults: triage resolves only {:.1}% of the switch universe (< 20%) — failing",
                switch.stats.triage_ratio() * 100.0
            );
            std::process::exit(1);
        }
        return;
    }

    println!("\n== Fault-injection campaign — 3x3 switch-level adder, single-fault universe ==");
    let mut rec = MemoryRecorder::new();
    let report = switch_adder_campaign_observed(
        tech,
        AdderSpec::paper_3x3(),
        &weights,
        &duties,
        &config,
        &mut rec,
    )
    .expect("the golden (fault-free) adder must simulate");

    let table: Vec<Vec<String>> = campaign::sorted_outcomes(&report)
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                o.class.tag().to_string(),
                o.static_verdict.map_or("-".into(), |v| v.tag().to_string()),
                o.vout.map_or("-".into(), |v| f(v, 3)),
                o.error_v.map_or("-".into(), |e| f(e, 3)),
                o.rescue_attempts.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Single-fault verdicts vs Eq. 2 ({} faults, analytic {} V, golden {} V)",
                report.outcomes.len(),
                f(report.analytic_vout, 3),
                f(report.golden_vout, 3),
            ),
            &["fault", "class", "static", "Vout", "|err| V", "rescues"],
            &table
        )
    );
    for tag in campaign::CLASS_TAGS {
        println!("  {tag}: {}", report.count(tag));
    }
    if let Some(errs) = report.error_summary() {
        println!(
            "  |error| over settled outputs: mean {} V, max {} V",
            f(errs.mean, 3),
            f(errs.max, 3)
        );
    }
    println!(
        "  rescue ladder: {} rungs burned across the campaign, {} faults classified in {} sweep points",
        report.rescue_attempts(),
        report.outcomes.len(),
        rec.counter_value("sweep.points"),
    );
    if let Some(stats) = &report.collapse {
        println!(
            "  static collapsing: {} faults -> {} classes, {} transients simulated ({} golden-equivalent)",
            stats.universe, stats.classes, stats.simulated, stats.golden
        );
    } else {
        println!("  static collapsing disabled (--no-collapse): full sweep");
    }
    if let Some(t) = &report.triage {
        println!(
            "  static triage: {} masked + {} failed of {} certified without a transient ({:.1}%), {} simulated",
            t.masked,
            t.failed,
            t.universe,
            t.triage_ratio() * 100.0,
            t.simulated
        );
        if t.triage_ratio() < 0.20 {
            eprintln!(
                "faults: triage resolves only {:.1}% of the switch universe (< 20%) — failing",
                t.triage_ratio() * 100.0
            );
            std::process::exit(1);
        }
    } else if !no_triage && !no_collapse {
        eprintln!("faults: triaged campaign recorded no triage statistics — failing");
        std::process::exit(1);
    }
    let partials = report
        .outcomes
        .iter()
        .filter(|o| matches!(o.class, FaultClass::SolverFail { partial: true }))
        .count();
    if partials > 0 {
        println!("  {partials} fault(s) degraded gracefully to partial waveforms");
    }

    let json = campaign::to_json(&report, &config, fast);
    let path = results_dir().join("FAULTS_mssim.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), json.len()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
    let bad = campaign::unclassified(&report);
    if !bad.is_empty() {
        eprintln!(
            "faults: {} unclassified outcome(s): {bad:?} — failing",
            bad.len()
        );
        std::process::exit(1);
    }
    println!("faults: every outcome classified");

    // Same campaign, transistor-level cell: every transient (golden and
    // faulty) runs with MOSFET voltage limiting + device latency on, so
    // this sweep is the proof that the batched limited evaluator survives
    // fault-mutated netlists — shorted FETs, open ladders, bridged gates —
    // and still classifies every outcome instead of wedging the solver.
    println!(
        "\n== Fault-injection campaign — 3x3 transistor-level adder (MOS), limited evaluator =="
    );
    let mut mos_rec = MemoryRecorder::new();
    let mos = weighted_adder_campaign_observed(
        tech,
        AdderSpec::paper_3x3(),
        &weights,
        &duties,
        &config,
        &mut mos_rec,
    )
    .expect("the golden (fault-free) MOS adder must simulate");
    let loud: Vec<Vec<String>> = campaign::sorted_outcomes(&mos)
        .iter()
        .filter(|o| !matches!(o.class, FaultClass::Masked))
        .map(|o| {
            vec![
                o.label.clone(),
                o.class.tag().to_string(),
                o.vout.map_or("-".into(), |v| f(v, 3)),
                o.error_v.map_or("-".into(), |e| f(e, 3)),
                o.rescue_attempts.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Non-masked verdicts vs Eq. 2 ({} of {} faults, analytic {} V, golden {} V)",
                loud.len(),
                mos.outcomes.len(),
                f(mos.analytic_vout, 3),
                f(mos.golden_vout, 3),
            ),
            &["fault", "class", "Vout", "|err| V", "rescues"],
            &loud
        )
    );
    for tag in campaign::CLASS_TAGS {
        println!("  {tag}: {}", mos.count(tag));
    }
    println!(
        "  rescue ladder: {} rungs burned, {} faults classified in {} sweep points",
        mos.rescue_attempts(),
        mos.outcomes.len(),
        mos_rec.counter_value("sweep.points"),
    );
    if let Some(stats) = &mos.collapse {
        println!(
            "  static collapsing: {} faults -> {} classes, {} transients simulated ({} golden-equivalent)",
            stats.universe, stats.classes, stats.simulated, stats.golden
        );
    }
    if let Some(t) = &mos.triage {
        println!(
            "  static triage: {} masked + {} failed of {} certified without a transient ({:.1}%), {} simulated",
            t.masked,
            t.failed,
            t.universe,
            t.triage_ratio() * 100.0,
            t.simulated
        );
    }
    let mos_json = campaign::to_json(&mos, &config, fast);
    let mos_path = results_dir().join("FAULTS_mos_mssim.json");
    match std::fs::write(&mos_path, &mos_json) {
        Ok(()) => println!("wrote {} ({} bytes)", mos_path.display(), mos_json.len()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", mos_path.display()),
    }
    let mos_bad = campaign::unclassified(&mos);
    if !mos_bad.is_empty() {
        eprintln!(
            "faults: {} unclassified MOS outcome(s): {mos_bad:?} — failing",
            mos_bad.len()
        );
        std::process::exit(1);
    }
    println!("faults: every MOS outcome classified");
}

/// Renders one universe's `--triage-only` verdict table: per fault class
/// the static verdict, the guaranteed Vout enclosure and its width, and
/// the Krawczyk contraction factor β (certifiable iff β < 1).
fn triage_table(which: &str, report: &pwm_perceptron::faults::TriageReport) {
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.kind.to_string(),
                r.verdict.tag().to_string(),
                r.enclosure.map_or("-".into(), |(lo, hi)| {
                    format!("[{}, {}]", f(lo, 3), f(hi, 3))
                }),
                r.enclosure.map_or("-".into(), |(lo, hi)| f(hi - lo, 3)),
                r.beta.map_or("-".into(), |b| f(b, 3)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Static triage — {which} ({} faults, analytic {} V)",
                report.rows.len(),
                f(report.analytic_vout, 3),
            ),
            &[
                "fault",
                "kind",
                "static verdict",
                "enclosure V",
                "width V",
                "beta"
            ],
            &table
        )
    );
    println!(
        "  collapse: {} faults -> {} classes; triage: {} masked + {} failed certified ({:.1}%), {} still need transients",
        report.collapse.universe,
        report.collapse.classes,
        report.stats.masked,
        report.stats.failed,
        report.stats.triage_ratio() * 100.0,
        report.stats.simulated
    );
}

/// Load harness for the batched inference engine: serves deterministic
/// uniform and hot-set query streams through tiered [`InferenceEngine`]
/// configurations, prints latency/throughput/cache metrics, merges the
/// `serve` section into `results/BENCH_mssim.json` and gates the
/// acceptance thresholds (≥10× naive circuit throughput, ≥90 % hot-set
/// hit rate, zero classification divergences) so CI can fail on
/// regressions.
fn serve(queries: Option<usize>, fast: bool) {
    use bench::serve as sv;

    let mut config = sv::ServeConfig::default();
    if fast {
        config.queries = 2_000;
    }
    if let Some(q) = queries {
        config.queries = q;
    }
    println!("\n== Serve — batched inference engine load harness ==");
    println!(
        "{} queries/stream, duty grid {} levels, hot set {} @ p={:.2}, seed {:#x}",
        config.queries, config.resolution, config.hot_set, config.hot_prob, config.seed
    );
    let report = sv::run(&config);

    let row = |s: &bench::serve::StreamReport| {
        vec![
            s.stream.to_string(),
            format!("{}", s.queries),
            f(s.p50_ns as f64 / 1e3, 1),
            f(s.p99_ns as f64 / 1e3, 1),
            f(s.qps, 0),
            f(s.hit_rate * 100.0, 1),
            format!(
                "{}/{}/{}",
                s.tier_analytic, s.tier_switch_level, s.tier_circuit
            ),
        ]
    };
    let table = vec![
        row(&report.uniform),
        row(&report.switch),
        row(&report.hotset),
    ];
    let header = [
        "stream",
        "queries",
        "p50 µs",
        "p99 µs",
        "qps",
        "hit %",
        "evals a/s/c",
    ];
    println!(
        "{}",
        render_table("Serve — per-stream metrics", &header, &table)
    );
    println!(
        "naive per-query circuit baseline: {:.1} qps — hot-set speedup {:.1}x, divergences {}",
        report.naive_qps, report.speedup_vs_naive, report.divergences
    );

    let path = results_dir().join("BENCH_mssim.json");
    let existing = std::fs::read_to_string(&path).ok();
    let merged = sv::merge_into_bench_json(existing.as_deref(), &report, &config);
    match std::fs::write(&path, &merged) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), merged.len()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }

    let mut failures = 0usize;
    if report.speedup_vs_naive < 10.0 {
        eprintln!(
            "serve: hot-set throughput is only {:.1}x the naive circuit path (< 10x) — failing",
            report.speedup_vs_naive
        );
        failures += 1;
    }
    if report.hotset.hit_rate < 0.90 {
        eprintln!(
            "serve: hot-set cache hit rate {:.1}% < 90% — failing",
            report.hotset.hit_rate * 100.0
        );
        failures += 1;
    }
    if report.divergences > 0 {
        eprintln!(
            "serve: {} classification divergence(s) vs unbatched evaluation — failing",
            report.divergences
        );
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("serve: all acceptance gates passed");
}

/// Deterministic fault-injection harness for the resilient inference
/// engine: serves a baseline (1 % faults) and a storm (60 % faults,
/// breaker-tripping) stream through a chaos-wrapped switch tier on a
/// manual clock, cross-checks every answer against a chaos-free
/// reference, merges the `chaos` section into `results/BENCH_mssim.json`
/// and fails on any acceptance-gate violation (availability < 99.9 %,
/// panics, out-of-bound degraded answers, classification divergences).
fn chaos(queries: Option<usize>, fast: bool) {
    use bench::chaos as ch;

    let mut config = ch::ChaosHarnessConfig::default();
    if fast {
        config.queries = 500;
    }
    if let Some(q) = queries {
        config.queries = q;
    }
    println!("\n== Chaos — resilience harness for the inference engine ==");
    println!(
        "{} queries/stream, duty grid {} levels, deadline {} ms, spike {} ms, seed {:#x}",
        config.queries,
        config.resolution,
        config.deadline_ns / 1_000_000,
        config.spike_ns / 1_000_000,
        config.seed
    );

    // The harness deliberately poisons cache shards by panicking inside
    // a catch_unwind while holding the shard lock. Silence exactly those
    // panics so the run's output stays readable; everything else still
    // reports through the previous hook.
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("chaos-poison"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("chaos-poison"))
            })
            .unwrap_or(false);
        if !injected {
            previous(info);
        }
    }));
    let report = ch::run(&config);
    let _ = std::panic::take_hook(); // restore default reporting

    let row = |s: &bench::chaos::ChaosStreamReport| {
        vec![
            s.stream.to_string(),
            f(s.mix.fail * 100.0, 1),
            format!("{:.2}", s.availability * 100.0),
            format!("{:.2}", s.batch_availability * 100.0),
            f(s.degraded_rate * 100.0, 1),
            f(s.max_degraded_error_v * 1e3, 1),
            format!("{}", s.retries),
            format!("{}", s.breaker_trips),
            format!("{}", s.deadline_exceeded),
            format!("{}/{}", s.lock_poisoned, s.poison_injected),
        ]
    };
    let table = vec![row(&report.baseline), row(&report.storm)];
    let header = [
        "stream",
        "fault %",
        "avail %",
        "batch %",
        "degr %",
        "max err mV",
        "retries",
        "trips",
        "deadline",
        "poison r/i",
    ];
    println!(
        "{}",
        render_table(
            "Chaos — availability under injected faults",
            &header,
            &table
        )
    );
    println!(
        "injected per stream (fail/nan/spike): baseline {}/{}/{}, storm {}/{}/{}",
        report.baseline.injected_fail,
        report.baseline.injected_nan,
        report.baseline.injected_spike,
        report.storm.injected_fail,
        report.storm.injected_nan,
        report.storm.injected_spike,
    );

    let path = results_dir().join("BENCH_mssim.json");
    let existing = std::fs::read_to_string(&path).ok();
    let merged = ch::merge_into_bench_json(existing.as_deref(), &report, &config);
    match std::fs::write(&path, &merged) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), merged.len()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }

    let violations = report.violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("chaos: {v} — failing");
        }
        std::process::exit(1);
    }
    println!("chaos: all acceptance gates passed");
}

fn scaling(tech: &Technology) {
    let shapes = [
        (3usize, 3u32),
        (5, 3),
        (8, 3),
        (16, 3),
        (3, 5),
        (3, 8),
        (8, 8),
    ];
    let rows = ex::adder_scaling(tech, &shapes);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.inputs, r.bits),
                format!("{}", r.transistors),
                f(r.lsb_voltage * 1e3, 2),
                f(r.ripple * 1e3, 2),
                f(r.tau * 1e9, 1),
            ]
        })
        .collect();
    let header = ["k x n", "transistors", "LSB mV", "ripple mV", "tau ns"];
    println!(
        "{}",
        render_table("A9 — architecture scaling", &header, &table)
    );
    write_csv(&results_dir().join("scaling.csv"), &header, &table);
}
