//! Solver hot-path benchmark: compiled stamp plan vs the naive reference
//! assembler, wall-clock timed with `std::time::Instant`.
//!
//! Unlike the Criterion suite in `crates/mssim/benches/hot_path.rs` (which
//! hand-rolls its circuits to avoid a dev-dependency cycle), this harness
//! runs the *shipped* `pwmcell` circuits — the Fig. 2 inverter, the
//! switch-level and transistor-level 3×3 weighted adders, and a generated
//! 8×8 adder array — and before timing anything asserts that the optimized
//! path reproduces the reference waveforms within 1e-12 at every probe.
//! The `repro bench` experiment renders these rows and writes
//! `results/BENCH_mssim.json` so CI captures the perf trajectory.

use std::time::Instant;

use mssim::analysis::dc_sweep_reference;
use mssim::prelude::*;
use mssim::telemetry::MemoryRecorder;
use pwmcell::{AdderSpec, Inverter, SwitchAdder, Technology, WeightedAdder};

/// Largest waveform deviation the *exact* equivalence gate tolerates.
/// The solver is designed for *bitwise* agreement; 1e-12 is the issue's
/// contract.
pub const EQUIVALENCE_TOL: f64 = 1e-12;

/// Largest waveform deviation the *limited* arm tolerates. Voltage
/// limiting and device latency relinearize MOSFETs at slightly stale
/// operating points, so the converged waveforms agree with the reference
/// only to solver tolerance, not bitwise.
pub const EQUIVALENCE_TOL_LIMITED: f64 = 1e-4;

/// One benchmark fixture's measurement.
#[derive(Debug, Clone)]
pub struct HotPathRow {
    /// Fixture name (stable identifier, used as the JSON key).
    pub name: &'static str,
    /// Work items per run: transient steps or DC sweep points.
    pub items: usize,
    /// What one item is ("step" or "point").
    pub unit: &'static str,
    /// Best (minimum) wall-clock of the naive reference path, nanoseconds.
    pub reference_best_ns: f64,
    /// Best (minimum) wall-clock of the compiled-plan path, nanoseconds.
    pub plan_best_ns: f64,
    /// `reference_best_ns / plan_best_ns`.
    pub speedup: f64,
    /// Plan-path cost per item, nanoseconds.
    pub plan_ns_per_item: f64,
    /// Plan-path throughput, items per second.
    pub plan_items_per_s: f64,
    /// Largest |plan − reference| over all probes, volts — exact device
    /// evaluation on the plan arm; gated bitwise (`== 0`) in practice.
    pub max_abs_diff: f64,
    /// Largest |limited plan − reference| over all probes, volts. The
    /// timed plan arm runs with voltage limiting + device latency on, so
    /// this is the deviation the reported speedup actually ships with.
    pub limited_max_abs_diff: f64,
    /// MOSFET model evaluations performed by the limited plan arm.
    pub device_evals: u64,
    /// `fetlim`/`limvds` clamps applied by the limited plan arm.
    pub limit_clamps: u64,
    /// Device-latency reuse hits (evaluations skipped) on the limited arm.
    pub latency_hits: u64,
}

/// Runs the full fixture set. `repeats` is the number of timed runs per
/// path per fixture (the minimum is reported); `fast` shortens the
/// heavier transistor-level transients without touching the headline
/// switch-level 3×3 adder, whose ≥3× speedup is an acceptance gate.
pub fn hot_path(tech: &Technology, repeats: usize, fast: bool) -> Vec<HotPathRow> {
    let dt = 10e-12;
    let long = 2000;
    let short = if fast { 500 } else { 2000 };
    vec![
        tran_inverter(tech, dt, long, repeats),
        tran_adder3x3_switch(tech, dt, long, repeats),
        tran_adder3x3_mos(tech, dt, short, repeats),
        tran_adder8x8_switch(tech, dt, short, repeats),
        dcsweep_inverter_vtc(tech, repeats),
    ]
}

/// Abstract-interpreter statistics recorded alongside the timing rows:
/// how long the interval analyzer takes on the campaign's 3×3 adder
/// fixture, how far static fault collapsing shrinks its single-fault
/// universe, and how much of that universe the Krawczyk triage tier
/// resolves without a single transient.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeStats {
    /// Wall-clock of one widened [`mssim::analyze_circuit`] pass over the
    /// 3×3 switch-level adder, nanoseconds.
    pub analyze_wall_ns: f64,
    /// Faults in the enumerated single-fault universe.
    pub universe: usize,
    /// Class representatives that still need their own transient.
    pub simulated: usize,
    /// Wall-clock of one full triage pass (collapse + enclosure solve +
    /// verdict classification) over the same universe, nanoseconds.
    pub triage_wall_ns: f64,
    /// Faults statically resolved (`GuaranteedMasked` + `GuaranteedFail`)
    /// by the triage tier.
    pub triage_resolved: usize,
}

impl AnalyzeStats {
    /// `simulated / universe` — the fraction of the universe a collapsed
    /// campaign actually simulates (1.0 means collapsing saved nothing).
    pub fn collapse_ratio(&self) -> f64 {
        self.simulated as f64 / self.universe.max(1) as f64
    }

    /// `triage_resolved / universe` — the fraction of the universe the
    /// static triage tier settles without simulating (0.0 means triage
    /// saved nothing). The `repro faults` gate requires ≥ 0.20 on the
    /// switch-level universe.
    pub fn triage_ratio(&self) -> f64 {
        self.triage_resolved as f64 / self.universe.max(1) as f64
    }
}

/// Measures [`AnalyzeStats`] on the campaign's paper-row fixture: the
/// 3×3 switch-level adder with weights `[7, 5, 3]` under ±5% component
/// tolerance and a 0.9–1.0 supply window.
pub fn analyze_stats(tech: &Technology) -> AnalyzeStats {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = SwitchAdder::build(
        &mut ckt,
        tech,
        "add",
        vdd,
        &[7, 5, 3],
        AdderSpec::paper_3x3(),
    );
    for (i, d) in [0.30, 0.50, 0.70].into_iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), d),
        );
    }
    let ranges = Ranges::default()
        .with_tolerance(0.05)
        .with_supply_scale(0.9, 1.0);
    let t0 = Instant::now();
    let report = analyze_circuit(&ckt, &ranges);
    let analyze_wall_ns = t0.elapsed().as_nanos() as f64;
    assert!(
        !report.has_denials(),
        "the shipped 3x3 adder must analyze deny-clean:\n{report}"
    );
    let universe = pwmcell::faults::switch_adder_universe(
        &ckt,
        &adder,
        &mssim::faults::UniverseConfig::default(),
    );
    let collapse = collapse_faults(&ckt, &universe);
    let triage_config = pwm_perceptron::faults::CampaignConfig {
        triage: true,
        ..Default::default()
    };
    let t1 = Instant::now();
    let triage = pwm_perceptron::faults::switch_adder_triage(
        tech,
        AdderSpec::paper_3x3(),
        &[7, 5, 3],
        &[0.30, 0.50, 0.70],
        &triage_config,
    )
    .expect("the shipped 3x3 adder must triage");
    let triage_wall_ns = t1.elapsed().as_nanos() as f64;
    AnalyzeStats {
        analyze_wall_ns,
        universe: universe.len(),
        simulated: collapse.n_simulated,
        triage_wall_ns,
        triage_resolved: triage.stats.masked + triage.stats.failed,
    }
}

/// Serializes rows as the `mssim-bench-v1` JSON document.
/// `telemetry_overhead` is the [`telemetry_overhead`] ratio measured for
/// the run (1.0 means the instrumented entry point is free when no
/// observer is attached); `analyze` carries the abstract-interpreter
/// wall-time and fault-collapse ratio for the same trajectory record.
pub fn to_json(
    rows: &[HotPathRow],
    repeats: usize,
    fast: bool,
    telemetry_overhead: f64,
    analyze: &AnalyzeStats,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mssim-bench-v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if fast { "fast" } else { "full" }
    ));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"equivalence_tol\": {EQUIVALENCE_TOL:e},\n"));
    out.push_str(&format!(
        "  \"equivalence_tol_limited\": {EQUIVALENCE_TOL_LIMITED:e},\n"
    ));
    out.push_str(&format!(
        "  \"telemetry_overhead\": {telemetry_overhead:.4},\n"
    ));
    out.push_str(&format!(
        "  \"analyze_wall_ns\": {:.0},\n",
        analyze.analyze_wall_ns
    ));
    out.push_str(&format!("  \"collapse_universe\": {},\n", analyze.universe));
    out.push_str(&format!(
        "  \"collapse_simulated\": {},\n",
        analyze.simulated
    ));
    out.push_str(&format!(
        "  \"collapse_ratio\": {:.4},\n",
        analyze.collapse_ratio()
    ));
    out.push_str(&format!(
        "  \"triage_wall_ns\": {:.0},\n",
        analyze.triage_wall_ns
    ));
    out.push_str(&format!(
        "  \"triage_resolved\": {},\n",
        analyze.triage_resolved
    ));
    out.push_str(&format!(
        "  \"triage_ratio\": {:.4},\n",
        analyze.triage_ratio()
    ));
    out.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"items\": {},\n", r.items));
        out.push_str(&format!("      \"unit\": \"{}\",\n", r.unit));
        out.push_str(&format!(
            "      \"reference_best_ns\": {:.0},\n",
            r.reference_best_ns
        ));
        out.push_str(&format!("      \"plan_best_ns\": {:.0},\n", r.plan_best_ns));
        out.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup));
        out.push_str(&format!(
            "      \"plan_ns_per_item\": {:.1},\n",
            r.plan_ns_per_item
        ));
        out.push_str(&format!(
            "      \"plan_items_per_s\": {:.0},\n",
            r.plan_items_per_s
        ));
        out.push_str(&format!("      \"max_abs_diff\": {:e},\n", r.max_abs_diff));
        out.push_str(&format!(
            "      \"limited_max_abs_diff\": {:e},\n",
            r.limited_max_abs_diff
        ));
        out.push_str(&format!("      \"device_evals\": {},\n", r.device_evals));
        out.push_str(&format!("      \"limit_clamps\": {},\n", r.limit_clamps));
        out.push_str(&format!("      \"latency_hits\": {}\n", r.latency_hits));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

// ------------------------------------------------------------- fixtures

/// Fig. 2 transcoding inverter at the paper's operating point.
fn tran_inverter(tech: &Technology, dt: f64, steps: usize, repeats: usize) -> HotPathRow {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    ckt.vsource(
        "VIN",
        inp,
        Circuit::GND,
        Waveform::pwm(tech.vdd.value(), tech.frequency.value(), 0.7),
    );
    let inv = Inverter::build(
        &mut ckt,
        tech,
        "inv",
        inp,
        vdd,
        Some(tech.rout),
        tech.cout_inverter,
    );
    let probes = vec![inv.output, inp, vdd];
    bench_transient("tran_inverter", &ckt, &probes, dt, steps, repeats)
}

/// Switch-level 3×3 weighted adder — the acceptance-gated headline: the
/// Jacobian is piecewise constant between PWM edges, so the solution and
/// factorization caches carry nearly every step.
fn tran_adder3x3_switch(tech: &Technology, dt: f64, steps: usize, repeats: usize) -> HotPathRow {
    let (ckt, probes) = switch_adder_circuit(
        tech,
        AdderSpec::paper_3x3(),
        &[7, 7, 7],
        &[0.70, 0.80, 0.90],
    );
    bench_transient("tran_adder3x3", &ckt, &probes, dt, steps, repeats)
}

/// Transistor-level 3×3 weighted adder (Fig. 3): MOSFET AND cells keep
/// Newton iterating, so this measures the plan under nonlinear load.
fn tran_adder3x3_mos(tech: &Technology, dt: f64, steps: usize, repeats: usize) -> HotPathRow {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = WeightedAdder::build(
        &mut ckt,
        tech,
        "add",
        vdd,
        &[7, 7, 7],
        AdderSpec::paper_3x3(),
    );
    for (i, &d) in [0.70, 0.80, 0.90].iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), d),
        );
    }
    let mut probes = vec![adder.output, vdd];
    probes.extend_from_slice(&adder.inputs);
    bench_transient("tran_adder3x3_mos", &ckt, &probes, dt, steps, repeats)
}

/// Generated 8×8 switch-level adder array — the scaling direction the
/// ROADMAP cares about (larger perceptron arrays than the paper's 3×3).
fn tran_adder8x8_switch(tech: &Technology, dt: f64, steps: usize, repeats: usize) -> HotPathRow {
    let duties = [0.05, 0.20, 0.35, 0.50, 0.60, 0.75, 0.85, 0.95];
    let (ckt, probes) = switch_adder_circuit(
        tech,
        AdderSpec::new(8, 8),
        &[255, 170, 129, 100, 77, 64, 31, 9],
        &duties,
    );
    bench_transient("tran_adder8x8", &ckt, &probes, dt, steps, repeats)
}

/// Inverter voltage-transfer-characteristic DC sweep, 101 points.
fn dcsweep_inverter_vtc(tech: &Technology, repeats: usize) -> HotPathRow {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let vg = ckt.vsource("VG", g, Circuit::GND, Waveform::dc(0.0));
    ckt.mosfet("MP", out, g, vdd, tech.pmos);
    ckt.mosfet("MN", out, g, Circuit::GND, tech.nmos);
    ckt.resistor("RL", out, Circuit::GND, 10e6);
    let points = mssim::sweep::linspace(0.0, tech.vdd.value(), 101);

    let plan = Session::new(&ckt)
        .dc_sweep(vg, &points)
        .expect("plan dc sweep converges");
    let reference = dc_sweep_reference(ckt.clone(), vg, &points).expect("reference dc sweep");
    let sweep_diff = |p: &DcSweepResult| {
        p.transfer(out)
            .iter()
            .zip(reference.transfer(out))
            .map(|(&(_, a), (_, b))| (a - b).abs())
            .fold(0.0f64, f64::max)
    };
    let max_abs_diff = sweep_diff(&plan);
    assert!(
        max_abs_diff <= EQUIVALENCE_TOL,
        "dcsweep_inverter_vtc: plan deviates from reference by {max_abs_diff:e}"
    );

    let mut rec = MemoryRecorder::new();
    let limited = Session::new(&ckt)
        .with_device_limiting(true)
        .observe(&mut rec)
        .dc_sweep(vg, &points)
        .expect("limited dc sweep converges");
    let limited_max_abs_diff = sweep_diff(&limited);
    assert!(
        limited_max_abs_diff <= EQUIVALENCE_TOL_LIMITED,
        "dcsweep_inverter_vtc: limited plan deviates from reference by {limited_max_abs_diff:e}"
    );

    let (plan_best_ns, reference_best_ns) = best_ns_interleaved(
        repeats,
        || {
            Session::new(&ckt)
                .with_device_limiting(true)
                .dc_sweep(vg, &points)
                .expect("limited dc sweep converges")
        },
        || dc_sweep_reference(ckt.clone(), vg, &points).expect("reference dc sweep"),
    );
    let mut r = row(
        "dcsweep_inverter_vtc",
        points.len(),
        "point",
        reference_best_ns,
        plan_best_ns,
        max_abs_diff,
    );
    r.limited_max_abs_diff = limited_max_abs_diff;
    r.device_evals = rec.counter_value("newton.device_evals");
    r.limit_clamps = rec.counter_value("newton.limit_clamps");
    r.latency_hits = rec.counter_value("newton.latency_hits");
    r
}

/// Measures what routing the headline 3×3 switch-level adder transient
/// through [`Session`] *without an observer* costs relative to the
/// pre-`Session` entry point (`Transient::run`, now a deprecated wrapper).
///
/// The two arms run interleaved — legacy then `Session`, `repeats` times —
/// so clock drift and cache warmth hit both equally, and the **median
/// per-pair ratio** is returned: 1.0 means disabled telemetry is free.
/// The `repro bench` gate fails the build above 1.02 (2 % overhead).
pub fn telemetry_overhead(tech: &Technology, repeats: usize) -> f64 {
    let (ckt, _) = switch_adder_circuit(
        tech,
        AdderSpec::paper_3x3(),
        &[7, 7, 7],
        &[0.70, 0.80, 0.90],
    );
    let dt = 10e-12;
    let steps = 2000usize;
    let tran = Transient::new(dt, steps as f64 * dt)
        .use_initial_conditions()
        .record_every(16);
    // One warm-up run so neither arm pays first-touch allocation costs.
    std::hint::black_box(
        Session::new(&ckt)
            .transient(&tran)
            .expect("transient converges"),
    );
    let mut ratios: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            #[allow(deprecated)]
            let legacy = tran.run(&ckt).expect("legacy transient converges");
            let legacy_ns = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(legacy);
            let t1 = Instant::now();
            let session = Session::new(&ckt)
                .transient(&tran)
                .expect("session transient converges");
            let session_ns = t1.elapsed().as_nanos() as f64;
            std::hint::black_box(session);
            session_ns / legacy_ns.max(1.0)
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    ratios[ratios.len() / 2]
}

// -------------------------------------------------------------- helpers

/// Builds a PWM-driven [`SwitchAdder`] at technology `tech` and returns
/// it with its probe set (output, supply, every input). Shared with the
/// `repro trace` experiment so the trace replays exactly the benchmarked
/// fixtures.
pub fn switch_adder_circuit(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = SwitchAdder::build(&mut ckt, tech, "add", vdd, weights, spec);
    for (i, &d) in duties.iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), tech.frequency.value(), d),
        );
    }
    let mut probes = vec![adder.output, vdd];
    probes.extend_from_slice(&adder.inputs);
    (ckt, probes)
}

/// Asserts plan/reference waveform agreement at every probe, then times
/// both paths and reports the best-of-repeats times.
fn bench_transient(
    name: &'static str,
    ckt: &Circuit,
    probes: &[NodeId],
    dt: f64,
    steps: usize,
    repeats: usize,
) -> HotPathRow {
    let tran = |reference: bool| {
        Transient::new(dt, steps as f64 * dt)
            .use_initial_conditions()
            .record_every(16)
            .with_reference_solver(reference)
    };
    let plan = Session::new(ckt)
        .transient(&tran(false))
        .expect("plan transient converges");
    let reference = Session::new(ckt)
        .transient(&tran(true))
        .expect("reference transient converges");
    let max_abs_diff = waveform_diff(&plan, &reference, probes);
    assert!(
        max_abs_diff <= EQUIVALENCE_TOL,
        "{name}: plan deviates from reference by {max_abs_diff:e}"
    );

    // Limited arm: voltage limiting + device latency on. This is the
    // configuration the timed plan arm ships with, so its (looser)
    // deviation and its device counters are recorded per entry.
    let mut rec = MemoryRecorder::new();
    let limited = Session::new(ckt)
        .with_device_limiting(true)
        .observe(&mut rec)
        .transient(&tran(false))
        .expect("limited transient converges");
    let limited_max_abs_diff = waveform_diff(&limited, &reference, probes);
    assert!(
        limited_max_abs_diff <= EQUIVALENCE_TOL_LIMITED,
        "{name}: limited plan deviates from reference by {limited_max_abs_diff:e}"
    );

    let (plan_best_ns, reference_best_ns) = best_ns_interleaved(
        repeats,
        || {
            Session::new(ckt)
                .with_device_limiting(true)
                .transient(&tran(false))
                .expect("limited transient converges")
        },
        || {
            Session::new(ckt)
                .transient(&tran(true))
                .expect("reference transient converges")
        },
    );
    let mut r = row(
        name,
        steps,
        "step",
        reference_best_ns,
        plan_best_ns,
        max_abs_diff,
    );
    r.limited_max_abs_diff = limited_max_abs_diff;
    r.device_evals = rec.counter_value("newton.device_evals");
    r.limit_clamps = rec.counter_value("newton.limit_clamps");
    r.latency_hits = rec.counter_value("newton.latency_hits");
    r
}

/// Largest per-probe waveform deviation between two transient results.
fn waveform_diff(a: &TransientResult, b: &TransientResult, probes: &[NodeId]) -> f64 {
    let mut max = 0.0f64;
    for &node in probes {
        let wa = a.voltage(node);
        let wb = b.voltage(node);
        for (x, y) in wa.values().iter().zip(wb.values()) {
            max = max.max((x - y).abs());
        }
    }
    max
}

fn row(
    name: &'static str,
    items: usize,
    unit: &'static str,
    reference_best_ns: f64,
    plan_best_ns: f64,
    max_abs_diff: f64,
) -> HotPathRow {
    HotPathRow {
        name,
        items,
        unit,
        reference_best_ns,
        plan_best_ns,
        speedup: reference_best_ns / plan_best_ns,
        plan_ns_per_item: plan_best_ns / items as f64,
        plan_items_per_s: items as f64 / (plan_best_ns * 1e-9),
        max_abs_diff,
        limited_max_abs_diff: 0.0,
        device_evals: 0,
        limit_clamps: 0,
        latency_hits: 0,
    }
}

/// Median wall-clock over `repeats` runs of `f`, in nanoseconds.
/// One timed run of `f`, in nanoseconds.
fn time_ns<R>(f: impl FnOnce() -> R) -> f64 {
    let t0 = Instant::now();
    let r = f();
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(r);
    ns
}

/// Best-of-`repeats` wall clock for both arms, `(plan, reference)`.
///
/// Two noise defenses for a loaded single-core host:
///
/// * **Minimum, not median** — scheduler noise is strictly additive, so
///   the fastest observed run is the least-biased estimator of the true
///   cost and keeps the reported speedup ratio stable across invocations.
/// * **Interleaved arms** — the samples of each arm are spread across
///   the whole measurement window instead of packed back-to-back, so a
///   sustained background burst cannot inflate every sample of one arm
///   while leaving the other untouched (which would skew the ratio).
fn best_ns_interleaved<P, Q>(
    repeats: usize,
    mut plan: impl FnMut() -> P,
    mut reference: impl FnMut() -> Q,
) -> (f64, f64) {
    let mut plan_best = f64::INFINITY;
    let mut reference_best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        plan_best = plan_best.min(time_ns(&mut plan));
        reference_best = reference_best.min(time_ns(&mut reference));
    }
    (plan_best, reference_best)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cut-down run of the real fixtures: equivalence assertions fire
    /// inside, so this test doubles as a smoke check of the harness.
    #[test]
    fn rows_are_consistent_and_json_parses_shape() {
        let tech = Technology::umc65_like();
        let r = tran_inverter(&tech, 10e-12, 64, 1);
        assert!(r.max_abs_diff <= EQUIVALENCE_TOL);
        assert!(r.plan_best_ns > 0.0 && r.reference_best_ns > 0.0);
        assert!((r.speedup - r.reference_best_ns / r.plan_best_ns).abs() < 1e-9);
        let stats = AnalyzeStats {
            analyze_wall_ns: 1.0e6,
            universe: 49,
            simulated: 47,
            triage_wall_ns: 2.0e6,
            triage_resolved: 18,
        };
        let json = to_json(&[r], 1, true, 1.0, &stats);
        assert!(json.contains("\"schema\": \"mssim-bench-v1\""));
        assert!(json.contains("\"name\": \"tran_inverter\""));
        assert!(json.contains("\"telemetry_overhead\": 1.0000"));
        assert!(json.contains("\"collapse_ratio\": 0.9592"));
        assert!(json.contains("\"analyze_wall_ns\": 1000000"));
        assert!(json.contains("\"triage_wall_ns\": 2000000"));
        assert!(json.contains("\"triage_ratio\": 0.3673"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// The recorded analyzer statistics come from the real fixture: the
    /// widened pass is deny-clean (asserted inside), collapsing the
    /// 49-fault universe must save transients, and the triage tier must
    /// clear the ≥ 20 % acceptance floor on the switch-level universe.
    #[test]
    fn analyze_stats_measures_the_campaign_fixture() {
        let stats = analyze_stats(&Technology::umc65_like());
        assert!(stats.analyze_wall_ns > 0.0);
        assert!(stats.simulated < stats.universe);
        assert!(stats.collapse_ratio() < 1.0);
        assert!(stats.triage_wall_ns > 0.0);
        assert!(
            stats.triage_ratio() >= 0.20,
            "triage must statically resolve >= 20% of the switch universe, got {:.4}",
            stats.triage_ratio()
        );
    }
}
