//! `repro serve` — load harness for the batched inference engine.
//!
//! Generates deterministic synthetic query streams (uniform and hot-set
//! skewed), serves them through [`InferenceEngine`] configurations at
//! different tiers, and reports latency percentiles, sustained
//! inferences/sec, cache hit rate and a naive-baseline speedup. The
//! numbers land in the `serve` section of `BENCH_mssim.json`, gated by
//! `bench_compare` in CI.
//!
//! Everything is seeded: the same [`ServeConfig`] produces the same query
//! stream, the same cache misses and the same tier counts on every run —
//! only the wall-clock figures move.

use std::time::Instant;

use pwm_perceptron::prelude::*;
use pwmcell::{SimQuality, Technology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mssim::units::{Farads, Hertz};

/// Load-harness knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Queries per stream.
    pub queries: usize,
    /// Stream RNG seed.
    pub seed: u64,
    /// Memo-cache duty resolution (levels); streams draw duties on this
    /// grid, so cache quantization is exact.
    pub resolution: u32,
    /// Distinct (duty-vector, weights) pairs in the hot set.
    pub hot_set: usize,
    /// Probability a hot-set query is drawn from the hot set.
    pub hot_prob: f64,
    /// Queries sampled for the naive per-query circuit baseline.
    pub naive_sample: usize,
    /// Queries cross-checked against unbatched evaluation.
    pub divergence_sample: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queries: 10_000,
            seed: 0x5EED,
            resolution: 16,
            hot_set: 32,
            hot_prob: 0.95,
            naive_sample: 8,
            divergence_sample: 20,
        }
    }
}

/// Serving metrics for one query stream.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Stream name (`uniform` or `hotset`).
    pub stream: &'static str,
    /// Queries served.
    pub queries: usize,
    /// Median single-query latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile single-query latency, nanoseconds.
    pub p99_ns: u64,
    /// Sustained inferences/sec of one batched pass over the stream
    /// (fresh cache — misses pay real evaluations).
    pub qps: f64,
    /// Cache hit rate over the single-query pass.
    pub hit_rate: f64,
    /// Analytic-tier evaluations.
    pub tier_analytic: u64,
    /// Switch-level-tier evaluations.
    pub tier_switch_level: u64,
    /// Circuit-tier evaluations.
    pub tier_circuit: u64,
}

/// Full `repro serve` result.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Analytic-policy stream over uniform random queries.
    pub uniform: StreamReport,
    /// Switch-level-policy stream over the same uniform queries.
    pub switch: StreamReport,
    /// Circuit-policy stream over hot-set skewed queries.
    pub hotset: StreamReport,
    /// Naive per-query [`CircuitEvaluator`] throughput (no batching, no
    /// cache) extrapolated from a sample.
    pub naive_qps: f64,
    /// `hotset.qps / naive_qps` — the amortization + memoization win.
    pub speedup_vs_naive: f64,
    /// Classification disagreements between the engine and unbatched
    /// evaluation over the cross-check sample.
    pub divergences: usize,
}

/// The serving technology: the paper's device stack at 50 MHz with small
/// output capacitors, so one circuit-tier transient settles in
/// milliseconds instead of seconds (same trade the unit-test fixtures
/// make).
pub fn serve_tech() -> Technology {
    let mut t = Technology::umc65_like();
    t.cout_inverter = Farads(100e-15);
    t.cout_adder = Farads(500e-15);
    t.frequency = Hertz(50e6);
    t
}

/// The `p`-quantile (0..=1) of raw latency samples, nanoseconds.
/// An empty sample set has no order statistics; it reports 0 rather
/// than panicking so degenerate streams (e.g. a chaos run whose every
/// query was shed) still render a report.
pub fn percentile_ns(samples: &mut [u64], p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "quantile must be in 0..=1");
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Weight-vector pool the streams draw from (the paper's Table II rows).
fn weight_pool() -> Vec<WeightVector> {
    [[7u32, 7, 7], [1, 2, 4], [7, 3, 4]]
        .iter()
        .map(|w| WeightVector::new(w.to_vec(), 3).expect("pool weights are valid"))
        .collect()
}

fn grid_duty(rng: &mut StdRng, resolution: u32) -> DutyCycle {
    let idx = rng.gen_range(0..resolution);
    DutyCycle::new(idx as f64 / (resolution - 1) as f64)
}

fn random_query(rng: &mut StdRng, resolution: u32, pool: &[WeightVector]) -> Query {
    let duties: Vec<DutyCycle> = (0..3).map(|_| grid_duty(rng, resolution)).collect();
    let weights = pool[rng.gen_range(0..pool.len())].clone();
    Query::new(duties, weights).expect("pool dimensions match")
}

/// Uniform random queries on the duty grid.
pub fn uniform_stream(config: &ServeConfig) -> Vec<Query> {
    let pool = weight_pool();
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.queries)
        .map(|_| random_query(&mut rng, config.resolution, &pool))
        .collect()
}

/// Hot-set skewed queries: with probability [`ServeConfig::hot_prob`] a
/// query repeats one of [`ServeConfig::hot_set`] fixed pairs.
pub fn hotset_stream(config: &ServeConfig) -> Vec<Query> {
    let pool = weight_pool();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9E37_79B9);
    let hot: Vec<Query> = (0..config.hot_set)
        .map(|_| random_query(&mut rng, config.resolution, &pool))
        .collect();
    (0..config.queries)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < config.hot_prob {
                hot[rng.gen_range(0..hot.len())].clone()
            } else {
                random_query(&mut rng, config.resolution, &pool)
            }
        })
        .collect()
}

fn engine(config: &ServeConfig, policy: TierPolicy) -> InferenceEngine {
    let tech = serve_tech();
    InferenceEngine::new(tech.vdd)
        .with_switch_tier(SwitchLevelEvaluator::new(tech.clone()))
        .with_circuit_tier(CircuitEvaluator::new(tech, SimQuality::fast()))
        .with_policy(policy)
        .with_cache(config.resolution, 1 << 16)
}

/// Serves `stream` twice on fresh engines: a single-query pass for
/// latency percentiles and hit rate, then a batched pass for sustained
/// throughput.
fn serve_stream(
    name: &'static str,
    stream: &[Query],
    config: &ServeConfig,
    policy: TierPolicy,
) -> StreamReport {
    let single = engine(config, policy);
    let mut latencies: Vec<u64> = Vec::with_capacity(stream.len());
    for q in stream {
        let t0 = Instant::now();
        single.evaluate(q).expect("stream queries are valid");
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    let report = single.report();

    let batched = engine(config, policy);
    let t0 = Instant::now();
    let out = batched.evaluate_batch(stream);
    let wall = t0.elapsed().as_secs_f64();
    assert!(out.iter().all(Result::is_ok), "batched pass must succeed");

    StreamReport {
        stream: name,
        queries: stream.len(),
        p50_ns: percentile_ns(&mut latencies, 0.50),
        p99_ns: percentile_ns(&mut latencies, 0.99),
        qps: stream.len() as f64 / wall.max(1e-9),
        hit_rate: report.cache.hit_rate(),
        tier_analytic: report.evals(Tier::Analytic),
        tier_switch_level: report.evals(Tier::SwitchLevel),
        tier_circuit: report.evals(Tier::Circuit),
    }
}

/// Runs the full load harness.
pub fn run(config: &ServeConfig) -> ServeReport {
    let uniform = uniform_stream(config);
    let hotset = hotset_stream(config);

    let uniform_report = serve_stream("uniform", &uniform, config, TierPolicy::analytic());
    let switch_report = serve_stream("switch", &uniform, config, TierPolicy::switch_level());
    let hotset_report = serve_stream("hotset", &hotset, config, TierPolicy::circuit());

    // Naive baseline: per-query CircuitEvaluator::vout — a fresh netlist
    // and transient per call, no cache, no batching.
    let tech = serve_tech();
    let naive = CircuitEvaluator::new(tech, SimQuality::fast());
    let sample: Vec<&Query> = hotset.iter().take(config.naive_sample.max(1)).collect();
    let t0 = Instant::now();
    for q in &sample {
        naive
            .vout(q.duties(), q.weights())
            .expect("stream queries are valid");
    }
    let naive_qps = sample.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Divergence cross-check: the engine's classification must match
    // unbatched evaluation exactly (grid-aligned duties make cache
    // quantization the identity, so vout agrees bitwise).
    let checked = engine(config, TierPolicy::circuit());
    let threshold = 0.5 * checked.vdd().value();
    let step = (hotset.len() / config.divergence_sample.max(1)).max(1);
    let divergences = hotset
        .iter()
        .step_by(step)
        .take(config.divergence_sample)
        .filter(|q| {
            let engine_fires = checked
                .evaluate(q)
                .expect("stream queries are valid")
                .vout
                .value()
                >= threshold;
            let direct_fires = naive
                .vout(q.duties(), q.weights())
                .expect("stream queries are valid")
                .value()
                >= threshold;
            engine_fires != direct_fires
        })
        .count();

    let speedup = hotset_report.qps / naive_qps.max(1e-9);
    ServeReport {
        uniform: uniform_report,
        switch: switch_report,
        hotset: hotset_report,
        naive_qps,
        speedup_vs_naive: speedup,
        divergences,
    }
}

/// Renders the `serve` JSON object (two-space indent, no trailing comma)
/// for embedding in the `mssim-bench-v1` document.
///
/// Key naming is constrained by `bench_compare`'s scanner: the section
/// must not contain bare `"name"` or `"speedup"` keys (those belong to
/// the `entries` fixtures), hence `"stream"` and `"speedup_vs_naive"`.
pub fn to_json(report: &ServeReport, config: &ServeConfig) -> String {
    let stream_json = |s: &StreamReport| {
        format!(
            "      {{\n        \"stream\": \"{}\",\n        \"queries\": {},\n        \"p50_ns\": {},\n        \"p99_ns\": {},\n        \"qps\": {:.0},\n        \"hit_rate\": {:.4},\n        \"tier_analytic\": {},\n        \"tier_switch_level\": {},\n        \"tier_circuit\": {}\n      }}",
            s.stream,
            s.queries,
            s.p50_ns,
            s.p99_ns,
            s.qps,
            s.hit_rate,
            s.tier_analytic,
            s.tier_switch_level,
            s.tier_circuit
        )
    };
    format!(
        "  \"serve\": {{\n    \"queries\": {},\n    \"seed\": {},\n    \"resolution\": {},\n    \"hot_set\": {},\n    \"hot_prob\": {:.2},\n    \"naive_qps\": {:.1},\n    \"speedup_vs_naive\": {:.1},\n    \"divergences\": {},\n    \"streams\": [\n{},\n{},\n{}\n    ]\n  }}",
        config.queries,
        config.seed,
        config.resolution,
        config.hot_set,
        config.hot_prob,
        report.naive_qps,
        report.speedup_vs_naive,
        report.divergences,
        stream_json(&report.uniform),
        stream_json(&report.switch),
        stream_json(&report.hotset)
    )
}

/// Removes an existing two-space-indented `"serve": {...},` section from
/// a `mssim-bench-v1` document, if present.
pub fn strip_serve_section(text: &str) -> String {
    crate::section::strip_section(text, "serve")
}

/// Merges the serve section into an existing `mssim-bench-v1` document
/// (inserted immediately before `"entries"`, replacing any previous serve
/// section), or synthesizes a minimal document when none exists.
pub fn merge_into_bench_json(
    existing: Option<&str>,
    report: &ServeReport,
    config: &ServeConfig,
) -> String {
    crate::section::merge_section(existing, "serve", &to_json(report, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeConfig {
        ServeConfig {
            queries: 200,
            hot_set: 8,
            naive_sample: 2,
            divergence_sample: 3,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let c = tiny();
        assert_eq!(uniform_stream(&c), uniform_stream(&c));
        assert_eq!(hotset_stream(&c), hotset_stream(&c));
        let mut other = c;
        other.seed ^= 1;
        assert_ne!(hotset_stream(&c), hotset_stream(&other));
    }

    #[test]
    fn hotset_stream_repeats_hot_queries() {
        let c = tiny();
        let stream = hotset_stream(&c);
        let mut distinct: Vec<&Query> = Vec::new();
        for q in &stream {
            if !distinct.contains(&q) {
                distinct.push(q);
            }
        }
        // 95 % of 200 queries hit 8 hot pairs → far fewer distinct
        // queries than stream length.
        assert!(
            distinct.len() < stream.len() / 3,
            "{} distinct of {}",
            distinct.len(),
            stream.len()
        );
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let mut xs: Vec<u64> = (1..=100).rev().collect();
        assert_eq!(percentile_ns(&mut xs, 0.0), 1);
        assert_eq!(percentile_ns(&mut xs, 1.0), 100);
        assert_eq!(percentile_ns(&mut xs, 0.5), 51);
    }

    #[test]
    fn empty_sample_set_reports_zero_latency() {
        let mut xs: Vec<u64> = Vec::new();
        assert_eq!(percentile_ns(&mut xs, 0.5), 0);
        assert_eq!(percentile_ns(&mut xs, 0.99), 0);
    }

    #[test]
    fn analytic_stream_report_counts_tiers() {
        let c = tiny();
        let stream = uniform_stream(&c);
        let r = serve_stream("uniform", &stream, &c, TierPolicy::analytic());
        assert_eq!(r.queries, c.queries);
        assert_eq!(r.tier_switch_level, 0);
        assert_eq!(r.tier_circuit, 0);
        assert!(r.tier_analytic > 0);
        assert!(r.hit_rate > 0.0);
        assert!(r.qps > 0.0);
    }

    #[test]
    fn serve_section_merges_before_entries_and_strips_cleanly() {
        let c = tiny();
        let report = ServeReport {
            uniform: StreamReport {
                stream: "uniform",
                queries: 200,
                p50_ns: 100,
                p99_ns: 500,
                qps: 1e6,
                hit_rate: 0.5,
                tier_analytic: 100,
                tier_switch_level: 0,
                tier_circuit: 0,
            },
            switch: StreamReport {
                stream: "switch",
                queries: 200,
                p50_ns: 150,
                p99_ns: 700,
                qps: 1e5,
                hit_rate: 0.5,
                tier_analytic: 0,
                tier_switch_level: 100,
                tier_circuit: 0,
            },
            hotset: StreamReport {
                stream: "hotset",
                queries: 200,
                p50_ns: 200,
                p99_ns: 900,
                qps: 1e4,
                hit_rate: 0.95,
                tier_analytic: 0,
                tier_switch_level: 0,
                tier_circuit: 10,
            },
            naive_qps: 100.0,
            speedup_vs_naive: 100.0,
            divergences: 0,
        };
        let base =
            "{\n  \"schema\": \"mssim-bench-v1\",\n  \"repeats\": 3,\n  \"entries\": [\n  ]\n}\n";
        let merged = merge_into_bench_json(Some(base), &report, &c);
        let serve_pos = merged.find("\"serve\"").expect("serve section present");
        let entries_pos = merged.find("\"entries\"").expect("entries preserved");
        assert!(serve_pos < entries_pos, "serve precedes entries");
        assert!(merged.contains("\"repeats\": 3"), "scalars preserved");
        assert!(!merged.contains("\"speedup\":"), "no bare speedup key");
        assert!(!merged[serve_pos..entries_pos].contains("\"name\":"));
        // Re-merging replaces rather than duplicates.
        let remerged = merge_into_bench_json(Some(&merged), &report, &c);
        assert_eq!(remerged.matches("\"serve\"").count(), 1);
        // Stripping recovers a serve-free document.
        let stripped = strip_serve_section(&merged);
        assert!(!stripped.contains("\"serve\""));
        assert!(stripped.contains("\"entries\""));
    }

    #[test]
    fn merge_without_existing_document_synthesizes_one() {
        let c = tiny();
        let report = ServeReport {
            uniform: StreamReport {
                stream: "uniform",
                queries: 1,
                p50_ns: 1,
                p99_ns: 1,
                qps: 1.0,
                hit_rate: 0.0,
                tier_analytic: 1,
                tier_switch_level: 0,
                tier_circuit: 0,
            },
            switch: StreamReport {
                stream: "switch",
                queries: 1,
                p50_ns: 1,
                p99_ns: 1,
                qps: 1.0,
                hit_rate: 0.0,
                tier_analytic: 0,
                tier_switch_level: 1,
                tier_circuit: 0,
            },
            hotset: StreamReport {
                stream: "hotset",
                queries: 1,
                p50_ns: 1,
                p99_ns: 1,
                qps: 1.0,
                hit_rate: 0.0,
                tier_analytic: 0,
                tier_switch_level: 0,
                tier_circuit: 1,
            },
            naive_qps: 1.0,
            speedup_vs_naive: 1.0,
            divergences: 0,
        };
        let doc = merge_into_bench_json(None, &report, &c);
        assert!(doc.contains("\"schema\": \"mssim-bench-v1\""));
        assert!(doc.find("\"serve\"").unwrap() < doc.find("\"entries\"").unwrap());
    }
}
