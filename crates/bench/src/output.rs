//! Table rendering and CSV export for the `repro` binary.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Renders a fixed-width text table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Directory CSVs are written into (`results/` under the current
/// directory); created on demand.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a CSV file; errors are reported, not fatal (the printed table
/// is the primary artefact).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    };
    match write() {
        Ok(()) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let rows = vec![
            vec!["1".into(), "2.50".into()],
            vec!["100".into(), "0.42".into()],
        ];
        let t = render_table("T", &["x", "vout"], &rows);
        assert!(t.contains("== T =="));
        assert!(t.contains("vout"));
        let lines: Vec<&str> = t.lines().filter(|l| !l.is_empty()).collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 3), "2.000");
    }
}
