//! Shared helpers for splicing named top-level sections into the
//! `mssim-bench-v1` JSON document.
//!
//! The bench document is hand-rendered (no serde in this workspace), so
//! sections like `"serve"` and `"chaos"` are merged textually: each is a
//! two-space-indented object inserted immediately before `"entries"`,
//! replacing any previous section of the same name. [`strip_section`]
//! and [`merge_section`] implement that splice generically; `serve` and
//! `chaos` keep thin, section-specific wrappers.

/// Removes an existing two-space-indented `"<key>": {...},` section from
/// a `mssim-bench-v1` document, if present.
pub fn strip_section(text: &str, key: &str) -> String {
    let marker = format!("  \"{key}\": {{");
    let Some(start) = text.find(&marker) else {
        return text.to_string();
    };
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut end = start;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    // Swallow a trailing comma and the line break.
    let rest = &text[end..];
    let rest = rest.strip_prefix(',').unwrap_or(rest);
    let rest = rest.strip_prefix('\n').unwrap_or(rest);
    format!("{}{}", &text[..start], rest)
}

/// Merges `section` (a rendered `  "<key>": {...}` object) into an
/// existing `mssim-bench-v1` document — inserted immediately before
/// `"entries"`, replacing any previous section of the same `key` — or
/// synthesizes a minimal document when none exists.
pub fn merge_section(existing: Option<&str>, key: &str, section: &str) -> String {
    match existing {
        Some(text) => {
            let text = strip_section(text, key);
            let marker = "  \"entries\": [";
            match text.find(marker) {
                Some(pos) => format!("{}{},\n{}", &text[..pos], section, &text[pos..]),
                // No entries array — append before the closing brace.
                None => {
                    let trimmed = text.trim_end().trim_end_matches('}').trim_end();
                    let sep = if trimmed.ends_with('{') { "" } else { "," };
                    format!("{trimmed}{sep}\n{section}\n}}\n")
                }
            }
        }
        None => format!(
            "{{\n  \"schema\": \"mssim-bench-v1\",\n  \"mode\": \"{key}-only\",\n{section},\n  \"entries\": [\n  ]\n}}\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str =
        "{\n  \"schema\": \"mssim-bench-v1\",\n  \"repeats\": 3,\n  \"entries\": [\n  ]\n}\n";

    #[test]
    fn merge_inserts_before_entries_and_replaces_on_remerge() {
        let section = "  \"chaos\": {\n    \"availability\": 1.0\n  }";
        let merged = merge_section(Some(BASE), "chaos", section);
        assert!(merged.find("\"chaos\"").unwrap() < merged.find("\"entries\"").unwrap());
        assert!(merged.contains("\"repeats\": 3"));
        let remerged = merge_section(Some(&merged), "chaos", section);
        assert_eq!(remerged.matches("\"chaos\"").count(), 1);
    }

    #[test]
    fn strip_removes_only_the_named_section() {
        let serve = "  \"serve\": {\n    \"queries\": 10\n  }";
        let chaos = "  \"chaos\": {\n    \"availability\": 1.0\n  }";
        let doc = merge_section(
            Some(&merge_section(Some(BASE), "serve", serve)),
            "chaos",
            chaos,
        );
        let stripped = strip_section(&doc, "serve");
        assert!(!stripped.contains("\"serve\""));
        assert!(stripped.contains("\"chaos\""));
        assert!(stripped.contains("\"entries\""));
    }

    #[test]
    fn strip_without_the_section_is_identity() {
        assert_eq!(strip_section(BASE, "chaos"), BASE);
    }

    #[test]
    fn merge_without_existing_document_synthesizes_one() {
        let section = "  \"chaos\": {\n    \"availability\": 1.0\n  }";
        let doc = merge_section(None, "chaos", section);
        assert!(doc.contains("\"schema\": \"mssim-bench-v1\""));
        assert!(doc.find("\"chaos\"").unwrap() < doc.find("\"entries\"").unwrap());
    }
}
