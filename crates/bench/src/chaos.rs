//! `repro chaos` — deterministic fault-injection harness for the
//! resilient inference engine.
//!
//! Serves seeded query streams through an [`InferenceEngine`] whose
//! switch-level tier is wrapped in a [`ChaosEvaluator`] injecting
//! non-convergence, NaN outputs and latency spikes on a schedule that is
//! a pure function of `(seed, call index)`. Time is a shared
//! [`ManualClock`], so deadline expiries, breaker cooldowns and retry
//! backoffs replay identically on every run — the whole
//! [`ChaosReport`] is bitwise-reproducible for a given
//! [`ChaosHarnessConfig`].
//!
//! Two streams run per invocation:
//!
//! * **baseline** — the acceptance stream: 1 % forced non-convergence
//!   plus rare NaNs and deadline-busting latency spikes. Gates:
//!   availability ≥ 99.9 %, zero panics, zero degraded answers outside
//!   their certified bound, zero classification divergences on
//!   full-fidelity answers.
//! * **storm** — a 60 % fault rate that must trip the per-tier circuit
//!   breaker; serving sheds to the analytic tier (flagged `degraded`)
//!   instead of erroring, so the same availability gates hold.
//!
//! Every degraded answer is checked against a chaos-free reference
//! engine of identical configuration; cache-shard poisoning is injected
//! at intervals and must be recovered (counted, never fatal). The
//! results land in the `chaos` section of `BENCH_mssim.json`, gated by
//! `bench_compare` in CI.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use pwm_perceptron::prelude::*;

use crate::serve::{serve_tech, uniform_stream, ServeConfig};

/// Chaos-harness knobs. Everything that feeds the injection schedule or
/// the clock lives here, so two runs with equal configs produce equal
/// [`ChaosReport`]s.
#[derive(Debug, Clone, Copy)]
pub struct ChaosHarnessConfig {
    /// Queries per stream.
    pub queries: usize,
    /// Stream + injection-schedule seed.
    pub seed: u64,
    /// Memo-cache duty resolution (levels).
    pub resolution: u32,
    /// Latency-spike magnitude, nanoseconds (must exceed the deadline to
    /// force timeout demotions).
    pub spike_ns: u64,
    /// Per-query deadline budget, nanoseconds.
    pub deadline_ns: u64,
    /// Manual-clock advance between queries, nanoseconds.
    pub step_ns: u64,
    /// Poison one cache shard every this many queries (0 = never).
    pub poison_every: usize,
}

impl Default for ChaosHarnessConfig {
    fn default() -> Self {
        ChaosHarnessConfig {
            queries: 2_000,
            seed: 0xC4405,
            resolution: 16,
            spike_ns: 100_000_000, // 100 ms — blows the 50 ms deadline
            deadline_ns: 50_000_000,
            step_ns: 1_000_000, // 1 ms of simulated time per query
            poison_every: 251,
        }
    }
}

/// One injected-fault mix (a stream of the harness).
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    /// Stream name (`baseline` or `storm`).
    pub stream: &'static str,
    /// Forced non-convergence probability per evaluator call.
    pub fail_rate: f64,
    /// NaN-output probability per evaluator call.
    pub nan_rate: f64,
    /// Latency-spike probability per evaluator call.
    pub spike_rate: f64,
}

/// The acceptance mix: ISSUE-mandated 1 % circuit-tier fault rate plus
/// rare NaNs and spikes.
pub fn baseline_mix() -> FaultMix {
    FaultMix {
        stream: "baseline",
        fail_rate: 0.01,
        nan_rate: 0.002,
        spike_rate: 0.002,
    }
}

/// The breaker-tripping mix: a majority of calls fail, so the rolling
/// failure-rate window must open the breaker and serving must shed.
pub fn storm_mix() -> FaultMix {
    FaultMix {
        stream: "storm",
        fail_rate: 0.60,
        nan_rate: 0.05,
        spike_rate: 0.01,
    }
}

/// Metrics for one chaos stream. Contains no wall-clock figures — every
/// field is a deterministic function of the harness config.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosStreamReport {
    /// Stream name.
    pub stream: &'static str,
    /// Injected fault mix.
    pub mix: FaultMixRates,
    /// Queries served single-shot.
    pub queries: usize,
    /// Fraction of queries answered `Ok` (degraded included).
    pub availability: f64,
    /// Degraded answers (served below the demanded tier).
    pub degraded: usize,
    /// `degraded / queries`.
    pub degraded_rate: f64,
    /// Largest `|served − reference|` across degraded answers, volts.
    pub max_degraded_error_v: f64,
    /// Degraded answers whose error exceeded their certified bound.
    pub bound_violations: usize,
    /// Classification disagreements vs the chaos-free reference engine
    /// on full-fidelity (non-degraded) answers.
    pub divergences: usize,
    /// Panics that escaped the serving path.
    pub panics: usize,
    /// Retries performed by the resilience ladder.
    pub retries: u64,
    /// Ladder demotions.
    pub demotions: u64,
    /// Deadline expiries.
    pub deadline_exceeded: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Poisoned cache shards recovered by the engine.
    pub lock_poisoned: u64,
    /// Cache-shard poisonings injected by the harness.
    pub poison_injected: usize,
    /// Forced non-convergence faults the chaos evaluator injected.
    pub injected_fail: u64,
    /// NaN faults injected.
    pub injected_nan: u64,
    /// Latency spikes injected.
    pub injected_spike: u64,
    /// Fraction of queries answered `Ok` by a fresh batched pass over
    /// the same stream.
    pub batch_availability: f64,
    /// Degraded answers in the batched pass.
    pub batch_degraded: usize,
}

/// The fault-mix rates echoed into the report (kept separate from
/// [`FaultMix`] so the report derives `PartialEq` cleanly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMixRates {
    /// Forced non-convergence probability.
    pub fail: f64,
    /// NaN-output probability.
    pub nan: f64,
    /// Latency-spike probability.
    pub spike: f64,
}

/// Full `repro chaos` result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The 1 % acceptance stream.
    pub baseline: ChaosStreamReport,
    /// The breaker-tripping storm stream.
    pub storm: ChaosStreamReport,
}

impl ChaosReport {
    /// Acceptance-gate violations; an empty list means the run passes.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for s in [&self.baseline, &self.storm] {
            if s.availability < 0.999 {
                v.push(format!(
                    "{}: availability {:.4} < 0.999",
                    s.stream, s.availability
                ));
            }
            if s.batch_availability < 0.999 {
                v.push(format!(
                    "{}: batched availability {:.4} < 0.999",
                    s.stream, s.batch_availability
                ));
            }
            if s.panics > 0 {
                v.push(format!(
                    "{}: {} panic(s) escaped serving",
                    s.stream, s.panics
                ));
            }
            if s.bound_violations > 0 {
                v.push(format!(
                    "{}: {} degraded answer(s) outside the certified bound (max error {:.4} V)",
                    s.stream, s.bound_violations, s.max_degraded_error_v
                ));
            }
            if s.divergences > 0 {
                v.push(format!(
                    "{}: {} classification divergence(s) on full-fidelity answers",
                    s.stream, s.divergences
                ));
            }
            if s.poison_injected > 0 && s.lock_poisoned == 0 {
                v.push(format!(
                    "{}: {} shard poisonings injected but none recovered",
                    s.stream, s.poison_injected
                ));
            }
        }
        if self.storm.breaker_trips == 0 {
            v.push("storm: breaker never tripped — the storm is not a storm".to_string());
        }
        v
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Shares one [`ChaosEvaluator`] between the engine (which consumes its
/// evaluators) and the harness (which reads the injection counters after
/// the run).
#[derive(Debug)]
struct SharedChaos(Arc<ChaosEvaluator<SwitchLevelEvaluator>>);

impl pwm_perceptron::Evaluator for SharedChaos {
    fn vout(
        &self,
        duties: &[DutyCycle],
        weights: &WeightVector,
    ) -> Result<mssim::units::Volts, CoreError> {
        self.0.vout(duties, weights)
    }

    fn vdd(&self) -> mssim::units::Volts {
        self.0.vdd()
    }

    fn tier(&self) -> Tier {
        Tier::SwitchLevel
    }

    fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        self.0.evaluate(query)
    }

    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        self.0.evaluate_batch(queries)
    }
}

struct StreamRig {
    engine: InferenceEngine,
    chaos: Arc<ChaosEvaluator<SwitchLevelEvaluator>>,
    clock: Arc<ManualClock>,
}

fn rig(config: &ChaosHarnessConfig, mix: &FaultMix, salt: u64) -> StreamRig {
    let tech = serve_tech();
    let clock = Arc::new(ManualClock::new());
    let chaos = Arc::new(ChaosEvaluator::with_clock(
        SwitchLevelEvaluator::new(tech.clone()),
        ChaosConfig {
            seed: config.seed ^ salt,
            fail_rate: mix.fail_rate,
            nan_rate: mix.nan_rate,
            spike_rate: mix.spike_rate,
            spike_ns: config.spike_ns,
        },
        clock.clone(),
    ));
    let policy = ResiliencePolicy::new()
        .with_attempts(2)
        .with_backoff_ns(1_000_000)
        .with_deadline_ns(config.deadline_ns);
    let engine = InferenceEngine::new(tech.vdd)
        .with_switch_tier(SharedChaos(chaos.clone()))
        .with_policy(TierPolicy::switch_level())
        .with_cache(config.resolution, 1 << 16)
        .with_resilience_clock(policy, clock.clone());
    StreamRig {
        engine,
        chaos,
        clock,
    }
}

/// The chaos-free reference: identical tiers, policy and cache, no
/// injection and no resilience (a fault here is a harness bug).
fn reference_engine(config: &ChaosHarnessConfig) -> InferenceEngine {
    let tech = serve_tech();
    InferenceEngine::new(tech.vdd)
        .with_switch_tier(SwitchLevelEvaluator::new(tech))
        .with_policy(TierPolicy::switch_level())
        .with_cache(config.resolution, 1 << 16)
}

fn stream_queries(config: &ChaosHarnessConfig) -> Vec<Query> {
    uniform_stream(&ServeConfig {
        queries: config.queries,
        seed: config.seed,
        resolution: config.resolution,
        ..ServeConfig::default()
    })
}

/// Runs one fault mix over the stream: a single-query pass with
/// per-query reference checks and periodic shard poisoning, then a
/// fresh-rig batched pass for the batched-path availability gate.
fn run_stream(
    config: &ChaosHarnessConfig,
    mix: &FaultMix,
    stream: &[Query],
    reference: &InferenceEngine,
) -> ChaosStreamReport {
    let salt = splitmix64(u64::from_le_bytes(*b"chaosmix") ^ mix.stream.len() as u64)
        ^ (mix.fail_rate * 1e6) as u64;
    let r = rig(config, mix, salt);
    let threshold = 0.5 * r.engine.vdd().value();

    let mut ok = 0usize;
    let mut degraded = 0usize;
    let mut max_err = 0.0f64;
    let mut bound_violations = 0usize;
    let mut divergences = 0usize;
    let mut panics = 0usize;
    let mut poison_injected = 0usize;

    for (i, q) in stream.iter().enumerate() {
        if config.poison_every > 0 && i > 0 && i % config.poison_every == 0 {
            let shard =
                (splitmix64(config.seed ^ salt ^ i as u64) as usize) % MemoCache::shard_count();
            if let Some(cache) = r.engine.cache() {
                if cache.poison_shard(shard) {
                    poison_injected += 1;
                }
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| r.engine.evaluate(q)));
        match outcome {
            Err(_) => panics += 1,
            Ok(Err(_)) => {}
            Ok(Ok(eval)) => {
                ok += 1;
                let reference_vout = reference
                    .evaluate(q)
                    .expect("reference engine is fault-free")
                    .vout
                    .value();
                if eval.degraded {
                    degraded += 1;
                    let err = (eval.vout.value() - reference_vout).abs();
                    max_err = max_err.max(err);
                    if err > eval.error_bound {
                        bound_violations += 1;
                    }
                } else {
                    let fires = eval.vout.value() >= threshold;
                    let reference_fires = reference_vout >= threshold;
                    if fires != reference_fires {
                        divergences += 1;
                    }
                }
            }
        }
        r.clock.advance(config.step_ns);
    }
    // Touch every shard so outstanding poisonings are recovered and
    // counted before the report snapshot.
    if let Some(cache) = r.engine.cache() {
        let _ = cache.len();
    }
    let report = r.engine.report();
    let stats = report.resil;
    let [injected_fail, injected_nan, injected_spike] = r.chaos.injected();

    // Fresh rig for the batched pass: same schedule seed, fresh call
    // counter, fresh breakers.
    let batch_rig = rig(config, mix, salt);
    let mut batch_ok = 0usize;
    let mut batch_degraded = 0usize;
    match catch_unwind(AssertUnwindSafe(|| batch_rig.engine.evaluate_batch(stream))) {
        Err(_) => panics += 1,
        Ok(results) => {
            for eval in results.into_iter().flatten() {
                batch_ok += 1;
                if eval.degraded {
                    batch_degraded += 1;
                }
            }
        }
    }

    let n = stream.len().max(1);
    ChaosStreamReport {
        stream: mix.stream,
        mix: FaultMixRates {
            fail: mix.fail_rate,
            nan: mix.nan_rate,
            spike: mix.spike_rate,
        },
        queries: stream.len(),
        availability: ok as f64 / n as f64,
        degraded,
        degraded_rate: degraded as f64 / n as f64,
        max_degraded_error_v: max_err,
        bound_violations,
        divergences,
        panics,
        retries: stats.retries,
        demotions: stats.demotions,
        deadline_exceeded: stats.deadline_exceeded,
        breaker_trips: stats.breaker_trips,
        lock_poisoned: report.cache.lock_poisoned,
        poison_injected,
        injected_fail,
        injected_nan,
        injected_spike,
        batch_availability: batch_ok as f64 / n as f64,
        batch_degraded,
    }
}

/// Runs the full chaos harness: baseline and storm streams over the
/// same seeded queries.
pub fn run(config: &ChaosHarnessConfig) -> ChaosReport {
    let stream = stream_queries(config);
    let reference = reference_engine(config);
    ChaosReport {
        baseline: run_stream(config, &baseline_mix(), &stream, &reference),
        storm: run_stream(config, &storm_mix(), &stream, &reference),
    }
}

/// Renders the `chaos` JSON object (two-space indent) for embedding in
/// the `mssim-bench-v1` document.
///
/// Like the serve section, key naming avoids `bench_compare`'s entry
/// scanner: no bare `"name"` or `"speedup"` keys.
pub fn to_json(report: &ChaosReport, config: &ChaosHarnessConfig) -> String {
    let stream_json = |s: &ChaosStreamReport| {
        format!(
            "      {{\n        \"stream\": \"{}\",\n        \"fail_rate\": {:.4},\n        \"nan_rate\": {:.4},\n        \"spike_rate\": {:.4},\n        \"queries\": {},\n        \"availability\": {:.6},\n        \"degraded\": {},\n        \"degraded_rate\": {:.6},\n        \"max_degraded_error_v\": {:.6},\n        \"bound_violations\": {},\n        \"divergences\": {},\n        \"panics\": {},\n        \"retries\": {},\n        \"demotions\": {},\n        \"deadline_exceeded\": {},\n        \"breaker_trips\": {},\n        \"lock_poisoned\": {},\n        \"poison_injected\": {},\n        \"injected_fail\": {},\n        \"injected_nan\": {},\n        \"injected_spike\": {},\n        \"batch_availability\": {:.6},\n        \"batch_degraded\": {}\n      }}",
            s.stream,
            s.mix.fail,
            s.mix.nan,
            s.mix.spike,
            s.queries,
            s.availability,
            s.degraded,
            s.degraded_rate,
            s.max_degraded_error_v,
            s.bound_violations,
            s.divergences,
            s.panics,
            s.retries,
            s.demotions,
            s.deadline_exceeded,
            s.breaker_trips,
            s.lock_poisoned,
            s.poison_injected,
            s.injected_fail,
            s.injected_nan,
            s.injected_spike,
            s.batch_availability,
            s.batch_degraded,
        )
    };
    format!(
        "  \"chaos\": {{\n    \"queries\": {},\n    \"seed\": {},\n    \"resolution\": {},\n    \"spike_ns\": {},\n    \"deadline_ns\": {},\n    \"step_ns\": {},\n    \"poison_every\": {},\n    \"streams\": [\n{},\n{}\n    ]\n  }}",
        config.queries,
        config.seed,
        config.resolution,
        config.spike_ns,
        config.deadline_ns,
        config.step_ns,
        config.poison_every,
        stream_json(&report.baseline),
        stream_json(&report.storm),
    )
}

/// Merges the chaos section into an existing `mssim-bench-v1` document
/// (replacing any previous chaos section), or synthesizes a minimal
/// document when none exists.
pub fn merge_into_bench_json(
    existing: Option<&str>,
    report: &ChaosReport,
    config: &ChaosHarnessConfig,
) -> String {
    crate::section::merge_section(existing, "chaos", &to_json(report, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosHarnessConfig {
        ChaosHarnessConfig {
            queries: 200,
            poison_every: 61,
            ..ChaosHarnessConfig::default()
        }
    }

    #[test]
    fn chaos_report_is_seed_deterministic() {
        let c = tiny();
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a, b, "same config must replay bitwise-identically");
        assert_eq!(to_json(&a, &c), to_json(&b, &c));
    }

    #[test]
    fn baseline_stream_passes_the_acceptance_gates() {
        let c = tiny();
        let report = run(&c);
        let violations = report.violations();
        assert!(violations.is_empty(), "gate violations: {violations:?}");
        assert!(report.baseline.availability >= 0.999);
        assert!(report.baseline.injected_fail > 0, "faults were injected");
        assert!(
            report.storm.breaker_trips >= 1,
            "the storm must trip the breaker"
        );
        assert!(report.storm.degraded > 0, "storm serving degrades");
    }

    #[test]
    fn distinct_seeds_change_the_injection_trace() {
        let a = run(&tiny());
        let b = run(&ChaosHarnessConfig {
            seed: 0xDEAD,
            ..tiny()
        });
        assert_ne!(
            (a.baseline.injected_fail, a.baseline.retries),
            (b.baseline.injected_fail, b.baseline.retries),
        );
    }

    #[test]
    fn chaos_section_merges_and_replaces() {
        let c = tiny();
        let report = run(&c);
        let base =
            "{\n  \"schema\": \"mssim-bench-v1\",\n  \"repeats\": 3,\n  \"entries\": [\n  ]\n}\n";
        let merged = merge_into_bench_json(Some(base), &report, &c);
        assert!(merged.find("\"chaos\"").unwrap() < merged.find("\"entries\"").unwrap());
        let remerged = merge_into_bench_json(Some(&merged), &report, &c);
        assert_eq!(remerged.matches("\"chaos\"").count(), 1);
        let section =
            &merged[merged.find("\"chaos\"").unwrap()..merged.find("\"entries\"").unwrap()];
        assert!(!section.contains("\"name\":"), "no bare name key");
        assert!(!section.contains("\"speedup\":"), "no bare speedup key");
    }
}
