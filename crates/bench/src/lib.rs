//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each experiment is a pure function returning row structs; the `repro`
//! binary renders them as the paper's tables/series and writes CSVs, and
//! the Criterion benches time reduced variants. See DESIGN.md §3 for the
//! experiment ↔ module index.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod chaos;
pub mod experiments;
pub mod hotpath;
pub mod output;
pub mod section;
pub mod serve;

pub use experiments::*;
