//! The paper's experiments, as data-producing functions.
//!
//! All experiments take a [`SimQuality`] so the Criterion benches can run
//! reduced variants of the same code paths the `repro` binary runs at
//! publication settings.

use mssim::prelude::{Hertz, Volts};
use mssim::sweep;
use pwm_perceptron::dataset::Dataset;
use pwm_perceptron::duty::DutyCycle;
use pwm_perceptron::eval::{AnalyticEvaluator, CircuitEvaluator, Evaluator, SwitchLevelEvaluator};
use pwm_perceptron::robustness::{self, McSummary, VariationSpec};
use pwm_perceptron::train::{train, TrainConfig};
use pwm_perceptron::{PwmPerceptron, Query, Reference, WeightVector};
use pwmcell::analytic;
use pwmcell::{AdderSpec, AdderTestbench, InverterTestbench, MeasureSpec, SimQuality, Technology};

/// The six input configurations of the paper's Table II.
pub const TABLE2_CONFIGS: [([f64; 3], [u32; 3]); 6] = [
    ([0.70, 0.80, 0.90], [7, 7, 7]),
    ([0.50, 0.50, 0.50], [1, 2, 4]),
    ([0.20, 0.60, 0.80], [5, 6, 7]),
    ([0.95, 0.90, 0.80], [7, 6, 6]),
    ([0.30, 0.40, 0.50], [1, 4, 2]),
    ([0.80, 0.20, 0.50], [7, 3, 4]),
];

/// The paper's Table II "theoretical" column as printed (rows 4 and 6
/// deviate slightly from Eq. 2; see EXPERIMENTS.md).
pub const TABLE2_PAPER_THEORY: [f64; 6] = [2.00, 0.42, 1.21, 2.00, 0.34, 0.96];

/// The paper's Table II "simulation" column as printed.
pub const TABLE2_PAPER_SIM: [f64; 6] = [1.99, 0.39, 1.17, 2.05, 0.29, 0.89];

// ---------------------------------------------------------------- Fig. 4

/// One duty-cycle point of Fig. 4 (inverter transfer for three loads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Row {
    /// Input duty cycle, 0..=1.
    pub duty: f64,
    /// Output voltage without a load resistor.
    pub vout_no_load: f64,
    /// Output voltage with Rout = 5 kΩ.
    pub vout_5k: f64,
    /// Output voltage with Rout = 100 kΩ.
    pub vout_100k: f64,
    /// The ideal straight line `Vdd·(1 − duty)`.
    pub ideal: f64,
}

/// Fig. 4: inverter output voltage vs input duty cycle for
/// Rout ∈ {no load, 5 kΩ, 100 kΩ} at 500 MHz, Vdd = 2.5 V.
pub fn fig4(tech: &Technology, quality: &SimQuality, points: usize) -> Vec<Fig4Row> {
    let duties = sweep::linspace(0.0, 1.0, points.max(2));
    let benches = [
        InverterTestbench::without_load(tech),
        InverterTestbench::with_rout(tech, Some(mssim::units::Ohms(5e3))),
        InverterTestbench::with_rout(tech, Some(mssim::units::Ohms(100e3))),
    ];
    sweep::sweep(&duties, |&duty, _| {
        let m: Vec<f64> = benches
            .iter()
            .map(|tb| {
                tb.measure(&MeasureSpec::duty(duty), quality)
                    .expect("fig4 measurement converges")
                    .vout
                    .value()
            })
            .collect();
        Fig4Row {
            duty,
            vout_no_load: m[0],
            vout_5k: m[1],
            vout_100k: m[2],
            ideal: analytic::inverter_vout(tech.vdd.value(), duty),
        }
    })
}

// ---------------------------------------------------------------- Fig. 5

/// One frequency point of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Input frequency in hertz.
    pub frequency: f64,
    /// Output voltage at 25 % duty.
    pub vout_dc25: f64,
    /// Output voltage at 50 % duty.
    pub vout_dc50: f64,
    /// Output voltage at 75 % duty.
    pub vout_dc75: f64,
}

/// Fig. 5: inverter output vs input frequency (1–1500 MHz) for duty
/// cycles 25/50/75 %, Rout = 100 kΩ.
pub fn fig5(tech: &Technology, quality: &SimQuality, frequencies: &[f64]) -> Vec<Fig5Row> {
    let tb = InverterTestbench::new(tech);
    sweep::sweep(frequencies, |&freq, _| {
        let at = |duty: f64| {
            tb.measure(
                &MeasureSpec::duty(duty).with_frequency(Hertz(freq)),
                quality,
            )
            .expect("fig5 measurement converges")
            .vout
            .value()
        };
        Fig5Row {
            frequency: freq,
            vout_dc25: at(0.25),
            vout_dc50: at(0.50),
            vout_dc75: at(0.75),
        }
    })
}

/// The frequency grid of the paper's Fig. 5.
pub fn fig5_frequencies(points: usize) -> Vec<f64> {
    sweep::linspace(1e6, 1500e6, points.max(2))
}

// ----------------------------------------------------------- Figs. 6 & 7

/// One supply point of Figs. 6 and 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Absolute output voltages for duty 25/50/75 %.
    pub vout: [f64; 3],
    /// Relative outputs `Vout/Vdd` (the Fig. 7 series).
    pub ratio: [f64; 3],
}

/// Figs. 6 and 7: inverter output vs supply voltage 0.5–5 V at
/// 500 MHz, duty ∈ {25, 50, 75} %. One simulation per point serves both
/// figures (Fig. 7 is the same data normalised by Vdd).
pub fn fig6_fig7(tech: &Technology, quality: &SimQuality, vdds: &[f64]) -> Vec<Fig6Row> {
    let tb = InverterTestbench::new(tech);
    sweep::sweep(vdds, |&vdd, _| {
        let mut vout = [0.0; 3];
        for (k, duty) in [0.25, 0.5, 0.75].into_iter().enumerate() {
            vout[k] = tb
                .measure(&MeasureSpec::duty(duty).with_vdd(Volts(vdd)), quality)
                .expect("fig6 measurement converges")
                .vout
                .value();
        }
        Fig6Row {
            vdd,
            vout,
            ratio: [vout[0] / vdd, vout[1] / vdd, vout[2] / vdd],
        }
    })
}

/// The supply grid of the paper's Figs. 6/7.
pub fn fig6_vdds(points: usize) -> Vec<f64> {
    sweep::linspace(0.5, 5.0, points.max(2))
}

// --------------------------------------------------------------- Table II

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Input duty cycles.
    pub duties: [f64; 3],
    /// Input weights.
    pub weights: [u32; 3],
    /// Eq. 2 value.
    pub v_theory: f64,
    /// Transistor-level simulated value.
    pub v_sim: f64,
    /// `v_sim − v_theory`.
    pub error: f64,
    /// Values printed in the paper (theory, simulation).
    pub paper: (f64, f64),
}

/// Table II: the 3×3 weighted adder at six input configurations,
/// theoretical (Eq. 2) vs transistor-level simulation.
pub fn table2(tech: &Technology, quality: &SimQuality) -> Vec<Table2Row> {
    let configs: Vec<usize> = (0..TABLE2_CONFIGS.len()).collect();
    sweep::sweep(&configs, |&i, _| {
        let (duties, weights) = TABLE2_CONFIGS[i];
        let tb = AdderTestbench::paper(tech);
        let m = tb
            .measure(&duties, &weights, quality)
            .expect("table2 measurement converges");
        let v_theory = analytic::adder_vout(tech.vdd.value(), &duties, &weights, 3);
        Table2Row {
            duties,
            weights,
            v_theory,
            v_sim: m.vout.value(),
            error: m.vout.value() - v_theory,
            paper: (TABLE2_PAPER_THEORY[i], TABLE2_PAPER_SIM[i]),
        }
    })
}

// ---------------------------------------------------------------- Fig. 8

/// One frequency point of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Row {
    /// Input frequency in hertz.
    pub frequency: f64,
    /// Average supply power in watts.
    pub power: f64,
}

/// The workload used for the power sweep (the paper does not state its
/// configuration; we use Table II row 3 — mixed duties and weights — and
/// document the choice in EXPERIMENTS.md).
pub const FIG8_DUTIES: [f64; 3] = [0.20, 0.60, 0.80];
/// Weights of the Fig. 8 workload.
pub const FIG8_WEIGHTS: [u32; 3] = [5, 6, 7];

/// Fig. 8: average supply power of the 3×3 adder vs input frequency
/// (100–1000 MHz).
pub fn fig8(tech: &Technology, quality: &SimQuality, frequencies: &[f64]) -> Vec<Fig8Row> {
    let tb = AdderTestbench::paper(tech);
    sweep::sweep(frequencies, |&freq, _| {
        let m = tb
            .measure_at(&FIG8_DUTIES, &FIG8_WEIGHTS, Hertz(freq), tech.vdd, quality)
            .expect("fig8 measurement converges");
        Fig8Row {
            frequency: freq,
            power: m.supply_power.value(),
        }
    })
}

/// The frequency grid of the paper's Fig. 8.
pub fn fig8_frequencies(points: usize) -> Vec<f64> {
    sweep::linspace(100e6, 1000e6, points.max(2))
}

// ------------------------------------------------------------- Ablations

/// One point of the Rout linearity ablation (A1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutLinearityRow {
    /// Output resistor in ohms.
    pub rout: f64,
    /// Maximum integral nonlinearity over the duty sweep, in volts.
    pub max_inl: f64,
}

/// A1: how the output resistor linearises the transfer curve — max
/// deviation from the ideal straight line across the duty sweep, for a
/// range of Rout values. (The paper shows three curves in Fig. 4; this
/// sweep fills in the trend.)
pub fn ablation_rout(
    tech: &Technology,
    quality: &SimQuality,
    routs: &[f64],
    duty_points: usize,
) -> Vec<RoutLinearityRow> {
    let duties = sweep::linspace(0.1, 0.9, duty_points.max(2));
    sweep::sweep(routs, |&rout, _| {
        let tb = InverterTestbench::with_rout(tech, Some(mssim::units::Ohms(rout)));
        let max_inl = duties
            .iter()
            .map(|&d| {
                let v = tb
                    .measure(&MeasureSpec::duty(d), quality)
                    .expect("ablation measurement converges")
                    .vout
                    .value();
                (v - analytic::inverter_vout(tech.vdd.value(), d)).abs()
            })
            .fold(0.0, f64::max);
        RoutLinearityRow { rout, max_inl }
    })
}

/// One point of the Cout ablation (A2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoutRow {
    /// Output capacitor in farads.
    pub cout: f64,
    /// Steady-state peak-to-peak ripple in volts.
    pub ripple: f64,
    /// Settling time estimate in seconds (1 % tolerance).
    pub settle: f64,
}

/// A2: the ripple ↔ settling-time trade-off of the output capacitor at
/// 500 MHz, duty 50 %, Rout = 100 kΩ.
pub fn ablation_cout(tech: &Technology, quality: &SimQuality, couts: &[f64]) -> Vec<CoutRow> {
    sweep::sweep(couts, |&cout, _| {
        let tb = InverterTestbench::new(tech).with_cout(mssim::units::Farads(cout));
        let m = tb
            .measure(&MeasureSpec::duty(0.5), quality)
            .expect("cout ablation converges");
        let tau = (tech.rout.value() + 0.5 * (tech.ron_n().value() + tech.ron_p().value())) * cout;
        CoutRow {
            cout,
            ripple: m.ripple.value(),
            settle: tau * (100.0f64).ln(),
        }
    })
}

// ------------------------------------------------- Monte Carlo / A3, A4

/// A3 (fast tier): switch-level global-corner Monte Carlo of every
/// Table II row.
pub fn mc_switch_level(tech: &Technology, trials: usize, seed: u64) -> Vec<(usize, McSummary)> {
    TABLE2_CONFIGS
        .iter()
        .enumerate()
        .map(|(i, (duties, weights))| {
            let query = Query::from_raw(duties, weights, 3).expect("Table II rows are valid");
            let s = robustness::switch_corner_monte_carlo(
                tech,
                &query,
                &VariationSpec::typical_65nm(),
                trials,
                seed + i as u64,
            );
            (i, s)
        })
        .collect()
}

/// A3 (reference tier): transistor-level Monte Carlo with independent
/// per-device mismatch, for one Table II row.
pub fn mc_circuit_level(
    tech: &Technology,
    quality: &SimQuality,
    row: usize,
    trials: usize,
    seed: u64,
) -> McSummary {
    use mssim::prelude::*;
    let (duties, weights) = TABLE2_CONFIGS[row % TABLE2_CONFIGS.len()];
    let samples = sweep::monte_carlo(trials, seed, |rng, _| {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
        let adder = pwmcell::WeightedAdder::build(
            &mut ckt,
            tech,
            "dut",
            vdd,
            &weights,
            AdderSpec::paper_3x3(),
        );
        for (i, &d) in duties.iter().enumerate() {
            ckt.vsource(
                &format!("VIN{i}"),
                adder.inputs[i],
                Circuit::GND,
                Waveform::pwm(tech.vdd.value(), tech.frequency.value(), d),
            );
        }
        robustness::perturb_circuit(&mut ckt, &VariationSpec::typical_65nm(), rng);
        let period = tech.frequency.period().value();
        let tau = tech.cout_adder.value() * (tech.rout.value() + 9e3) / 21.0;
        let settle = ((quality.settle_time_constants * tau / period).ceil() as usize).max(4);
        let t_stop = (settle + quality.measure_periods) as f64 * period;
        let result = Session::new(&ckt)
            .transient(
                &Transient::new(period / quality.steps_per_period as f64, t_stop)
                    .use_initial_conditions(),
            )
            .expect("mc transient converges");
        result
            .voltage(adder.output)
            .steady_state_average(period, quality.measure_periods)
    });
    McSummary::from_samples(samples)
}

/// A4: Table II frequency invariance — every row evaluated at several
/// frequencies with the switch-level model plus a circuit-level spot
/// check, returning `(frequency, row, vout)` triples.
pub fn table2_frequency_invariance(
    tech: &Technology,
    frequencies: &[f64],
) -> Vec<(f64, usize, f64)> {
    let mut out = Vec::new();
    for &freq in frequencies {
        for (i, (duties, weights)) in TABLE2_CONFIGS.iter().enumerate() {
            let v = robustness::vout_vs_frequency(tech, duties, weights, 3, &[freq])[0].1;
            out.push((freq, i, v));
        }
    }
    out
}

// ------------------------------------------------------------- Baseline

/// A5: cost comparison between the PWM adder and the digital baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineComparison {
    /// Transistors in the PWM 3×3 weighted adder.
    pub pwm_transistors: usize,
    /// Transistors in the digital MAC datapath.
    pub digital_transistors: usize,
    /// Digital dynamic power at the given evaluation rate, watts.
    pub digital_power: f64,
    /// Evaluation rate used for the digital power estimate, Hz.
    pub eval_rate: f64,
}

/// A5: builds the matched digital perceptron and reports transistor count
/// and activity-based power at `eval_rate` classifications per second.
pub fn baseline_comparison(eval_rate: f64, samples: usize) -> BaselineComparison {
    use baseline::{BaselineSpec, DigitalPerceptron};
    let digital = DigitalPerceptron::new(BaselineSpec::matched_to_paper());
    let period_ps = (1e12 / eval_rate).max(1.0) as u64;
    let report = digital.measure_power(
        &[5, 6, 7],
        samples,
        period_ps,
        &gatesim::PowerModel::umc65_like(),
        42,
    );
    BaselineComparison {
        pwm_transistors: AdderSpec::paper_3x3().transistor_count(),
        digital_transistors: digital.transistor_count(),
        digital_power: report.dynamic_watts,
        eval_rate,
    }
}

// ------------------------------------------------------------ Kessels A6

/// A6: duty cycles produced by the gate-level Kessels-style PWM counter.
pub fn kessels_duty_table(bits: u32) -> Vec<(u64, f64, f64)> {
    use gatesim::kessels::{measure_duty, KesselsPwm};
    use gatesim::Netlist;
    let mut nl = Netlist::new();
    let pwm = KesselsPwm::build(&mut nl, bits);
    let n = pwm.modulus();
    let step = (n / 8).max(1);
    (0..=n)
        .step_by(step as usize)
        .map(|m| {
            let measured = measure_duty(&nl, &pwm, m, 2, 1_000);
            (m, pwm.duty_for(m), measured)
        })
        .collect()
}

/// A6 (power): dynamic power and transistor cost of the PWM generator at
/// a given clock period, measured over `wraps` counter wraps at mid
/// threshold.
pub fn kessels_power(bits: u32, period_ps: u64, wraps: usize) -> gatesim::PowerReport {
    use gatesim::blocks::drive_word;
    use gatesim::kessels::KesselsPwm;
    use gatesim::{Netlist, PowerModel, Simulator};
    let mut nl = Netlist::new();
    let pwm = KesselsPwm::build(&mut nl, bits);
    let mut sim = Simulator::new(&nl);
    drive_word(&mut sim, &pwm.threshold, pwm.modulus() / 2);
    let n = pwm.modulus() as usize;
    sim.run_clock(pwm.clock, n, period_ps); // warm-up wrap
    sim.reset_activity();
    let t0 = sim.time();
    sim.run_clock(pwm.clock, n * wraps, period_ps);
    let duration = sim.time() - t0;
    PowerModel::umc65_like().estimate(&nl, &sim, duration.max(1))
}

/// A6 (waveforms): two counter wraps at threshold `M`, dumped as a
/// GTKWave-compatible VCD document (clock, PWM output and counter bits).
pub fn kessels_waveform_vcd(bits: u32, threshold: u64) -> String {
    use gatesim::blocks::drive_word;
    use gatesim::kessels::KesselsPwm;
    use gatesim::vcd::VcdRecorder;
    use gatesim::{Netlist, Simulator};
    let mut nl = Netlist::new();
    let pwm = KesselsPwm::build(&mut nl, bits);
    let mut sim = Simulator::new(&nl);
    let mut nets = vec![pwm.clock, pwm.pwm_out];
    nets.extend_from_slice(&pwm.count);
    let mut vcd = VcdRecorder::new(&nl, &nets);
    drive_word(&mut sim, &pwm.threshold, threshold);
    let period_ps = 1_000;
    let cycles = 2 * pwm.modulus() as usize;
    vcd.sample(&sim);
    for _ in 0..cycles {
        sim.run_clock(pwm.clock, 1, period_ps);
        vcd.sample(&sim);
    }
    let end = sim.time();
    vcd.finish(end)
}

// --------------------------------------------------------------- A7 xval

/// A7: cross-validation of the three evaluator tiers on the Table II
/// configurations: `(row, analytic, switch, circuit)`.
pub fn evaluator_cross_validation(
    tech: &Technology,
    quality: &SimQuality,
) -> Vec<(usize, f64, f64, f64)> {
    let analytic_eval = AnalyticEvaluator::new(tech.vdd);
    let switch_eval = SwitchLevelEvaluator::new(tech.clone());
    let circuit_eval = CircuitEvaluator::new(tech.clone(), *quality);
    TABLE2_CONFIGS
        .iter()
        .enumerate()
        .map(|(i, (duties, weights))| {
            let d: Vec<DutyCycle> = duties.iter().map(|&x| DutyCycle::new(x)).collect();
            let w = WeightVector::new(weights.to_vec(), 3).expect("table weights valid");
            let va = analytic_eval.vout(&d, &w).expect("analytic").value();
            let vs = switch_eval.vout(&d, &w).expect("switch").value();
            let vc = circuit_eval.vout(&d, &w).expect("circuit").value();
            (i, va, vs, vc)
        })
        .collect()
}

// ------------------------------------------------- A8: weight precision

/// One row of the weight-precision ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRow {
    /// Weight width in bits.
    pub bits: u32,
    /// Training accuracy reached.
    pub train_accuracy: f64,
    /// Held-out accuracy.
    pub test_accuracy: f64,
    /// Transistors in the corresponding 3×n adder.
    pub transistors: usize,
}

/// A8: classification accuracy vs weight bit-width on a hard separable
/// task (6-bit teacher, 4 inputs, 1 % margin — low-precision students
/// cannot represent the boundary exactly). Hardware-in-the-loop with the
/// switch-level evaluator.
pub fn ablation_weight_bits(seed: u64, bits_range: &[u32]) -> Vec<PrecisionRow> {
    let (data, _, _) = Dataset::linearly_separable_with_margin(300, 4, 6, seed, 0.01);
    let (train_set, test_set) = data.split(0.7, seed ^ 0x55);
    bits_range
        .iter()
        .map(|&bits| {
            let mut p = PwmPerceptron::new(
                SwitchLevelEvaluator::paper(),
                WeightVector::zeros(4, bits),
                Reference::ratiometric(0.5),
            );
            let report = train(&mut p, &train_set, &TrainConfig::default()).expect("training runs");
            let test_accuracy = p.accuracy(&test_set).expect("test accuracy");
            PrecisionRow {
                bits,
                train_accuracy: report.final_accuracy,
                test_accuracy,
                transistors: AdderSpec::new(4, bits).transistor_count(),
            }
        })
        .collect()
}

// ------------------------------------------------ A9: adder scaling law

/// One row of the architecture-scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// Number of inputs `k`.
    pub inputs: usize,
    /// Weight width `n` in bits.
    pub bits: u32,
    /// Transistor count.
    pub transistors: usize,
    /// Output LSB voltage step `Vdd/(k·(2ⁿ−1))` — the resolution the
    /// comparator must discriminate.
    pub lsb_voltage: f64,
    /// Steady-state ripple at 500 MHz with mid-scale inputs (switch
    /// level).
    pub ripple: f64,
    /// First-order settling time constant of the output node.
    pub tau: f64,
}

/// A9: how the paper's architecture scales with inputs and weight
/// precision — transistor cost is linear, but the comparator's required
/// resolution shrinks as `1/(k·2ⁿ)`, which is the real scaling limit.
pub fn adder_scaling(tech: &Technology, shapes: &[(usize, u32)]) -> Vec<ScalingRow> {
    shapes
        .iter()
        .map(|&(inputs, bits)| {
            let spec = AdderSpec::new(inputs, bits);
            let duties = vec![0.5; inputs];
            let weights = vec![spec.max_weight() / 2 + 1; inputs];
            let node = pwmcell::PwmNode::weighted_adder(
                tech,
                &duties,
                &weights,
                bits,
                tech.frequency.value(),
                tech.vdd.value(),
                tech.cout_adder.value(),
            );
            let ron = 0.5 * (tech.ron_n().value() + tech.ron_p().value());
            let units = inputs as f64 * spec.max_weight() as f64;
            ScalingRow {
                inputs,
                bits,
                transistors: spec.transistor_count(),
                lsb_voltage: tech.vdd.value() / units,
                ripple: node.steady_state_ripple(),
                tau: (tech.rout.value() + ron) / units * tech.cout_adder.value(),
            }
        })
        .collect()
}

// --------------------------------------------------- A11: temperature

/// One temperature point of the thermal robustness study.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureRow {
    /// Ambient temperature in °C.
    pub celsius: f64,
    /// Adder outputs for the six Table II rows (switch level).
    pub vouts: [f64; 6],
    /// Largest deviation from the 27 °C nominal, volts.
    pub max_shift: f64,
}

/// A11: Table II outputs across the military temperature range. The
/// temporal code survives: temperature moves the on-resistances, but
/// those cancel in the conductance *ratios* just like process mismatch
/// does.
pub fn temperature_sweep(tech: &Technology, temps: &[f64]) -> Vec<TemperatureRow> {
    let vout_at = |t: &Technology, i: usize| {
        let (duties, weights) = TABLE2_CONFIGS[i];
        pwmcell::PwmNode::weighted_adder(
            t,
            &duties,
            &weights,
            3,
            t.frequency.value(),
            t.vdd.value(),
            t.cout_adder.value(),
        )
        .steady_state_average()
    };
    let nominal: Vec<f64> = (0..6).map(|i| vout_at(tech, i)).collect();
    temps
        .iter()
        .map(|&celsius| {
            let t = tech.at_temperature(celsius);
            let mut vouts = [0.0; 6];
            let mut max_shift = 0.0f64;
            for (i, v) in vouts.iter_mut().enumerate() {
                *v = vout_at(&t, i);
                max_shift = max_shift.max((*v - nominal[i]).abs());
            }
            TemperatureRow {
                celsius,
                vouts,
                max_shift,
            }
        })
        .collect()
}

// ------------------------------------------------- decision-boundary map

/// One grid point of the decision-boundary map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapPoint {
    /// Duty cycle of input 0.
    pub d0: f64,
    /// Duty cycle of input 1.
    pub d1: f64,
    /// Analog sum as a fraction of Vdd (switch level).
    pub ratio: f64,
    /// Comparator decision against the given reference.
    pub fires: bool,
}

/// Decision-boundary map of a 2-input perceptron over the full duty
/// plane (switch-level hardware model) — the geometric picture of what
/// the temporal dot product computes. `weights` fixes the slope, the
/// ratiometric `reference` fixes the intercept.
pub fn decision_map(
    tech: &Technology,
    weights: &[u32; 2],
    reference: f64,
    grid: usize,
) -> Vec<MapPoint> {
    let pts = sweep::linspace(0.0, 1.0, grid.max(2));
    let mut cells = Vec::with_capacity(pts.len() * pts.len());
    for &d0 in &pts {
        for &d1 in &pts {
            cells.push((d0, d1));
        }
    }
    sweep::sweep(&cells, |&(d0, d1), _| {
        let v = pwmcell::PwmNode::weighted_adder(
            tech,
            &[d0, d1],
            weights,
            3,
            tech.frequency.value(),
            tech.vdd.value(),
            tech.cout_adder.value(),
        )
        .steady_state_average();
        let ratio = v / tech.vdd.value();
        MapPoint {
            d0,
            d1,
            ratio,
            fires: ratio > reference,
        }
    })
}

// ------------------------------------------------------ A12: noise

/// One point of the output-noise budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseRow {
    /// Output capacitor in farads.
    pub cout: f64,
    /// Integrated RMS output noise in volts.
    pub rms_noise: f64,
    /// The kT/C bound for that capacitor.
    pub ktc: f64,
    /// The adder's output LSB (119 mV at 2.5 V) divided by the noise —
    /// how many sigmas of margin a 1-LSB decision has.
    pub lsb_over_noise: f64,
}

/// A12: thermal-noise budget of the adder output node vs Cout. Shows the
/// intrinsic noise sits near the kT/C bound, orders of magnitude below
/// the 119 mV LSB — device mismatch (A3), not noise, limits precision.
pub fn noise_budget(tech: &Technology, couts: &[f64]) -> Vec<NoiseRow> {
    use mssim::prelude::*;
    let lsb = tech.vdd.value() / 21.0;
    couts
        .iter()
        .map(|&cout| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
            let adder = pwmcell::WeightedAdder::build(
                &mut ckt,
                tech,
                "a",
                vdd,
                &[7, 7, 7],
                AdderSpec::paper_3x3(),
            );
            ckt.set_capacitance(adder.cout, cout)
                .expect("is a capacitor");
            // Static worst-ish case: one input high, two low.
            for (i, lv) in [tech.vdd.value(), 0.0, 0.0].into_iter().enumerate() {
                ckt.vsource(
                    &format!("VIN{i}"),
                    adder.inputs[i],
                    Circuit::GND,
                    Waveform::dc(lv),
                );
            }
            let r_eff = tech.rout.value() / 21.0;
            let fc = 1.0 / (2.0 * std::f64::consts::PI * r_eff * cout);
            let freqs = sweep::logspace(fc / 1e4, fc * 1e4, 300);
            let result = Session::new(&ckt)
                .noise(adder.output, &freqs)
                .expect("noise analysis converges");
            let rms = result.integrated_rms();
            NoiseRow {
                cout,
                rms_noise: rms,
                ktc: (1.380649e-23 * 300.0 / cout).sqrt(),
                lsb_over_noise: lsb / rms,
            }
        })
        .collect()
}

// ------------------------------------------ A10: full Fig. 1 perceptron

/// One classification of the complete transistor-level perceptron.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullPerceptronRow {
    /// Table II row index.
    pub row: usize,
    /// Eq. 2 output as a fraction of Vdd.
    pub ratio: f64,
    /// Decision at 2.5 V.
    pub fires_nominal: bool,
    /// Decision at 1.8 V.
    pub fires_low_vdd: bool,
    /// What the ideal comparator against 0.5·Vdd would say.
    pub expected: bool,
}

/// A10: the complete Fig. 1 circuit (adder + divider reference +
/// transistor comparator, 62 transistors) classifying every Table II row
/// against a 0.5·Vdd reference at two supplies.
pub fn full_perceptron(tech: &Technology, quality: &SimQuality) -> Vec<FullPerceptronRow> {
    use pwmcell::PerceptronTestbench;
    let tb = PerceptronTestbench::new(tech, AdderSpec::paper_3x3(), 0.5);
    let rows: Vec<usize> = (0..TABLE2_CONFIGS.len()).collect();
    sweep::sweep(&rows, |&i, _| {
        let (duties, weights) = TABLE2_CONFIGS[i];
        let ratio = analytic::adder_vout(1.0, &duties, &weights, 3);
        let fires_nominal = tb
            .classify(&duties, &weights, Volts(2.5), quality)
            .expect("classification converges");
        let fires_low_vdd = tb
            .classify(&duties, &weights, Volts(1.8), quality)
            .expect("classification converges");
        FullPerceptronRow {
            row: i,
            ratio,
            fires_nominal,
            fires_low_vdd,
            expected: ratio > 0.5,
        }
    })
}

// ----------------------------------------------------------- End-to-end

/// End-to-end training demo used by the `repro train` experiment:
/// trains on a separable task with the switch-level evaluator and
/// reports train/test accuracy.
pub fn train_demo(seed: u64) -> (f64, f64) {
    let (data, _, _) = Dataset::linearly_separable(160, 3, 3, seed);
    let (train_set, test_set) = data.split(0.7, seed ^ 0xABCD);
    let mut p = PwmPerceptron::new(
        SwitchLevelEvaluator::paper(),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    let report = train(&mut p, &train_set, &TrainConfig::default()).expect("training runs");
    let test_acc = p.accuracy(&test_set).expect("test accuracy");
    (report.final_accuracy, test_acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::umc65_like()
    }

    /// Reduced-grid smoke versions of every experiment, so the harness
    /// itself is covered by `cargo test`.
    #[test]
    fn fig4_shape() {
        let rows = fig4(&tech(), &SimQuality::fast(), 3);
        assert_eq!(rows.len(), 3);
        // Inverse proportionality: duty 0 high, duty 1 low (100k column).
        assert!(rows[0].vout_100k > 2.2);
        assert!(rows[2].vout_100k < 0.3);
        // 100k tracks the ideal line better than no-load at mid duty.
        let mid = &rows[1];
        assert!((mid.vout_100k - mid.ideal).abs() <= (mid.vout_no_load - mid.ideal).abs() + 1e-9);
    }

    #[test]
    fn fig5_is_flat() {
        let rows = fig5(&tech(), &SimQuality::fast(), &[50e6, 500e6]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].vout_dc50 - rows[1].vout_dc50).abs() < 0.15);
        assert!(rows[0].vout_dc25 > rows[0].vout_dc75);
    }

    #[test]
    fn table2_matches_paper_shape() {
        // One row at fast quality to keep the unit suite quick; all six
        // at paper quality run in `repro`.
        let rows = table2(&tech(), &SimQuality::fast());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.error.abs() < 0.15,
                "row {:?}: sim {} vs theory {}",
                r.duties,
                r.v_sim,
                r.v_theory
            );
        }
    }

    #[test]
    fn kessels_table_is_exact() {
        let rows = kessels_duty_table(3);
        for (m, expected, measured) in rows {
            assert!(
                (expected - measured).abs() < 1e-9,
                "M={m}: {measured} vs {expected}"
            );
        }
    }

    #[test]
    fn baseline_comparison_shows_the_gap() {
        let c = baseline_comparison(1e6, 10);
        assert_eq!(c.pwm_transistors, 54);
        assert!(c.digital_transistors > 20 * c.pwm_transistors);
        assert!(c.digital_power > 0.0);
    }

    #[test]
    fn mc_switch_level_is_tight() {
        let rows = mc_switch_level(&tech(), 32, 9);
        assert_eq!(rows.len(), 6);
        for (i, s) in rows {
            assert!(
                s.relative_std() < 0.06,
                "row {i}: cv = {}",
                s.relative_std()
            );
        }
    }

    #[test]
    fn table2_frequency_invariance_holds() {
        let rows = table2_frequency_invariance(&tech(), &[1e6, 100e6, 1e9]);
        for row_idx in 0..6 {
            let vs: Vec<f64> = rows
                .iter()
                .filter(|(_, i, _)| *i == row_idx)
                .map(|(_, _, v)| *v)
                .collect();
            let spread = vs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - vs.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(spread < 0.05, "row {row_idx} spread {spread}");
        }
    }
}
