//! `repro faults` — export and gating of the fault-injection campaign.
//!
//! The campaign itself lives in [`pwm_perceptron::faults`]; this module
//! renders its report as the schema-versioned `mssim-faults-v2` JSON
//! record (`results/FAULTS_mssim.json`) and implements the CI gate: every
//! enumerated fault must land in exactly one of the four outcome classes
//! with a coherent record behind it, or the `repro` run fails.
//!
//! v2 adds per-row `static_verdict`/`enclosure` fields and a top-level
//! `triage` object (all `null` on non-triaged runs, so the collapsed /
//! uncollapsed `cmp` gate in CI keeps working bitwise): a row resolved by
//! the static triage tier carries its guaranteed verdict and Vout
//! enclosure instead of a measured output.

use pwm_perceptron::faults::{CampaignConfig, CampaignReport, FaultClass};

/// Schema tag of the exported record.
pub const FAULTS_SCHEMA: &str = "mssim-faults-v2";

/// The four class tags, in report order.
pub const CLASS_TAGS: [&str; 4] = ["masked", "degraded", "functional_fail", "solver_fail"];

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.6}"),
        _ => "null".into(),
    }
}

/// Returns the report's outcomes sorted by fault label (labels are
/// unique per universe, so the order is total). Both the exported JSON
/// and the `repro faults` verdict table use this order: it is a pure
/// function of the fault universe, hence byte-stable across thread
/// counts, sweep scheduling and universe enumeration changes.
pub fn sorted_outcomes(report: &CampaignReport) -> Vec<&pwm_perceptron::faults::FaultOutcome> {
    let mut outcomes: Vec<_> = report.outcomes.iter().collect();
    outcomes.sort_by(|a, b| a.label.cmp(&b.label));
    outcomes
}

/// Serializes a campaign report as the `mssim-faults-v1` JSON document.
///
/// Outcomes are emitted sorted by fault label ([`sorted_outcomes`]) and
/// every number is printed with fixed precision, so two runs of the same
/// deterministic campaign produce bitwise-identical documents — and a
/// collapsed campaign produces the same document as an uncollapsed one
/// (collapse statistics are deliberately not serialized, so `repro
/// faults` and `repro faults --no-collapse` artifacts can be `cmp`ed).
pub fn to_json(report: &CampaignReport, config: &CampaignConfig, fast: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{FAULTS_SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if fast { "fast" } else { "full" }
    ));
    out.push_str(&format!("  \"frequency_hz\": {:.0},\n", config.frequency));
    out.push_str(&format!("  \"periods\": {},\n", config.periods));
    out.push_str(&format!(
        "  \"steps_per_period\": {},\n",
        config.steps_per_period
    ));
    out.push_str(&format!("  \"avg_periods\": {},\n", config.avg_periods));
    out.push_str(&format!(
        "  \"masked_epsilon_v\": {:.6},\n",
        config.masked_epsilon
    ));
    out.push_str(&format!(
        "  \"fail_epsilon_v\": {:.6},\n",
        config.fail_epsilon
    ));
    out.push_str(&format!("  \"seed\": {},\n", config.universe.seed));
    out.push_str(&format!(
        "  \"analytic_vout\": {:.6},\n",
        report.analytic_vout
    ));
    out.push_str(&format!("  \"golden_vout\": {:.6},\n", report.golden_vout));
    out.push_str("  \"counts\": {");
    for (i, tag) in CLASS_TAGS.iter().enumerate() {
        out.push_str(&format!(
            "{}\"{tag}\": {}",
            if i == 0 { " " } else { ", " },
            report.count(tag)
        ));
    }
    out.push_str(" },\n");
    out.push_str(&format!(
        "  \"rescue_attempts\": {},\n",
        report.rescue_attempts()
    ));
    match &report.triage {
        Some(t) => out.push_str(&format!(
            "  \"triage\": {{ \"universe\": {}, \"masked\": {}, \"failed\": {}, \"simulated\": {}, \"ratio\": {:.6} }},\n",
            t.universe,
            t.masked,
            t.failed,
            t.simulated,
            t.triage_ratio()
        )),
        None => out.push_str("  \"triage\": null,\n"),
    }
    out.push_str("  \"outcomes\": [\n");
    let outcomes = sorted_outcomes(report);
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": \"{}\",\n", esc(&o.label)));
        out.push_str(&format!("      \"kind\": \"{}\",\n", o.kind));
        out.push_str(&format!("      \"class\": \"{}\",\n", o.class.tag()));
        out.push_str(&format!(
            "      \"static_verdict\": {},\n",
            match o.static_verdict {
                Some(v) => format!("\"{}\"", v.tag()),
                None => "null".into(),
            }
        ));
        out.push_str(&format!(
            "      \"enclosure\": {},\n",
            match o.enclosure {
                Some((lo, hi)) => format!("[{lo:.9e}, {hi:.9e}]"),
                None => "null".into(),
            }
        ));
        out.push_str(&format!("      \"vout\": {},\n", opt_num(o.vout)));
        out.push_str(&format!("      \"error_v\": {},\n", opt_num(o.error_v)));
        out.push_str(&format!(
            "      \"partial\": {},\n",
            matches!(o.class, FaultClass::SolverFail { partial: true })
        ));
        out.push_str(&format!(
            "      \"rescue_attempts\": {},\n",
            o.rescue_attempts
        ));
        out.push_str(&format!(
            "      \"rescue_recoveries\": {},\n",
            o.rescue_recoveries
        ));
        out.push_str(&format!(
            "      \"detail\": {}\n",
            match &o.error {
                Some(e) => format!("\"{}\"", esc(e)),
                None => "null".into(),
            }
        ));
        out.push_str(if i + 1 == outcomes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The CI gate: returns the labels of every outcome that is not cleanly
/// classified. A clean row satisfies:
///
/// * any measured `vout` is finite,
/// * `Masked`/`Degraded`/`FunctionalFail` rows carry a measured output —
///   or a static verdict backed by a guaranteed enclosure (the triage
///   tier's rows never ran a transient),
/// * `SolverFail` rows carry an explanation — either the ladder's
///   `Partial` verdict or a recorded solver error,
/// * class counts tile the universe exactly.
pub fn unclassified(report: &CampaignReport) -> Vec<String> {
    let mut bad: Vec<String> = report
        .outcomes
        .iter()
        .filter(|o| {
            let finite = o.vout.is_none_or(f64::is_finite);
            let statically_resolved = o.static_verdict.is_some() && o.enclosure.is_some();
            let coherent = match o.class {
                FaultClass::Masked
                | FaultClass::Degraded { .. }
                | FaultClass::FunctionalFail { .. } => o.vout.is_some() || statically_resolved,
                FaultClass::SolverFail { partial } => partial || o.error.is_some(),
            };
            !(finite && coherent)
        })
        .map(|o| o.label.clone())
        .collect();
    let tiled: usize = CLASS_TAGS.iter().map(|t| report.count(t)).sum();
    if tiled != report.outcomes.len() {
        bad.push(format!(
            "class counts tile {tiled} of {} outcomes",
            report.outcomes.len()
        ));
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwm_perceptron::faults::{switch_adder_campaign, FaultOutcome};
    use pwmcell::{AdderSpec, Technology};

    fn tiny_campaign() -> (CampaignReport, CampaignConfig) {
        let config = CampaignConfig {
            periods: 8,
            steps_per_period: 40,
            avg_periods: 2,
            ..CampaignConfig::default()
        };
        let report = switch_adder_campaign(
            &Technology::umc65_like(),
            AdderSpec::new(1, 2),
            &[3],
            &[0.4],
            &config,
        )
        .unwrap();
        (report, config)
    }

    #[test]
    fn json_is_bitwise_deterministic() {
        let (a, config) = tiny_campaign();
        let (b, _) = tiny_campaign();
        let ja = to_json(&a, &config, true);
        let jb = to_json(&b, &config, true);
        assert_eq!(ja, jb, "same seed must give bitwise-identical JSON");
        assert!(ja.contains(FAULTS_SCHEMA));
        assert!(ja.contains("\"outcomes\": ["));
    }

    #[test]
    fn json_outcomes_are_label_sorted_and_collapse_invariant() {
        let (report, config) = tiny_campaign();
        let labels: Vec<&str> = sorted_outcomes(&report)
            .iter()
            .map(|o| o.label.as_str())
            .collect();
        let mut resorted = labels.clone();
        resorted.sort_unstable();
        assert_eq!(labels, resorted, "JSON rows are sorted by fault label");
        // A collapsed campaign must serialize to the identical document:
        // collapse metadata stays out of the record on purpose.
        let collapsed_config = CampaignConfig {
            collapse: true,
            ..config.clone()
        };
        let collapsed = switch_adder_campaign(
            &Technology::umc65_like(),
            AdderSpec::new(1, 2),
            &[3],
            &[0.4],
            &collapsed_config,
        )
        .unwrap();
        assert_eq!(
            to_json(&report, &config, true),
            to_json(&collapsed, &collapsed_config, true),
            "collapsed and full campaigns must export bitwise-identical JSON"
        );
    }

    #[test]
    fn tiny_campaign_passes_the_gate() {
        let (report, _) = tiny_campaign();
        assert!(
            unclassified(&report).is_empty(),
            "every outcome must classify cleanly"
        );
    }

    #[test]
    fn gate_flags_incoherent_rows() {
        let (mut report, _) = tiny_campaign();
        report.outcomes.push(FaultOutcome {
            label: "bogus".into(),
            kind: "resistor_open",
            vout: None,
            error_v: None,
            class: FaultClass::SolverFail { partial: false },
            rescue_attempts: 0,
            rescue_recoveries: 0,
            error: None, // hard solver failure with no recorded reason
            static_verdict: None,
            enclosure: None,
        });
        let bad = unclassified(&report);
        assert_eq!(bad, vec!["bogus".to_string()]);
    }

    /// Statically-resolved rows carry no measured output but must still
    /// pass the gate, and the v2 document records their verdict and
    /// enclosure.
    #[test]
    fn triaged_campaign_passes_the_gate_and_exports_verdicts() {
        let config = CampaignConfig {
            periods: 8,
            steps_per_period: 40,
            avg_periods: 2,
            triage: true,
            ..CampaignConfig::default()
        };
        let report = switch_adder_campaign(
            &Technology::umc65_like(),
            AdderSpec::new(1, 2),
            &[3],
            &[0.4],
            &config,
        )
        .unwrap();
        assert!(
            unclassified(&report).is_empty(),
            "statically-resolved rows must classify cleanly"
        );
        let stats = report.triage.expect("triaged run records stats");
        assert!(stats.masked + stats.failed > 0, "triage resolves something");
        let json = to_json(&report, &config, true);
        assert!(json.contains("\"schema\": \"mssim-faults-v2\""));
        assert!(json.contains("\"triage\": { \"universe\":"));
        assert!(json.contains("\"static_verdict\": \"guaranteed_"));
        assert!(json.contains("\"enclosure\": ["));
    }
}
