//! # gatesim — an event-driven gate-level digital simulator
//!
//! The digital substrate of the PWM-perceptron reproduction. It serves two
//! purposes:
//!
//! 1. **The Kessels-counter PWM generator** (paper reference \[8\]): the
//!    paper's conclusion proposes pairing the mixed-signal perceptron with
//!    a power-elastic PWM source built from a self-timed loadable modulo-N
//!    counter. [`kessels::KesselsPwm`] is a gate-level loadable counter
//!    PWM generator whose duty cycle is a pure count ratio — and therefore
//!    supply- and frequency-independent, like the perceptron it feeds.
//! 2. **The digital baseline**: the `baseline` crate builds a conventional
//!    fixed-point multiply–accumulate perceptron out of [`blocks`] to make
//!    the paper's transistor-count and simplicity comparison quantitative.
//!
//! The simulator kernel ([`Simulator`]) is a classic discrete-event
//! engine: two-input gates and D flip-flops with picosecond delays, a
//! binary-heap event queue with deterministic tie-breaking, and per-net
//! toggle counting that feeds the activity-based power model ([`power`]).
//!
//! ## Example: a ring oscillator
//!
//! ```
//! use gatesim::{GateKind, Netlist, Simulator};
//!
//! let mut nl = Netlist::new();
//! let a = nl.net("a");
//! let b = nl.net("b");
//! let c = nl.net("c");
//! nl.gate(GateKind::Not, &[a], b, 10);
//! nl.gate(GateKind::Not, &[b], c, 10);
//! nl.gate(GateKind::Not, &[c], a, 10);
//! let mut sim = Simulator::new(&nl);
//! sim.run_until(10_000);
//! // Three inverters of 10 ps: the loop oscillates with period 60 ps.
//! assert!(sim.toggles(a) > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod kessels;
pub mod lint;
pub mod netlist;
pub mod power;
pub mod sim;
pub mod vcd;

pub use netlist::{DffId, GateId, GateKind, NetId, Netlist};
pub use power::{PowerModel, PowerReport};
pub use sim::Simulator;
