//! Loadable modulo-N counter PWM generator — the paper's reference \[8\].
//!
//! The paper's conclusion proposes feeding the perceptron from a
//! power-elastic PWM generator "based on a self-timed loadable modulo N
//! counter" (Benafa, Sokolov, Yakovlev — *Loadable Kessels counter*,
//! ASYNC 2018). The essential property is that the generated duty cycle is
//! a **ratio of counts**, `M / N`, so it is exactly as supply- and
//! frequency-independent as the perceptron that consumes it.
//!
//! **Substitution note** (see DESIGN.md): the original is a self-timed
//! (asynchronous, handshake-based) counter; this implementation is its
//! synchronous functional equivalent — a free-running `n`-bit counter with
//! a loadable threshold register and a magnitude comparator, built from
//! the same standard cells the rest of `gatesim` uses. The duty-ratio
//! property, which is what the perceptron experiments need, is preserved
//! bit-exactly; only the clockless implementation style is not modelled.

use crate::blocks::{self, drive_word};
use crate::netlist::{NetId, Netlist};
use crate::sim::Simulator;

/// A gate-level loadable modulo-`2^bits` counter PWM generator.
///
/// The output is high while `count < threshold`, so the duty cycle is
/// `threshold / 2^bits` exactly, independent of clock frequency.
#[derive(Debug, Clone)]
pub struct KesselsPwm {
    bits: u32,
    /// Clock input net.
    pub clock: NetId,
    /// Loadable threshold bus `M` (LSB-first input nets).
    pub threshold: Vec<NetId>,
    /// Counter state outputs (LSB-first).
    pub count: Vec<NetId>,
    /// The PWM output: high while `count < threshold`.
    pub pwm_out: NetId,
}

impl KesselsPwm {
    /// Builds the generator into `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16`.
    pub fn build(netlist: &mut Netlist, bits: u32) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "counter width must be 1..=16 bits"
        );
        let clock = netlist.net("kpwm_clk");
        let count: Vec<NetId> = (0..bits)
            .map(|i| netlist.net(&format!("kpwm_q{i}")))
            .collect();
        // One extra threshold bit so M = N (duty 100 %) is loadable.
        let threshold: Vec<NetId> = (0..=bits)
            .map(|i| netlist.net(&format!("kpwm_m{i}")))
            .collect();
        // next = count + 1 (wraps naturally modulo 2^bits).
        let (next, _carry) = blocks::incrementer(netlist, &count);
        for (&d, &q) in next.iter().zip(&count) {
            netlist.dff(d, clock, q, blocks::BLOCK_DELAY_PS);
        }
        let mut count_ext = count.clone();
        count_ext.push(blocks::const_zero(netlist));
        let pwm_out = blocks::less_than(netlist, &count_ext, &threshold);
        KesselsPwm {
            bits,
            clock,
            threshold,
            count,
            pwm_out,
        }
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The modulus `N = 2^bits`.
    pub fn modulus(&self) -> u64 {
        1 << self.bits
    }

    /// The exact duty cycle produced for a threshold value.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > N`.
    pub fn duty_for(&self, threshold: u64) -> f64 {
        assert!(threshold <= self.modulus(), "threshold exceeds modulus");
        threshold as f64 / self.modulus() as f64
    }
}

/// Simulates the generator and measures the produced duty cycle by
/// sampling the output just before each rising clock edge over `wraps`
/// full counter wraps (after one warm-up wrap).
///
/// # Panics
///
/// Panics if `threshold > 2^bits` or `wraps == 0`.
pub fn measure_duty(
    netlist: &Netlist,
    pwm: &KesselsPwm,
    threshold: u64,
    wraps: usize,
    period_ps: u64,
) -> f64 {
    assert!(wraps > 0, "need at least one wrap");
    assert!(threshold <= pwm.modulus(), "threshold exceeds modulus");
    let mut sim = Simulator::new(netlist);
    drive_word(&mut sim, &pwm.threshold, threshold);
    let n = pwm.modulus() as usize;
    // Warm-up: one full wrap lets the comparator settle.
    sim.run_clock(pwm.clock, n, period_ps);
    let mut high = 0usize;
    let total = n * wraps;
    for _ in 0..total {
        sim.run_clock(pwm.clock, 1, period_ps);
        if sim.value(pwm.pwm_out) {
            high += 1;
        }
    }
    high as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_equals_threshold_ratio() {
        let mut nl = Netlist::new();
        let pwm = KesselsPwm::build(&mut nl, 4);
        for threshold in [0u64, 1, 5, 8, 12, 16] {
            let duty = measure_duty(&nl, &pwm, threshold, 2, 1_000);
            let expect = threshold as f64 / 16.0;
            assert!(
                (duty - expect).abs() < 1e-9,
                "M={threshold}: duty {duty} expected {expect}"
            );
            assert!((pwm.duty_for(threshold) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn duty_is_frequency_independent() {
        // The power-elasticity property: the count ratio does not care
        // about the clock period (as long as it clears the comparator's
        // critical path of a few hundred picoseconds).
        let mut nl = Netlist::new();
        let pwm = KesselsPwm::build(&mut nl, 3);
        let d_fast = measure_duty(&nl, &pwm, 3, 2, 1_000);
        let d_slow = measure_duty(&nl, &pwm, 3, 2, 100_000);
        assert_eq!(d_fast, d_slow);
        assert!((d_fast - 3.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn counter_counts_modulo_n() {
        let mut nl = Netlist::new();
        let pwm = KesselsPwm::build(&mut nl, 3);
        let mut sim = Simulator::new(&nl);
        drive_word(&mut sim, &pwm.threshold, 0);
        let mut seen = Vec::new();
        for _ in 0..10 {
            sim.run_clock(pwm.clock, 1, 1_000);
            seen.push(blocks::read_word(&sim, &pwm.count));
        }
        // Starts at 0, so after k edges the count is k mod 8.
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7, 0, 1, 2]);
    }

    #[test]
    fn generator_has_plausible_cost() {
        let mut nl = Netlist::new();
        let _ = KesselsPwm::build(&mut nl, 8);
        let t = nl.transistor_count();
        // 8 DFFs + incrementer + comparator: a few hundred transistors.
        assert!(t > 100 && t < 2000, "transistors = {t}");
    }

    #[test]
    #[should_panic(expected = "width must be 1..=16")]
    fn rejects_zero_width() {
        let mut nl = Netlist::new();
        let _ = KesselsPwm::build(&mut nl, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds modulus")]
    fn rejects_oversized_threshold() {
        let mut nl = Netlist::new();
        let pwm = KesselsPwm::build(&mut nl, 3);
        let _ = pwm.duty_for(9);
    }
}
