//! Reusable datapath builders: adders, comparators, multipliers.
//!
//! All multi-bit buses are `&[NetId]` slices in **LSB-first** order. The
//! builders instantiate plain two-input standard cells so the transistor
//! counts reported by [`Netlist::transistor_count`] reflect a realistic
//! static-CMOS implementation — the quantity the paper's simplicity
//! argument (54 transistors vs. a full digital MAC) is about.

use crate::netlist::{GateKind, NetId, Netlist};
use crate::sim::Simulator;

/// Default gate delay used by the block builders, in picoseconds.
pub const BLOCK_DELAY_PS: u64 = 10;

/// A constant-0 net (fresh undriven net, which the simulator holds low).
pub fn const_zero(nl: &mut Netlist) -> NetId {
    nl.fresh_net()
}

/// A constant-1 net (inverter on a constant-0 net).
pub fn const_one(nl: &mut Netlist) -> NetId {
    let zero = const_zero(nl);
    let one = nl.fresh_net();
    nl.gate(GateKind::Not, &[zero], one, BLOCK_DELAY_PS);
    one
}

/// Half adder: returns `(sum, carry)`.
pub fn half_adder(nl: &mut Netlist, a: NetId, b: NetId) -> (NetId, NetId) {
    let sum = nl.fresh_net();
    let carry = nl.fresh_net();
    nl.gate(GateKind::Xor2, &[a, b], sum, BLOCK_DELAY_PS);
    nl.gate(GateKind::And2, &[a, b], carry, BLOCK_DELAY_PS);
    (sum, carry)
}

/// Full adder: returns `(sum, carry_out)`.
pub fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let (s1, c1) = half_adder(nl, a, b);
    let (sum, c2) = half_adder(nl, s1, cin);
    let cout = nl.fresh_net();
    nl.gate(GateKind::Or2, &[c1, c2], cout, BLOCK_DELAY_PS);
    (sum, cout)
}

/// Ripple-carry adder over equal-width buses; returns `(sum, carry_out)`.
/// `cin` defaults to constant 0.
///
/// # Panics
///
/// Panics if the buses differ in width or are empty.
pub fn ripple_adder(
    nl: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len(), "adder buses must match in width");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let mut carry = match cin {
        Some(c) => c,
        None => const_zero(nl),
    };
    let mut sums = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(nl, ai, bi, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Incrementer (`a + 1`); returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if `a` is empty.
pub fn incrementer(nl: &mut Netlist, a: &[NetId]) -> (Vec<NetId>, NetId) {
    assert!(!a.is_empty(), "incrementer needs at least one bit");
    let mut carry = const_one(nl);
    let mut sums = Vec::with_capacity(a.len());
    for &ai in a {
        let (s, c) = half_adder(nl, ai, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Unsigned magnitude comparator: output is high when `a < b`.
///
/// # Panics
///
/// Panics if the buses differ in width or are empty.
pub fn less_than(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> NetId {
    assert_eq!(a.len(), b.len(), "comparator buses must match in width");
    assert!(!a.is_empty(), "comparator needs at least one bit");
    let mut lt = const_zero(nl);
    let mut eq = const_one(nl);
    // Ripple from the MSB down: a < b once a higher bit decides.
    for i in (0..a.len()).rev() {
        let na = nl.fresh_net();
        nl.gate(GateKind::Not, &[a[i]], na, BLOCK_DELAY_PS);
        let bit_lt = nl.fresh_net();
        nl.gate(GateKind::And2, &[na, b[i]], bit_lt, BLOCK_DELAY_PS);
        let decided_here = nl.fresh_net();
        nl.gate(GateKind::And2, &[eq, bit_lt], decided_here, BLOCK_DELAY_PS);
        let lt_next = nl.fresh_net();
        nl.gate(GateKind::Or2, &[lt, decided_here], lt_next, BLOCK_DELAY_PS);
        lt = lt_next;
        let bit_eq = nl.fresh_net();
        nl.gate(GateKind::Xnor2, &[a[i], b[i]], bit_eq, BLOCK_DELAY_PS);
        let eq_next = nl.fresh_net();
        nl.gate(GateKind::And2, &[eq, bit_eq], eq_next, BLOCK_DELAY_PS);
        eq = eq_next;
    }
    lt
}

/// Gates every bit of `word` with `enable` (AND array).
pub fn and_word(nl: &mut Netlist, word: &[NetId], enable: NetId) -> Vec<NetId> {
    word.iter()
        .map(|&w| {
            let y = nl.fresh_net();
            nl.gate(GateKind::And2, &[w, enable], y, BLOCK_DELAY_PS);
            y
        })
        .collect()
}

/// Unsigned shift-add array multiplier; the product bus is
/// `a.len() + b.len()` bits wide.
///
/// # Panics
///
/// Panics if either bus is empty.
pub fn array_multiplier(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    assert!(!a.is_empty() && !b.is_empty(), "multiplier buses are empty");
    let width = a.len() + b.len();
    // acc starts as the zero-extended first partial product.
    let mut acc: Vec<NetId> = {
        let pp0 = and_word(nl, a, b[0]);
        let mut v = pp0;
        while v.len() < width {
            v.push(const_zero(nl));
        }
        v
    };
    for (j, &bj) in b.iter().enumerate().skip(1) {
        let pp = and_word(nl, a, bj);
        // Shift by j and zero-extend to full width.
        let mut shifted: Vec<NetId> = Vec::with_capacity(width);
        for _ in 0..j {
            shifted.push(const_zero(nl));
        }
        shifted.extend_from_slice(&pp);
        while shifted.len() < width {
            shifted.push(const_zero(nl));
        }
        let (sum, _) = ripple_adder(nl, &acc, &shifted, None);
        acc = sum;
    }
    acc
}

/// Drives an input bus (LSB-first) with an integer value.
///
/// # Panics
///
/// Panics if any bus net is driven by the netlist.
pub fn drive_word(sim: &mut Simulator<'_>, bus: &[NetId], value: u64) {
    for (i, &net) in bus.iter().enumerate() {
        sim.set_input(net, (value >> i) & 1 == 1);
    }
}

/// Reads a bus (LSB-first) as an integer.
pub fn read_word(sim: &Simulator<'_>, bus: &[NetId]) -> u64 {
    bus.iter()
        .enumerate()
        .map(|(i, &net)| (sim.value(net) as u64) << i)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an input bus of named nets.
    fn input_bus(nl: &mut Netlist, prefix: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| nl.net(&format!("{prefix}{i}")))
            .collect()
    }

    fn settle(sim: &mut Simulator<'_>) {
        let t = sim.time();
        sim.run_until(t + 100_000);
    }

    #[test]
    fn full_adder_truth_table() {
        for a in 0..2u64 {
            for b in 0..2u64 {
                for c in 0..2u64 {
                    let mut nl = Netlist::new();
                    let na = nl.net("a");
                    let nb = nl.net("b");
                    let nc = nl.net("c");
                    let (s, co) = full_adder(&mut nl, na, nb, nc);
                    let mut sim = Simulator::new(&nl);
                    sim.set_input(na, a == 1);
                    sim.set_input(nb, b == 1);
                    sim.set_input(nc, c == 1);
                    settle(&mut sim);
                    let total = a + b + c;
                    assert_eq!(sim.value(s) as u64, total & 1, "sum a{a} b{b} c{c}");
                    assert_eq!(sim.value(co) as u64, total >> 1, "carry a{a} b{b} c{c}");
                }
            }
        }
    }

    #[test]
    fn ripple_adder_exhaustive_4bit() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let (sum, cout) = ripple_adder(&mut nl, &a, &b, None);
        let mut sim = Simulator::new(&nl);
        for x in 0..16u64 {
            for y in 0..16u64 {
                drive_word(&mut sim, &a, x);
                drive_word(&mut sim, &b, y);
                settle(&mut sim);
                let got = read_word(&sim, &sum) | ((sim.value(cout) as u64) << 4);
                assert_eq!(got, x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn incrementer_wraps() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 3);
        let (sum, cout) = incrementer(&mut nl, &a);
        let mut sim = Simulator::new(&nl);
        for x in 0..8u64 {
            drive_word(&mut sim, &a, x);
            settle(&mut sim);
            let got = read_word(&sim, &sum);
            assert_eq!(got, (x + 1) % 8, "inc {x}");
            assert_eq!(sim.value(cout), x == 7, "carry {x}");
        }
    }

    #[test]
    fn less_than_exhaustive_3bit() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 3);
        let b = input_bus(&mut nl, "b", 3);
        let lt = less_than(&mut nl, &a, &b);
        let mut sim = Simulator::new(&nl);
        for x in 0..8u64 {
            for y in 0..8u64 {
                drive_word(&mut sim, &a, x);
                drive_word(&mut sim, &b, y);
                settle(&mut sim);
                assert_eq!(sim.value(lt), x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_3x3() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 3);
        let b = input_bus(&mut nl, "b", 3);
        let p = array_multiplier(&mut nl, &a, &b);
        assert_eq!(p.len(), 6);
        let mut sim = Simulator::new(&nl);
        for x in 0..8u64 {
            for y in 0..8u64 {
                drive_word(&mut sim, &a, x);
                drive_word(&mut sim, &b, y);
                settle(&mut sim);
                assert_eq!(read_word(&sim, &p), x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn constants_settle() {
        let mut nl = Netlist::new();
        let zero = const_zero(&mut nl);
        let one = const_one(&mut nl);
        let mut sim = Simulator::new(&nl);
        settle(&mut sim);
        assert!(!sim.value(zero));
        assert!(sim.value(one));
    }

    #[test]
    #[should_panic(expected = "must match in width")]
    fn adder_rejects_width_mismatch() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 3);
        let b = input_bus(&mut nl, "b", 2);
        let _ = ripple_adder(&mut nl, &a, &b, None);
    }
}
