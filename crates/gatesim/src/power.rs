//! Activity-based dynamic power estimation.
//!
//! The classic CMOS dynamic-power model: every net transition charges or
//! discharges that net's load capacitance, costing `½·C·Vdd²`. The
//! simulator counts transitions per net; this module assigns each net a
//! load from its fan-in count and converts the toggle record into energy
//! and average power. Together with [`Netlist::transistor_count`] this is
//! what the digital-baseline comparison (paper Section IV) reports.

use crate::netlist::{NetId, Netlist};
use crate::sim::Simulator;

/// Capacitance and supply assumptions for the power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Gate-input load per fan-in, in farads.
    pub cap_per_fanin: f64,
    /// Fixed wire load per net, in farads.
    pub cap_wire: f64,
}

impl PowerModel {
    /// Defaults representative of a 65 nm standard-cell library operated
    /// at the paper's 2.5 V I/O supply: 0.5 fF per gate input plus 1 fF of
    /// wire per net.
    pub fn umc65_like() -> Self {
        PowerModel {
            vdd: 2.5,
            cap_per_fanin: 0.5e-15,
            cap_wire: 1e-15,
        }
    }

    /// Returns a copy with a different supply voltage.
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }

    /// Load capacitance of one net given its fan-in count.
    pub fn net_capacitance(&self, fanins: usize) -> f64 {
        self.cap_wire + self.cap_per_fanin * fanins as f64
    }

    /// Converts a simulator's toggle record over `duration_ps` into a
    /// [`PowerReport`].
    ///
    /// # Panics
    ///
    /// Panics if `duration_ps == 0`.
    pub fn estimate(
        &self,
        netlist: &Netlist,
        sim: &Simulator<'_>,
        duration_ps: u64,
    ) -> PowerReport {
        assert!(duration_ps > 0, "duration must be positive");
        let fanins = fanin_counts(netlist);
        let mut energy = 0.0;
        let mut toggles = 0u64;
        for (net_idx, &count) in sim.toggle_counts().iter().enumerate() {
            let c = self.net_capacitance(fanins[net_idx]);
            energy += count as f64 * 0.5 * c * self.vdd * self.vdd;
            toggles += count;
        }
        let seconds = duration_ps as f64 * 1e-12;
        PowerReport {
            dynamic_watts: energy / seconds,
            energy_joules: energy,
            total_toggles: toggles,
            transistors: netlist.transistor_count(),
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::umc65_like()
    }
}

/// Result of a power estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Average dynamic power over the window, in watts.
    pub dynamic_watts: f64,
    /// Total switching energy over the window, in joules.
    pub energy_joules: f64,
    /// Net transitions observed.
    pub total_toggles: u64,
    /// Transistor count of the netlist (area proxy).
    pub transistors: usize,
}

/// Number of gate/flip-flop inputs attached to each net.
fn fanin_counts(netlist: &Netlist) -> Vec<usize> {
    let mut counts = vec![0usize; netlist.net_count()];
    for gate in netlist.gates() {
        for inp in &gate.inputs {
            counts[inp.index()] += 1;
        }
    }
    for dff in netlist.dffs() {
        counts[dff.d.index()] += 1;
        counts[dff.clock.index()] += 1;
    }
    counts
}

/// Convenience: fan-in count of one net (public for diagnostics).
pub fn net_fanin(netlist: &Netlist, net: NetId) -> usize {
    fanin_counts(netlist)[net.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    #[test]
    fn energy_scales_with_vdd_squared() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Not, &[a], y, 1);
        let mut sim = Simulator::new(&nl);
        sim.run_until(10);
        sim.reset_activity();
        for i in 0..100 {
            sim.set_input(a, i % 2 == 0);
            sim.run_until(sim.time() + 10);
        }
        let m1 = PowerModel::umc65_like().with_vdd(1.0);
        let m2 = PowerModel::umc65_like().with_vdd(2.0);
        let r1 = m1.estimate(&nl, &sim, 1000);
        let r2 = m2.estimate(&nl, &sim, 1000);
        assert!((r2.energy_joules / r1.energy_joules - 4.0).abs() < 1e-9);
        assert_eq!(r1.total_toggles, r2.total_toggles);
    }

    #[test]
    fn power_scales_with_frequency() {
        // Same circuit toggled 2× as often in the same window → 2× power.
        let run = |toggles: usize| {
            let mut nl = Netlist::new();
            let a = nl.net("a");
            let y = nl.net("y");
            nl.gate(GateKind::Not, &[a], y, 1);
            let mut sim = Simulator::new(&nl);
            sim.run_until(10);
            sim.reset_activity();
            for i in 0..toggles {
                sim.set_input(a, i % 2 == 0);
                sim.run_until(sim.time() + 10);
            }
            PowerModel::umc65_like().estimate(&nl, &sim, 100_000)
        };
        let slow = run(50);
        let fast = run(100);
        assert!(
            (fast.dynamic_watts / slow.dynamic_watts - 2.0).abs() < 1e-9,
            "{} vs {}",
            fast.dynamic_watts,
            slow.dynamic_watts
        );
    }

    #[test]
    fn fanin_counting() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y1 = nl.net("y1");
        let y2 = nl.net("y2");
        let q = nl.net("q");
        nl.gate(GateKind::Not, &[a], y1, 1);
        nl.gate(GateKind::Buf, &[a], y2, 1);
        nl.dff(y1, a, q, 1);
        // `a` feeds two gate inputs + one DFF clock = 3.
        assert_eq!(net_fanin(&nl, a), 3);
        assert_eq!(net_fanin(&nl, y1), 1);
        assert_eq!(net_fanin(&nl, q), 0);
    }

    #[test]
    fn idle_circuit_draws_nothing() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Buf, &[a], y, 1);
        let mut sim = Simulator::new(&nl);
        sim.run_until(1000);
        sim.reset_activity();
        sim.run_until(100_000);
        let r = PowerModel::umc65_like().estimate(&nl, &sim, 99_000);
        assert_eq!(r.dynamic_watts, 0.0);
        assert_eq!(r.total_toggles, 0);
    }
}
