//! The discrete-event simulation kernel.
//!
//! Time is measured in integer picoseconds. Every net change is an event;
//! fan-out gates are re-evaluated and schedule their outputs after their
//! propagation delay. D flip-flops sample on the rising edge of their
//! clock net. Ties are broken by insertion sequence, so simulations are
//! fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::netlist::{GateId, NetId, Netlist};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    net: usize,
    value: bool,
}

/// Event-driven simulator over a [`Netlist`].
///
/// The netlist is borrowed for the simulator's lifetime; build the full
/// design first, then simulate.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    /// Last *scheduled* value per net. Gate evaluation compares against
    /// this, not the current value, so a re-evaluation correctly overrides
    /// an in-flight transition (transport-delay semantics: the earlier
    /// event still fires as a glitch, the later one settles the net).
    pending: Vec<bool>,
    toggles: Vec<u64>,
    /// Gates listening on each net.
    gate_fanout: Vec<Vec<usize>>,
    /// DFFs clocked by each net.
    dff_clock_fanout: Vec<Vec<usize>>,
    queue: BinaryHeap<Reverse<Event>>,
    time: u64,
    seq: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with all nets initialised to `false` and all
    /// gate outputs scheduled for evaluation at t = 0 (so constant logic
    /// settles immediately).
    ///
    /// Runs the netlist lints ([`crate::lint`]) as a pre-flight first.
    ///
    /// # Panics
    ///
    /// Panics if any lint reaches deny severity under the netlist's
    /// [`LintConfig`](crate::lint::LintConfig). No lint denies by default
    /// (the builder already rejects multiply-driven nets), so this fires
    /// only for netlists whose config escalates a warning to deny.
    pub fn new(netlist: &'a Netlist) -> Self {
        let report = crate::lint::lint(netlist);
        assert!(
            !report.has_denials(),
            "netlist rejected by pre-flight lint:\n{report}"
        );
        let n = netlist.net_count();
        let mut gate_fanout = vec![Vec::new(); n];
        for (gi, gate) in netlist.gates.iter().enumerate() {
            for inp in &gate.inputs {
                gate_fanout[inp.0].push(gi);
            }
        }
        let mut dff_clock_fanout = vec![Vec::new(); n];
        for (di, dff) in netlist.dffs.iter().enumerate() {
            dff_clock_fanout[dff.clock.0].push(di);
        }
        let mut sim = Simulator {
            netlist,
            values: vec![false; n],
            pending: vec![false; n],
            toggles: vec![0; n],
            gate_fanout,
            dff_clock_fanout,
            queue: BinaryHeap::new(),
            time: 0,
            seq: 0,
        };
        // Settle gates whose output should be 1 with all-zero inputs
        // (NOT, NAND, NOR, XNOR of zeros).
        for gi in 0..netlist.gates.len() {
            sim.evaluate_gate(gi);
        }
        sim
    }

    /// Current simulation time in picoseconds.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Current value of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to the simulated netlist.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0]
    }

    /// Number of transitions observed on a net since construction (or the
    /// last [`Simulator::reset_activity`]).
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to the simulated netlist.
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.0]
    }

    /// Total transitions across all nets.
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Per-net toggle counts (indexed by net).
    pub fn toggle_counts(&self) -> &[u64] {
        &self.toggles
    }

    /// Clears the activity counters (e.g. after reset/warm-up, before a
    /// power measurement window).
    pub fn reset_activity(&mut self) {
        self.toggles.fill(0);
    }

    /// Drives an input net to `value` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the net is driven by a gate or flip-flop — inputs must be
    /// undriven nets.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert!(
            !self.netlist.is_driven(net),
            "net '{}' is driven by the netlist and cannot be forced",
            self.netlist.net_name(net)
        );
        self.pending[net.0] = value;
        self.schedule(self.time, net.0, value);
        self.drain_at_current_time();
    }

    /// Runs until the event queue is exhausted or `t_stop` (ps) is
    /// reached; the simulation time afterwards is `t_stop` (or the last
    /// event time if the queue drained early).
    pub fn run_until(&mut self, t_stop: u64) {
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            if ev.time > t_stop {
                break;
            }
            self.queue.pop();
            self.apply(ev);
        }
        self.time = self.time.max(t_stop);
    }

    /// Toggles `clock` through `cycles` full periods of `period_ps`
    /// (rising edge at the half-period), running the queue in between.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps < 2` or the clock net is driven.
    pub fn run_clock(&mut self, clock: NetId, cycles: usize, period_ps: u64) {
        assert!(period_ps >= 2, "clock period must be at least 2 ps");
        let half = period_ps / 2;
        for _ in 0..cycles {
            let t0 = self.time;
            self.set_input(clock, false);
            self.run_until(t0 + half);
            self.set_input(clock, true); // rising edge: DFFs sample
            self.run_until(t0 + period_ps);
        }
    }

    fn schedule(&mut self, time: u64, net: usize, value: bool) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            net,
            value,
        }));
    }

    fn drain_at_current_time(&mut self) {
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            if ev.time > self.time {
                break;
            }
            self.queue.pop();
            self.apply(ev);
        }
    }

    fn apply(&mut self, ev: Event) {
        self.time = self.time.max(ev.time);
        if self.values[ev.net] == ev.value {
            return; // glitch cancelled or redundant
        }
        let rising = ev.value && !self.values[ev.net];
        self.values[ev.net] = ev.value;
        self.toggles[ev.net] += 1;

        for gi in self.gate_fanout[ev.net].clone() {
            self.evaluate_gate(gi);
        }
        if rising {
            for di in self.dff_clock_fanout[ev.net].clone() {
                let dff = &self.netlist.dffs[di];
                let d = self.values[dff.d.0];
                let q = dff.q.0;
                let delay = dff.delay_ps;
                if self.pending[q] != d {
                    self.pending[q] = d;
                    self.schedule(self.time + delay, q, d);
                }
            }
        }
    }

    fn evaluate_gate(&mut self, gi: usize) {
        let gate = &self.netlist.gates[gi];
        let inputs: Vec<bool> = gate.inputs.iter().map(|n| self.values[n.0]).collect();
        let out = gate.kind.eval(&inputs);
        let net = gate.output.0;
        if self.pending[net] != out {
            self.pending[net] = out;
            let t = self.time + gate.delay_ps;
            self.schedule(t, net, out);
        }
    }

    /// Convenience: re-evaluates the gate driving `_id` (used by tests).
    #[doc(hidden)]
    pub fn poke_gate(&mut self, id: GateId) {
        self.evaluate_gate(id.0);
        self.drain_at_current_time();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    #[test]
    fn combinational_settling() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let b = nl.net("b");
        let y = nl.net("y");
        nl.gate(GateKind::And2, &[a, b], y, 10);
        let mut sim = Simulator::new(&nl);
        sim.run_until(100);
        assert!(!sim.value(y));
        sim.set_input(a, true);
        sim.set_input(b, true);
        sim.run_until(200);
        assert!(sim.value(y));
        sim.set_input(b, false);
        sim.run_until(300);
        assert!(!sim.value(y));
    }

    #[test]
    fn inverter_initialises_high() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Not, &[a], y, 10);
        let mut sim = Simulator::new(&nl);
        sim.run_until(20);
        assert!(sim.value(y), "NOT of initial 0 must settle to 1");
    }

    #[test]
    fn propagation_delay_is_respected() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Buf, &[a], y, 50);
        let mut sim = Simulator::new(&nl);
        sim.run_until(10);
        sim.set_input(a, true);
        sim.run_until(40); // before the delay elapses
        assert!(!sim.value(y));
        sim.run_until(100);
        assert!(sim.value(y));
    }

    #[test]
    fn dff_samples_on_rising_edge() {
        let mut nl = Netlist::new();
        let d = nl.net("d");
        let clk = nl.net("clk");
        let q = nl.net("q");
        nl.dff(d, clk, q, 5);
        let mut sim = Simulator::new(&nl);

        sim.set_input(d, true);
        sim.run_until(100);
        assert!(!sim.value(q), "no edge yet");

        sim.set_input(clk, true);
        sim.run_until(200);
        assert!(sim.value(q), "captured on rising edge");

        // Change D while clock stays high: Q must hold.
        sim.set_input(d, false);
        sim.run_until(300);
        assert!(sim.value(q));

        // Falling edge: still holds.
        sim.set_input(clk, false);
        sim.run_until(400);
        assert!(sim.value(q));

        // Next rising edge captures the new D.
        sim.set_input(clk, true);
        sim.run_until(500);
        assert!(!sim.value(q));
    }

    #[test]
    fn toggle_counting_and_reset() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Not, &[a], y, 1);
        let mut sim = Simulator::new(&nl);
        sim.run_until(10); // settle: y rises once
        sim.reset_activity();
        for i in 0..10 {
            sim.set_input(a, i % 2 == 0);
            sim.run_until(sim.time() + 10);
        }
        assert_eq!(sim.toggles(a), 10);
        assert_eq!(sim.toggles(y), 10);
        assert_eq!(sim.total_toggles(), 20);
        sim.reset_activity();
        assert_eq!(sim.total_toggles(), 0);
    }

    #[test]
    fn divide_by_two_counter() {
        // DFF with Q̄ fed back to D: toggles every rising edge.
        let mut nl = Netlist::new();
        let clk = nl.net("clk");
        let q = nl.net("q");
        let qb = nl.net("qb");
        nl.dff(qb, clk, q, 5);
        nl.gate(GateKind::Not, &[q], qb, 1);
        let mut sim = Simulator::new(&nl);
        sim.run_until(10);
        sim.reset_activity();
        sim.run_clock(clk, 8, 100);
        // 8 rising edges → q toggles 8 times.
        assert_eq!(sim.toggles(q), 8);
    }

    #[test]
    #[should_panic(expected = "cannot be forced")]
    fn forcing_a_driven_net_panics() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Buf, &[a], y, 10);
        let mut sim = Simulator::new(&nl);
        sim.set_input(y, true);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two parallel paths converging; same stimulus twice must produce
        // identical toggle counts.
        let build = || {
            let mut nl = Netlist::new();
            let a = nl.net("a");
            let x = nl.net("x");
            let y = nl.net("y");
            let z = nl.net("z");
            nl.gate(GateKind::Not, &[a], x, 10);
            nl.gate(GateKind::Buf, &[a], y, 10);
            nl.gate(GateKind::Xor2, &[x, y], z, 10);
            (nl, a, z)
        };
        let run = |nl: &Netlist, a: NetId, z: NetId| {
            let mut sim = Simulator::new(nl);
            sim.run_until(50);
            sim.reset_activity();
            for i in 0..20 {
                sim.set_input(a, i % 2 == 0);
                sim.run_until(sim.time() + 100);
            }
            (sim.toggles(z), sim.value(z))
        };
        let (nl1, a1, z1) = build();
        let (nl2, a2, z2) = build();
        assert_eq!(run(&nl1, a1, z1), run(&nl2, a2, z2));
    }
}
