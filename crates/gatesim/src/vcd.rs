//! VCD (Value Change Dump) waveform recording.
//!
//! Wraps a [`Simulator`] run and captures every transition of a chosen
//! set of nets into the IEEE-1364 VCD text format, viewable in GTKWave —
//! indispensable when debugging a counter or datapath at the waveform
//! level.
//!
//! ```
//! use gatesim::vcd::VcdRecorder;
//! use gatesim::{GateKind, Netlist, Simulator};
//!
//! let mut nl = Netlist::new();
//! let a = nl.net("a");
//! let y = nl.net("y");
//! nl.gate(GateKind::Not, &[a], y, 10);
//! let mut sim = Simulator::new(&nl);
//! let mut vcd = VcdRecorder::new(&nl, &[a, y]);
//! vcd.sample(&sim);
//! sim.set_input(a, true);
//! sim.run_until(100);
//! vcd.sample(&sim);
//! let dump = vcd.finish(100);
//! assert!(dump.contains("$var wire 1"));
//! assert!(dump.contains("$enddefinitions"));
//! ```

use crate::netlist::{NetId, Netlist};
use crate::sim::Simulator;

/// Records net transitions into a VCD document.
///
/// Call [`VcdRecorder::sample`] whenever the simulation has advanced (it
/// diffs against the previous sample and emits changes at the
/// simulator's current time), then [`VcdRecorder::finish`] to obtain the
/// document.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    nets: Vec<(NetId, String, String)>, // net, name, vcd id
    last: Vec<Option<bool>>,
    body: String,
    last_time: Option<u64>,
}

impl VcdRecorder {
    /// Creates a recorder for the given nets.
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    pub fn new(netlist: &Netlist, nets: &[NetId]) -> Self {
        assert!(!nets.is_empty(), "record at least one net");
        let nets: Vec<(NetId, String, String)> = nets
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, netlist.net_name(n).to_owned(), vcd_id(i)))
            .collect();
        let count = nets.len();
        VcdRecorder {
            nets,
            last: vec![None; count],
            body: String::new(),
            last_time: None,
        }
    }

    /// Captures the current values, emitting changes since the previous
    /// sample at the simulator's current time.
    pub fn sample(&mut self, sim: &Simulator<'_>) {
        let t = sim.time();
        let mut stamped = false;
        for (k, (net, _, id)) in self.nets.iter().enumerate() {
            let v = sim.value(*net);
            if self.last[k] != Some(v) {
                if !stamped && self.last_time != Some(t) {
                    self.body.push_str(&format!("#{t}\n"));
                    self.last_time = Some(t);
                }
                stamped = true;
                self.body.push_str(&format!("{}{}\n", v as u8, id));
                self.last[k] = Some(v);
            }
        }
    }

    /// Finalises the document, closing it at `end_time` picoseconds.
    pub fn finish(mut self, end_time: u64) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        out.push_str("$scope module gatesim $end\n");
        for (_, name, id) in &self.nets {
            out.push_str(&format!("$var wire 1 {id} {name} $end\n"));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        if self.last_time != Some(end_time) {
            self.body.push_str(&format!("#{end_time}\n"));
        }
        out.push_str(&self.body);
        out
    }
}

/// Short printable VCD identifier for signal index `i`.
fn vcd_id(mut i: usize) -> String {
    // Printable ASCII 33..=126, base-94.
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    #[test]
    fn records_transitions_with_timestamps() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Not, &[a], y, 10);
        let mut sim = Simulator::new(&nl);
        let mut vcd = VcdRecorder::new(&nl, &[a, y]);
        sim.run_until(20);
        vcd.sample(&sim); // initial values: a=0, y=1
        sim.set_input(a, true);
        sim.run_until(50);
        vcd.sample(&sim); // a=1, y=0
        let doc = vcd.finish(100);

        assert!(doc.contains("$timescale 1ps $end"));
        assert!(doc.contains("$var wire 1 ! a $end"));
        assert!(doc.contains("$var wire 1 \" y $end"));
        // Initial dump at t=20, change dump at t=50, closing stamp.
        assert!(doc.contains("#20\n"), "{doc}");
        assert!(doc.contains("#50\n"), "{doc}");
        assert!(doc.ends_with("#100\n"), "{doc}");
        // a rose, y fell.
        assert!(doc.contains("1!"));
        assert!(doc.contains("0\""));
    }

    #[test]
    fn unchanged_samples_emit_nothing() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Buf, &[a], y, 10);
        let mut sim = Simulator::new(&nl);
        let mut vcd = VcdRecorder::new(&nl, &[a]);
        sim.run_until(10);
        vcd.sample(&sim);
        sim.run_until(30);
        vcd.sample(&sim); // nothing changed
        let doc = vcd.finish(40);
        let stamps = doc.matches('#').count();
        assert_eq!(stamps, 2, "initial + closing only: {doc}");
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = vcd_id(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "duplicate id for {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one net")]
    fn empty_net_list_panics() {
        let nl = Netlist::new();
        let _ = VcdRecorder::new(&nl, &[]);
    }
}
