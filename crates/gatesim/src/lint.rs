//! Pre-flight static analysis (linting) of gate-level netlists.
//!
//! The digital counterpart of `mssim::lint`: structural defects that make
//! an event-driven simulation misleading — undriven inputs that stay at
//! their power-on value, zero-delay-style combinational feedback, floating
//! flip-flop pins — are reported as structured [`Diagnostic`]s before the
//! simulation starts. [`Simulator::new`](crate::Simulator::new) runs these
//! lints as a pre-flight and panics if any deny-level diagnostic is
//! present.
//!
//! # Lint codes
//!
//! | Code  | Name                   | Default | Failure prevented |
//! |-------|------------------------|---------|-------------------|
//! | GS001 | `undriven-net`         | warn¹   | input stuck at power-on value |
//! | GS002 | `multiply-driven-net`  | deny    | nondeterministic net value (defensive; the builder already rejects it) |
//! | GS003 | `combinational-loop`   | warn²   | oscillation / unsettleable logic |
//! | GS004 | `floating-dff-pin`     | warn    | flip-flop that never clocks or captures garbage |
//! | GS005 | `unused-net`           | warn    | dead wire, usually a wiring mistake |
//!
//! ¹ warn, not deny: primary inputs are legitimately undriven — they are
//! forced from the testbench via
//! [`Simulator::set_input`](crate::Simulator::set_input).
//!
//! ² warn, not deny: intentional ring oscillators are valid gate-level
//! circuits (see the crate-level example); deny it per-netlist via
//! [`LintConfig`] when feedback must be an error.
//!
//! # Examples
//!
//! ```
//! use gatesim::lint::{lint, LintCode};
//! use gatesim::{GateKind, Netlist};
//!
//! let mut nl = Netlist::new();
//! let a = nl.net("a");
//! let y = nl.net("y");
//! nl.gate(GateKind::Not, &[a], y, 10);
//! let report = lint(&nl);
//! // `a` is a primary input: reported as a warning, not a denial.
//! assert!(!report.has_denials());
//! assert!(report
//!     .diagnostics()
//!     .iter()
//!     .any(|d| d.code == LintCode::UndrivenNet));
//! ```

use std::collections::HashMap;

use crate::netlist::{NetId, Netlist};

/// How a triggered lint is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The diagnostic is suppressed entirely.
    Allow,
    /// The diagnostic is reported but does not block simulation.
    Warn,
    /// The diagnostic blocks simulation construction.
    Deny,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Identifies one class of netlist defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// GS001: a net is read (gate input) but nothing drives it.
    UndrivenNet,
    /// GS002: a net has more than one driver (defensive; the builder
    /// panics on this).
    MultiplyDrivenNet,
    /// GS003: a cycle of combinational gates with no flip-flop boundary.
    CombinationalLoop,
    /// GS004: a flip-flop data or clock pin with no driver.
    FloatingDffPin,
    /// GS005: a net that is neither driven nor read.
    UnusedNet,
}

/// All digital lint codes, in report order.
pub const ALL_CODES: &[LintCode] = &[
    LintCode::UndrivenNet,
    LintCode::MultiplyDrivenNet,
    LintCode::CombinationalLoop,
    LintCode::FloatingDffPin,
    LintCode::UnusedNet,
];

impl LintCode {
    /// Stable short identifier, e.g. `"GS003"`.
    pub fn id(self) -> &'static str {
        match self {
            LintCode::UndrivenNet => "GS001",
            LintCode::MultiplyDrivenNet => "GS002",
            LintCode::CombinationalLoop => "GS003",
            LintCode::FloatingDffPin => "GS004",
            LintCode::UnusedNet => "GS005",
        }
    }

    /// Human-readable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::UndrivenNet => "undriven-net",
            LintCode::MultiplyDrivenNet => "multiply-driven-net",
            LintCode::CombinationalLoop => "combinational-loop",
            LintCode::FloatingDffPin => "floating-dff-pin",
            LintCode::UnusedNet => "unused-net",
        }
    }

    /// Severity when the user has not configured the code.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::MultiplyDrivenNet => Severity::Deny,
            _ => Severity::Warn,
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

/// Per-code severity configuration; codes not configured use
/// [`LintCode::default_severity`]. Attach to a netlist with
/// [`Netlist::set_lint_config`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintConfig {
    overrides: Vec<(LintCode, Severity)>,
}

impl LintConfig {
    /// A config in which every code has its default severity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `code` to the given severity (builder style).
    pub fn set(mut self, code: LintCode, severity: Severity) -> Self {
        if let Some(slot) = self.overrides.iter_mut().find(|(c, _)| *c == code) {
            slot.1 = severity;
        } else {
            self.overrides.push((code, severity));
        }
        self
    }

    /// Suppresses `code` entirely.
    pub fn allow(self, code: LintCode) -> Self {
        self.set(code, Severity::Allow)
    }

    /// Reports `code` without blocking simulation.
    pub fn warn(self, code: LintCode) -> Self {
        self.set(code, Severity::Warn)
    }

    /// Makes `code` block simulation construction.
    pub fn deny(self, code: LintCode) -> Self {
        self.set(code, Severity::Deny)
    }

    /// Effective severity of `code` under this config.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .iter()
            .find(|(c, _)| *c == code)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| code.default_severity())
    }

    /// `true` if the user explicitly configured `code`.
    pub fn is_overridden(&self, code: LintCode) -> bool {
        self.overrides.iter().any(|(c, _)| *c == code)
    }
}

/// One reported defect.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity after config.
    pub severity: Severity,
    /// Names of the offending nets.
    pub elements: Vec<String>,
    /// What is wrong, in terms of the named nets.
    pub message: String,
    /// How to fix it, when a stock suggestion exists.
    pub suggestion: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} [{}]: {}",
            self.severity,
            self.code.id(),
            self.code.name(),
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// The outcome of linting one netlist.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Diagnostics at deny level.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// Diagnostics at warn level.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// `true` if any deny-level diagnostic is present.
    pub fn has_denials(&self) -> bool {
        self.denials().next().is_some()
    }

    /// `true` if nothing was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "lint: clean");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        let denies = self.denials().count();
        let warns = self.warnings().count();
        writeln!(f, "lint: {denies} deny, {warns} warn")
    }
}

/// Lints `netlist` with its attached config
/// (see [`Netlist::set_lint_config`]).
pub fn lint(netlist: &Netlist) -> LintReport {
    lint_with(netlist, netlist.lint_config())
}

/// Lints `netlist` with an explicit config.
pub fn lint_with(netlist: &Netlist, config: &LintConfig) -> LintReport {
    let mut diagnostics = Vec::new();
    let mut emit = |code: LintCode, elements: Vec<String>, message: String, suggestion: &str| {
        let severity = config.severity(code);
        if severity != Severity::Allow {
            diagnostics.push(Diagnostic {
                code,
                severity,
                elements,
                message,
                suggestion: Some(suggestion.to_owned()),
            });
        }
    };

    let n = netlist.net_count();
    // Per-net fan-in/fan-out bookkeeping shared by several passes.
    let mut drivers: Vec<usize> = vec![0; n];
    let mut read: Vec<bool> = vec![false; n];
    let mut dff_pin: Vec<bool> = vec![false; n];
    for g in netlist.gates() {
        drivers[g.output.index()] += 1;
        for i in &g.inputs {
            read[i.index()] = true;
        }
    }
    for d in netlist.dffs() {
        drivers[d.q.index()] += 1;
        read[d.d.index()] = true;
        read[d.clock.index()] = true;
        dff_pin[d.d.index()] = true;
        dff_pin[d.clock.index()] = true;
    }

    for idx in 0..n {
        let net = NetId(idx);
        let name = netlist.net_name(net).to_owned();
        if drivers[idx] > 1 {
            emit(
                LintCode::MultiplyDrivenNet,
                vec![name.clone()],
                format!("net '{name}' has {} drivers", drivers[idx]),
                "give each gate/flip-flop output its own net; the event queue \
                 would apply whichever update fires last",
            );
        }
        if drivers[idx] == 0 && read[idx] {
            if dff_pin[idx] {
                emit(
                    LintCode::FloatingDffPin,
                    vec![name.clone()],
                    format!("flip-flop pin net '{name}' has no driver"),
                    "drive it from logic, or treat it as a primary input and \
                     force it with set_input/run_clock before relying on Q",
                );
            } else {
                emit(
                    LintCode::UndrivenNet,
                    vec![name.clone()],
                    format!("net '{name}' is read but has no driver"),
                    "drive it from a gate, or force it from the testbench with \
                     set_input (it stays at its power-on value otherwise)",
                );
            }
        }
        if drivers[idx] == 0 && !read[idx] {
            emit(
                LintCode::UnusedNet,
                vec![name.clone()],
                format!("net '{name}' is neither driven nor read"),
                "delete the net, or wire it up",
            );
        }
    }

    for scc in combinational_sccs(netlist) {
        let nets: Vec<String> = scc
            .iter()
            .map(|&g| netlist.net_name(netlist.gates()[g].output).to_owned())
            .collect();
        emit(
            LintCode::CombinationalLoop,
            nets.clone(),
            format!(
                "combinational feedback loop through net(s) {}",
                nets.join(" → ")
            ),
            "break the loop with a flip-flop, or silence GS003 if the \
             oscillator is intentional",
        );
    }

    diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
    LintReport { diagnostics }
}

/// Strongly connected components of the combinational gate graph (edges
/// from a gate to every gate reading its output; flip-flops break the
/// graph). Returns only looping components: size > 1, or a gate feeding
/// itself. Iterative Tarjan, so deep netlists cannot overflow the stack.
fn combinational_sccs(netlist: &Netlist) -> Vec<Vec<usize>> {
    let gates = netlist.gates();
    let mut driver_gate: HashMap<usize, usize> = HashMap::new();
    for (i, g) in gates.iter().enumerate() {
        driver_gate.insert(g.output.index(), i);
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    for (i, g) in gates.iter().enumerate() {
        for input in &g.inputs {
            if let Some(&src) = driver_gate.get(&input.index()) {
                adj[src].push(i);
            }
        }
    }

    let n = gates.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // Explicit DFS frames: (node, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*child) {
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let is_loop = comp.len() > 1 || adj[comp[0]].contains(&comp[0]);
                    if is_loop {
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    fn codes(report: &LintReport) -> Vec<LintCode> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_pipeline_is_clean_except_primary_inputs() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let b = nl.net("b");
        let y = nl.net("y");
        let q = nl.net("q");
        let clk = nl.net("clk");
        nl.gate(GateKind::And2, &[a, b], y, 10);
        nl.dff(y, clk, q, 20);
        let report = lint(&nl);
        assert!(!report.has_denials());
        // a, b are primary inputs; clk is a floating DFF pin by design.
        assert_eq!(report.warnings().count(), 3);
    }

    #[test]
    fn undriven_gate_input_warned_with_name() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Not, &[a], y, 10);
        let report = lint(&nl);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::UndrivenNet)
            .expect("GS001");
        assert_eq!(d.elements, vec!["a"]);
    }

    #[test]
    fn combinational_loop_detected() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let b = nl.net("b");
        let c = nl.net("c");
        nl.gate(GateKind::Not, &[a], b, 10);
        nl.gate(GateKind::Not, &[b], c, 10);
        nl.gate(GateKind::Not, &[c], a, 10);
        let report = lint(&nl);
        assert!(!report.has_denials(), "ring oscillators stay usable");
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::CombinationalLoop)
            .expect("GS003");
        assert_eq!(d.elements.len(), 3);
    }

    #[test]
    fn dff_breaks_combinational_loop() {
        let mut nl = Netlist::new();
        let q = nl.net("q");
        let nq = nl.net("nq");
        let clk = nl.net("clk");
        nl.gate(GateKind::Not, &[q], nq, 10);
        nl.dff(nq, clk, q, 20); // divide-by-two: feedback through the DFF
        let report = lint(&nl);
        assert!(codes(&report)
            .iter()
            .all(|&c| c != LintCode::CombinationalLoop));
    }

    #[test]
    fn self_feeding_gate_is_a_loop() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        nl.gate(GateKind::Not, &[a], a, 10);
        let report = lint(&nl);
        assert!(codes(&report).contains(&LintCode::CombinationalLoop));
    }

    #[test]
    fn floating_dff_pins_reported_as_gs004() {
        let mut nl = Netlist::new();
        let d = nl.net("d");
        let clk = nl.net("clk");
        let q = nl.net("q");
        nl.dff(d, clk, q, 20);
        let report = lint(&nl);
        let gs004: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|x| x.code == LintCode::FloatingDffPin)
            .collect();
        assert_eq!(gs004.len(), 2, "both d and clk are floating");
    }

    #[test]
    fn unused_net_warned() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.net("dangling");
        nl.gate(GateKind::Buf, &[a], y, 10);
        let report = lint(&nl);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::UnusedNet)
            .expect("GS005");
        assert_eq!(d.elements, vec!["dangling"]);
    }

    #[test]
    fn config_overrides_are_respected() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Not, &[a], y, 10);
        let cfg = LintConfig::new().allow(LintCode::UndrivenNet);
        assert!(lint_with(&nl, &cfg).is_clean());
        let cfg = LintConfig::new().deny(LintCode::UndrivenNet);
        assert!(lint_with(&nl, &cfg).has_denials());
        assert!(cfg.is_overridden(LintCode::UndrivenNet));
        assert!(!cfg.is_overridden(LintCode::UnusedNet));
    }

    #[test]
    fn report_renders_ids_and_severities() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Not, &[a], y, 10);
        let text = lint(&nl).to_string();
        assert!(text.contains("GS001"), "{text}");
        assert!(text.contains("warn"), "{text}");
    }
}
