//! Gate-level netlist representation.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a net (wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// Index in the netlist's net table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a combinational gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub(crate) usize);

/// Identifier of a D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DffId(pub(crate) usize);

/// Combinational gate functions (one- and two-input CMOS standard cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
}

impl GateKind {
    /// Number of inputs this gate kind takes.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// Evaluates the gate function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity(), "gate arity mismatch");
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And2 => inputs[0] && inputs[1],
            GateKind::Or2 => inputs[0] || inputs[1],
            GateKind::Nand2 => !(inputs[0] && inputs[1]),
            GateKind::Nor2 => !(inputs[0] || inputs[1]),
            GateKind::Xor2 => inputs[0] ^ inputs[1],
            GateKind::Xnor2 => !(inputs[0] ^ inputs[1]),
        }
    }

    /// Transistor count of the standard static-CMOS implementation.
    pub fn transistor_count(self) -> usize {
        match self {
            GateKind::Not => 2,
            GateKind::Buf | GateKind::Nand2 | GateKind::Nor2 => 4,
            GateKind::And2 | GateKind::Or2 => 6,
            GateKind::Xor2 | GateKind::Xnor2 => 10,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And2 => "and2",
            GateKind::Or2 => "or2",
            GateKind::Nand2 => "nand2",
            GateKind::Nor2 => "nor2",
            GateKind::Xor2 => "xor2",
            GateKind::Xnor2 => "xnor2",
        };
        f.write_str(s)
    }
}

/// One combinational gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Function.
    pub kind: GateKind,
    /// Input nets (length = `kind.arity()`).
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Propagation delay in picoseconds (≥ 1).
    pub delay_ps: u64,
}

/// One D flip-flop instance (positive-edge-triggered).
#[derive(Debug, Clone)]
pub struct Dff {
    /// Data input.
    pub d: NetId,
    /// Clock input.
    pub clock: NetId,
    /// Output.
    pub q: NetId,
    /// Clock-to-Q delay in picoseconds (≥ 1).
    pub delay_ps: u64,
}

impl Dff {
    /// Transistor count of a transmission-gate master–slave DFF.
    pub const TRANSISTORS: usize = 24;
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    net_names: Vec<String>,
    name_to_net: HashMap<String, NetId>,
    driver_of: Vec<bool>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) dffs: Vec<Dff>,
    lint_config: crate::lint::LintConfig,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the net with the given name, creating it if necessary.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.name_to_net.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len());
        self.net_names.push(name.to_owned());
        self.name_to_net.insert(name.to_owned(), id);
        self.driver_of.push(false);
        id
    }

    /// Creates an anonymous net.
    pub fn fresh_net(&mut self) -> NetId {
        let name = format!("_w{}", self.net_names.len());
        self.net(&name)
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to this netlist.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Adds a combinational gate.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the gate arity, the delay
    /// is zero, or the output net already has a driver.
    pub fn gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
        delay_ps: u64,
    ) -> GateId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind} takes {} inputs",
            kind.arity()
        );
        assert!(delay_ps >= 1, "gate delay must be at least 1 ps");
        self.claim_driver(output);
        let id = GateId(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay_ps,
        });
        id
    }

    /// Adds a positive-edge D flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if the delay is zero or the output net already has a driver.
    pub fn dff(&mut self, d: NetId, clock: NetId, q: NetId, delay_ps: u64) -> DffId {
        assert!(delay_ps >= 1, "dff delay must be at least 1 ps");
        self.claim_driver(q);
        let id = DffId(self.dffs.len());
        self.dffs.push(Dff {
            d,
            clock,
            q,
            delay_ps,
        });
        id
    }

    fn claim_driver(&mut self, net: NetId) {
        assert!(
            !self.driver_of[net.0],
            "net '{}' already has a driver",
            self.net_names[net.0]
        );
        self.driver_of[net.0] = true;
    }

    /// `true` if some gate or flip-flop drives this net (inputs are
    /// undriven nets).
    pub fn is_driven(&self, net: NetId) -> bool {
        self.driver_of[net.0]
    }

    /// The combinational gates, in insertion order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The flip-flops, in insertion order.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Sets the lint configuration consulted by [`crate::lint::lint`] and
    /// by the pre-flight check in [`crate::Simulator::new`].
    pub fn set_lint_config(&mut self, config: crate::lint::LintConfig) {
        self.lint_config = config;
    }

    /// The lint configuration attached to this netlist.
    pub fn lint_config(&self) -> &crate::lint::LintConfig {
        &self.lint_config
    }

    /// Total transistor count of the netlist (standard-cell estimates).
    pub fn transistor_count(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.kind.transistor_count())
            .sum::<usize>()
            + self.dffs.len() * Dff::TRANSISTORS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_truth_tables() {
        use GateKind::*;
        assert!(And2.eval(&[true, true]));
        assert!(!And2.eval(&[true, false]));
        assert!(Or2.eval(&[true, false]));
        assert!(!Nor2.eval(&[true, false]));
        assert!(Nand2.eval(&[true, false]));
        assert!(!Nand2.eval(&[true, true]));
        assert!(Xor2.eval(&[true, false]));
        assert!(!Xor2.eval(&[true, true]));
        assert!(Xnor2.eval(&[true, true]));
        assert!(Not.eval(&[false]));
        assert!(Buf.eval(&[true]));
    }

    #[test]
    fn arities_and_transistors() {
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Xor2.arity(), 2);
        assert_eq!(GateKind::Not.transistor_count(), 2);
        assert_eq!(GateKind::Nand2.transistor_count(), 4);
        assert_eq!(GateKind::And2.transistor_count(), 6);
        assert_eq!(GateKind::Xor2.transistor_count(), 10);
        assert_eq!(Dff::TRANSISTORS, 24);
    }

    #[test]
    fn nets_are_interned() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        assert_eq!(nl.net("a"), a);
        assert_eq!(nl.net_name(a), "a");
        let f = nl.fresh_net();
        assert_ne!(f, a);
        assert_eq!(nl.net_count(), 2);
    }

    #[test]
    fn netlist_transistor_count_sums() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let b = nl.net("b");
        let y = nl.net("y");
        let q = nl.net("q");
        nl.gate(GateKind::And2, &[a, b], y, 10);
        nl.dff(y, a, q, 20);
        assert_eq!(nl.transistor_count(), 6 + 24);
        assert!(nl.is_driven(y));
        assert!(!nl.is_driven(a));
    }

    #[test]
    #[should_panic(expected = "already has a driver")]
    fn double_driver_panics() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::Buf, &[a], y, 10);
        nl.gate(GateKind::Not, &[a], y, 10);
    }

    #[test]
    #[should_panic(expected = "takes 2 inputs")]
    fn arity_mismatch_panics() {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let y = nl.net("y");
        nl.gate(GateKind::And2, &[a], y, 10);
    }
}
