//! Property-based tests of the gate-level substrate: datapath blocks
//! against integer arithmetic, and simulator determinism.

use gatesim::blocks::{self, drive_word, read_word};
use gatesim::kessels::{measure_duty, KesselsPwm};
use gatesim::{GateKind, Netlist, Simulator};
use proptest::prelude::*;

fn input_bus(nl: &mut Netlist, prefix: &str, width: usize) -> Vec<gatesim::NetId> {
    (0..width)
        .map(|i| nl.net(&format!("{prefix}{i}")))
        .collect()
}

fn settle(sim: &mut Simulator<'_>) {
    let t = sim.time();
    sim.run_until(t + 200_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 8-bit ripple adder computes u8 + u8 exactly.
    #[test]
    fn adder_is_integer_addition(x in 0u64..256, y in 0u64..256) {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 8);
        let b = input_bus(&mut nl, "b", 8);
        let (sum, cout) = blocks::ripple_adder(&mut nl, &a, &b, None);
        let mut sim = Simulator::new(&nl);
        drive_word(&mut sim, &a, x);
        drive_word(&mut sim, &b, y);
        settle(&mut sim);
        let got = read_word(&sim, &sum) | ((sim.value(cout) as u64) << 8);
        prop_assert_eq!(got, x + y);
    }

    /// 4×4 array multiplier computes u4 × u4 exactly.
    #[test]
    fn multiplier_is_integer_multiplication(x in 0u64..16, y in 0u64..16) {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let p = blocks::array_multiplier(&mut nl, &a, &b);
        let mut sim = Simulator::new(&nl);
        drive_word(&mut sim, &a, x);
        drive_word(&mut sim, &b, y);
        settle(&mut sim);
        prop_assert_eq!(read_word(&sim, &p), x * y);
    }

    /// 6-bit magnitude comparator agrees with `<`.
    #[test]
    fn comparator_is_less_than(x in 0u64..64, y in 0u64..64) {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 6);
        let b = input_bus(&mut nl, "b", 6);
        let lt = blocks::less_than(&mut nl, &a, &b);
        let mut sim = Simulator::new(&nl);
        drive_word(&mut sim, &a, x);
        drive_word(&mut sim, &b, y);
        settle(&mut sim);
        prop_assert_eq!(sim.value(lt), x < y);
    }

    /// The Kessels PWM generator produces duty = M/2ⁿ bit-exactly for
    /// every threshold.
    #[test]
    fn kessels_duty_exact(threshold in 0u64..=16) {
        let mut nl = Netlist::new();
        let pwm = KesselsPwm::build(&mut nl, 4);
        let duty = measure_duty(&nl, &pwm, threshold, 1, 1_000);
        prop_assert!((duty - threshold as f64 / 16.0).abs() < 1e-12);
    }

    /// Simulation is deterministic under identical stimulus.
    #[test]
    fn simulation_is_deterministic(stimulus in prop::collection::vec(any::<bool>(), 1..40)) {
        let build = || {
            let mut nl = Netlist::new();
            let a = nl.net("a");
            let x = nl.net("x");
            let y = nl.net("y");
            let z = nl.net("z");
            let q = nl.net("q");
            nl.gate(GateKind::Not, &[a], x, 7);
            nl.gate(GateKind::Buf, &[a], y, 13);
            nl.gate(GateKind::Xor2, &[x, y], z, 5);
            nl.dff(z, a, q, 3);
            (nl, a, z, q)
        };
        let run = |nl: &Netlist, a, z, q, stim: &[bool]| {
            let mut sim = Simulator::new(nl);
            sim.run_until(100);
            for &s in stim {
                sim.set_input(a, s);
                sim.run_until(sim.time() + 100);
            }
            (sim.value(z), sim.value(q), sim.total_toggles())
        };
        let (nl1, a1, z1, q1) = build();
        let (nl2, a2, z2, q2) = build();
        prop_assert_eq!(
            run(&nl1, a1, z1, q1, &stimulus),
            run(&nl2, a2, z2, q2, &stimulus)
        );
    }

    /// Transistor counting is additive under netlist composition.
    #[test]
    fn transistor_count_additive(n_gates in 1usize..20) {
        let mut nl = Netlist::new();
        let a = nl.net("a");
        let mut expect = 0;
        for i in 0..n_gates {
            let y = nl.net(&format!("y{i}"));
            let kind = match i % 4 {
                0 => GateKind::Not,
                1 => GateKind::And2,
                2 => GateKind::Xor2,
                _ => GateKind::Nor2,
            };
            if kind.arity() == 1 {
                nl.gate(kind, &[a], y, 5);
            } else {
                nl.gate(kind, &[a, a], y, 5);
            }
            expect += kind.transistor_count();
        }
        prop_assert_eq!(nl.transistor_count(), expect);
    }
}
