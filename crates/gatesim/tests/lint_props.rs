//! Property-based tests of the digital lint passes: acyclic netlists are
//! never flagged for combinational feedback, and seeded loops always are.

use gatesim::lint::{lint, LintCode};
use gatesim::{GateKind, Netlist};
use proptest::prelude::*;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

const KINDS: &[GateKind] = &[
    GateKind::Buf,
    GateKind::Not,
    GateKind::And2,
    GateKind::Or2,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::Xor2,
    GateKind::Xnor2,
];

/// A random DAG of gates: each gate reads only nets created earlier, so
/// the netlist is acyclic by construction.
fn random_dag(seed: u64, gates: usize) -> Netlist {
    let mut rng = Rng::new(seed);
    let mut nl = Netlist::new();
    let mut nets = vec![nl.net("in0"), nl.net("in1")];
    for _ in 0..gates {
        let kind = KINDS[(rng.next() % KINDS.len() as u64) as usize];
        let inputs: Vec<_> = (0..kind.arity())
            .map(|_| nets[(rng.next() % nets.len() as u64) as usize])
            .collect();
        let out = nl.fresh_net();
        nl.gate(kind, &inputs, out, 1 + rng.next() % 100);
        nets.push(out);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Acyclic netlists never produce a denial, and never a GS003.
    #[test]
    fn random_dag_passes_lint(seed in 0u64..10_000, gates in 1usize..30) {
        let nl = random_dag(seed, gates);
        let report = lint(&nl);
        prop_assert!(!report.has_denials());
        prop_assert!(report
            .diagnostics()
            .iter()
            .all(|d| d.code != LintCode::CombinationalLoop));
    }

    /// A seeded inverter ring on top of a random DAG is always caught as
    /// GS003, reporting exactly the nets of the ring.
    #[test]
    fn seeded_loop_always_caught(
        seed in 0u64..10_000,
        gates in 0usize..20,
        ring in 1usize..6,
    ) {
        let mut nl = random_dag(seed, gates);
        let rnets: Vec<_> = (0..ring).map(|i| nl.net(&format!("ring{i}"))).collect();
        for i in 0..ring {
            nl.gate(GateKind::Not, &[rnets[i]], rnets[(i + 1) % ring], 10);
        }
        let report = lint(&nl);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::CombinationalLoop)
            .expect("GS003 must fire");
        prop_assert_eq!(d.elements.len(), ring, "{}", report);
    }

    /// Inserting one flip-flop anywhere in the ring breaks the
    /// combinational cycle: GS003 must no longer fire.
    #[test]
    fn dff_always_breaks_the_loop(seed in 0u64..10_000, ring in 2usize..6) {
        let mut nl = random_dag(seed, 3);
        let clk = nl.net("clk");
        let rnets: Vec<_> = (0..ring).map(|i| nl.net(&format!("ring{i}"))).collect();
        for i in 0..ring - 1 {
            nl.gate(GateKind::Not, &[rnets[i]], rnets[i + 1], 10);
        }
        nl.dff(rnets[ring - 1], clk, rnets[0], 20);
        let report = lint(&nl);
        prop_assert!(
            report
                .diagnostics()
                .iter()
                .all(|d| d.code != LintCode::CombinationalLoop),
            "{}",
            report
        );
    }
}
