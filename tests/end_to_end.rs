//! Full-stack scenarios: train → deploy → perturb, across all crates.

use pwm_perceptron::dataset::Dataset;
use pwm_perceptron::elasticity::accuracy_vs_vdd;
use pwm_perceptron::eval::{CircuitEvaluator, SwitchLevelEvaluator};
use pwm_perceptron::robustness::{switch_corner_monte_carlo, VariationSpec};
use pwm_perceptron::train::{train, TrainConfig};
use pwm_perceptron::{PwmPerceptron, Query, Reference, WeightVector};
use pwmcell::{SimQuality, Technology};

/// Train on the boolean majority task with the switch-level evaluator,
/// then verify every decision at transistor level.
#[test]
fn train_switch_level_verify_transistor_level() {
    let tech = Technology::umc65_like();
    let data = Dataset::majority(3);
    let mut p = PwmPerceptron::new(
        SwitchLevelEvaluator::new(tech.clone()),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    let report = train(&mut p, &data, &TrainConfig::default()).unwrap();
    assert_eq!(report.final_accuracy, 1.0, "majority must be learned");

    let mut verified = PwmPerceptron::new(
        CircuitEvaluator::new(tech, SimQuality::fast()),
        p.weights().clone(),
        p.reference(),
    );
    let acc = verified.accuracy(&data).unwrap();
    assert_eq!(
        acc, 1.0,
        "transistor-level deployment must agree with the trained model"
    );
}

/// A classifier trained at 2.5 V keeps working from 1.5 V to 4 V when the
/// reference is ratiometric — the paper's power-elasticity story with a
/// real trained model.
#[test]
fn trained_classifier_is_power_elastic() {
    let tech = Technology::umc65_like();
    let data = Dataset::sensor_events(120, 17);
    let (train_set, test_set) = data.split(0.7, 3);
    let mut p = PwmPerceptron::new(
        SwitchLevelEvaluator::new(tech.clone()),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    train(&mut p, &train_set, &TrainConfig::default()).unwrap();
    let nominal = p.accuracy(&test_set).unwrap();
    assert!(nominal > 0.9, "baseline accuracy {nominal}");

    let pts = accuracy_vs_vdd(
        &tech,
        p.weights(),
        p.reference(),
        &test_set,
        &[1.5, 2.0, 3.0, 4.0],
    )
    .unwrap();
    for pt in pts {
        assert!(
            pt.accuracy >= nominal - 0.05,
            "accuracy at {} V dropped to {}",
            pt.vdd,
            pt.accuracy
        );
    }
}

/// Process variation moves the adder output by only a few per cent
/// (switch-level global-corner MC over all Table II rows).
#[test]
fn variation_tolerance_across_table2() {
    let tech = Technology::umc65_like();
    for (duties, weights) in [
        ([0.70, 0.80, 0.90], [7u32, 7, 7]),
        ([0.50, 0.50, 0.50], [1, 2, 4]),
        ([0.80, 0.20, 0.50], [7, 3, 4]),
    ] {
        let query = Query::from_raw(&duties, &weights, 3).unwrap();
        let s =
            switch_corner_monte_carlo(&tech, &query, &VariationSpec::typical_65nm(), 48, 0xFEED);
        assert!(
            s.relative_std() < 0.05,
            "{duties:?}/{weights:?}: cv = {}",
            s.relative_std()
        );
    }
}

/// The digital PWM generator chain: counter-generated (quantised) duties
/// classify identically to the continuous ones for an 8-bit counter.
#[test]
fn quantised_duties_preserve_decisions() {
    use pwm_perceptron::DutyCycle;
    let weights = WeightVector::new(vec![7, 7, 7], 3).unwrap();
    let continuous = [0.7, 0.8, 0.9].map(DutyCycle::new);
    let quantised = continuous.map(|d| d.quantized(256));
    let mut p = PwmPerceptron::new(
        SwitchLevelEvaluator::paper(),
        weights,
        Reference::ratiometric(0.5),
    );
    let a = p.classify(&continuous).unwrap();
    let b = p.classify(&quantised).unwrap();
    assert_eq!(a, b);
    let va = p.forward(&continuous).unwrap().value();
    let vb = p.forward(&quantised).unwrap().value();
    assert!((va - vb).abs() < 0.01, "{va} vs {vb}");
}
