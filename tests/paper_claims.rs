//! Integration tests asserting the paper's headline claims end-to-end,
//! spanning mssim → pwmcell → pwm-perceptron → gatesim/baseline.

use pwm_perceptron::elasticity::{inverter_ratio_sweep, ratio_flatness};
use pwmcell::{
    analytic, AdderSpec, AdderTestbench, InverterTestbench, MeasureSpec, SimQuality, Technology,
};

fn tech() -> Technology {
    Technology::umc65_like()
}

/// §II: "the average voltage on its output is inversely proportional to
/// the duty cycle of the input clock" — transistor level.
#[test]
fn claim_inverse_proportionality() {
    let tb = InverterTestbench::new(&tech());
    let q = SimQuality::fast();
    let mut last = f64::INFINITY;
    for duty in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let v = tb
            .measure(&MeasureSpec::duty(duty), &q)
            .unwrap()
            .vout
            .value();
        assert!(v < last, "vout must fall as duty rises (duty {duty}: {v})");
        let ideal = analytic::inverter_vout(2.5, duty);
        assert!(
            (v - ideal).abs() < 0.12,
            "duty {duty}: {v} vs ideal {ideal}"
        );
        last = v;
    }
}

/// Fig. 5: "the values of Vout are almost the same for a wide range of
/// frequencies" — 1 MHz to 1.5 GHz at transistor level.
#[test]
fn claim_frequency_resilience() {
    let tb = InverterTestbench::new(&tech());
    let q = SimQuality::fast();
    for duty in [0.25, 0.75] {
        let vs: Vec<f64> = [1e6, 100e6, 1.5e9]
            .iter()
            .map(|&f| {
                tb.measure(
                    &MeasureSpec::duty(duty).with_frequency(mssim::units::Hertz(f)),
                    &q,
                )
                .unwrap()
                .vout
                .value()
            })
            .collect();
        let spread = vs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - vs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.2,
            "duty {duty}: vout spread {spread} over 1 MHz – 1.5 GHz ({vs:?})"
        );
    }
}

/// Fig. 7: "starting from 1–1.5 V the relationship of the Vout to Vdd
/// remains the same" (switch-level sweep + transistor-level spot check).
#[test]
fn claim_power_elasticity() {
    let t = tech();
    let pts = inverter_ratio_sweep(&t, 0.25, &[1.5, 2.0, 2.5, 3.0, 4.0, 5.0]);
    assert!(
        ratio_flatness(&pts) < 0.05,
        "ratio must be flat above 1.5 V: {pts:?}"
    );

    // Transistor-level spot check at two supplies.
    let tb = InverterTestbench::new(&t);
    let q = SimQuality::fast();
    let r = |vdd: f64| {
        let m = tb
            .measure(
                &MeasureSpec::duty(0.25).with_vdd(mssim::units::Volts(vdd)),
                &q,
            )
            .unwrap();
        m.relative_output()
    };
    assert!((r(2.0) - r(4.0)).abs() < 0.05, "{} vs {}", r(2.0), r(4.0));
}

/// And below ~1 V the ratio collapses (the devices stop conducting) —
/// the *other* half of the Fig. 7 story. This is threshold physics, so it
/// needs the transistor-level tier (the switch model deliberately has no
/// Vth and stays ratiometric at any supply).
#[test]
fn claim_collapse_below_threshold_region() {
    let tb = InverterTestbench::new(&tech());
    let q = SimQuality::fast();
    let r = |vdd: f64| {
        tb.measure(
            &MeasureSpec::duty(0.25).with_vdd(mssim::units::Volts(vdd)),
            &q,
        )
        .unwrap()
        .relative_output()
    };
    let low = r(0.5);
    let nominal = r(2.5);
    assert!(
        low < 0.5 * nominal,
        "at 0.5 V the output ratio should collapse: {low} vs {nominal}"
    );
}

/// Table II: transistor-level simulation matches Eq. 2 within a few per
/// cent of full scale, with larger relative error at small outputs (the
/// paper's observation).
#[test]
fn claim_table2_agreement() {
    let t = tech();
    let tb = AdderTestbench::paper(&t);
    let q = SimQuality::fast();
    let rows: [(&[f64; 3], &[u32; 3]); 2] = [
        (&[0.70, 0.80, 0.90], &[7, 7, 7]),
        (&[0.50, 0.50, 0.50], &[1, 2, 4]),
    ];
    for (duties, weights) in rows {
        let m = tb.measure(duties, weights, &q).unwrap();
        let theory = analytic::adder_vout(2.5, duties, weights, 3);
        assert!(
            (m.vout.value() - theory).abs() < 0.1,
            "{duties:?}/{weights:?}: sim {} vs theory {theory}",
            m.vout.value()
        );
    }
}

/// §IV: "for the 3×3 weighted adder we used only 54 transistors", and the
/// digital equivalent is far larger.
#[test]
fn claim_simplicity() {
    assert_eq!(AdderSpec::paper_3x3().transistor_count(), 54);
    let digital = baseline::DigitalPerceptron::new(baseline::BaselineSpec::matched_to_paper());
    assert!(
        digital.transistor_count() > 54 * 20,
        "digital MAC = {} transistors",
        digital.transistor_count()
    );
}

/// Fig. 8: supply power grows with input frequency.
#[test]
fn claim_power_grows_with_frequency() {
    let t = tech();
    let tb = AdderTestbench::paper(&t);
    let q = SimQuality::fast();
    let p = |f: f64| {
        tb.measure_at(
            &[0.2, 0.6, 0.8],
            &[5, 6, 7],
            mssim::units::Hertz(f),
            t.vdd,
            &q,
        )
        .unwrap()
        .supply_power
        .value()
    };
    let p100 = p(100e6);
    let p1000 = p(1000e6);
    assert!(
        p1000 > 1.3 * p100,
        "power must grow with frequency: {p100} → {p1000}"
    );
    // Magnitude: hundreds of microwatts, as in the paper.
    assert!(p100 > 50e-6 && p100 < 2e-3, "p(100MHz) = {p100}");
}
