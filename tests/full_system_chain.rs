//! The complete system at transistor level: **sensor voltages in,
//! classified decision out**, with every block a real circuit.
//!
//! ```text
//! v_sensor ──▶ PWM modulator ──▶ 3×3 weighted adder ──▶ comparator ──▶ bit
//!              (triangle +        (54 T, Fig. 3)         (8 T + divider
//!               comparator)                               reference)
//! ```
//!
//! The modulator produces quantifiably correct duty cycles from analog
//! voltages; those measured duties drive the full 62-transistor
//! perceptron. This is the paper's Fig. 1 extended one block to the left.

use mssim::units::Volts;
use pwmcell::{
    AdderSpec, ModulatorTestbench, PerceptronTestbench, PwmModulator, SimQuality, Technology,
};

/// Fast technology for debug-speed testing.
fn quick_tech() -> Technology {
    let mut t = Technology::umc65_like();
    t.cout_adder = mssim::units::Farads(500e-15);
    t.frequency = mssim::units::Hertz(50e6);
    t
}

#[test]
fn sensor_voltages_to_decision() {
    let tech = quick_tech();
    let vdd = 2.5;
    let modulator = ModulatorTestbench::new(&tech);
    let perceptron = PerceptronTestbench::new(&tech, AdderSpec::paper_3x3(), 0.5);
    let weights = [7u32, 7, 7];

    // "Bright" scene: sensor voltages near the top of the carrier span.
    let lo = PwmModulator::CARRIER_LOW * vdd;
    let hi = PwmModulator::CARRIER_HIGH * vdd;
    let span = hi - lo;
    let bright = [lo + 0.85 * span, lo + 0.8 * span, lo + 0.9 * span];
    let dark = [lo + 0.15 * span, lo + 0.2 * span, lo + 0.1 * span];

    let classify_scene = |scene: &[f64; 3]| -> bool {
        // Stage 1: modulate each sensor voltage, measuring the real duty
        // produced by the transistor-level modulator.
        let duties: Vec<f64> = scene
            .iter()
            .map(|&v| {
                let d = modulator
                    .measure_duty(v, vdd, 2e6, 3)
                    .expect("modulator converges");
                let ideal = PwmModulator::duty_for(v, vdd);
                assert!(
                    (d - ideal).abs() < 0.08,
                    "modulator: v={v:.3} → duty {d:.3} vs ideal {ideal:.3}"
                );
                d
            })
            .collect();
        // Stage 2: feed the *measured* duties into the full perceptron.
        perceptron
            .classify(&duties, &weights, Volts(vdd), &SimQuality::fast())
            .expect("perceptron converges")
    };

    assert!(classify_scene(&bright), "bright scene must fire");
    assert!(!classify_scene(&dark), "dark scene must stay quiet");
}

#[test]
fn chain_transistor_budget() {
    // One modulator per input (8 T each) + the 62-T perceptron:
    // a complete 3-input analog-in classifier in 86 transistors.
    let per_modulator = pwmcell::DiffComparator::TRANSISTORS;
    let perceptron = AdderSpec::paper_3x3().transistor_count() + per_modulator;
    let total = 3 * per_modulator + perceptron;
    assert_eq!(total, 86);
}
