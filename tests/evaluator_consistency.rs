//! Cross-tier consistency: the analytic, switch-level and transistor-level
//! evaluators must tell the same story, and the switch model must agree
//! with a direct mssim simulation of the same physics.

use pwm_perceptron::eval::{AnalyticEvaluator, CircuitEvaluator, Evaluator, SwitchLevelEvaluator};
use pwm_perceptron::{DutyCycle, WeightVector};
use pwmcell::{PwmNode, SimQuality, Technology};

fn duties(raw: &[f64]) -> Vec<DutyCycle> {
    raw.iter().map(|&d| DutyCycle::new(d)).collect()
}

#[test]
fn three_tiers_agree_on_a_grid() {
    let tech = Technology::umc65_like();
    let analytic = AnalyticEvaluator::new(tech.vdd);
    let switch = SwitchLevelEvaluator::new(tech.clone());
    let circuit = CircuitEvaluator::new(tech, SimQuality::fast());
    let cases: [(&[f64], &[u32]); 4] = [
        (&[0.7, 0.8, 0.9], &[7, 7, 7]),
        (&[0.5, 0.5, 0.5], &[1, 2, 4]),
        (&[0.3, 0.4, 0.5], &[1, 4, 2]),
        (&[0.9, 0.1, 0.5], &[7, 0, 3]),
    ];
    for (d_raw, w_raw) in cases {
        let d = duties(d_raw);
        let w = WeightVector::new(w_raw.to_vec(), 3).unwrap();
        let va = analytic.vout(&d, &w).unwrap().value();
        let vs = switch.vout(&d, &w).unwrap().value();
        let vc = circuit.vout(&d, &w).unwrap().value();
        assert!(
            (va - vs).abs() < 0.06,
            "{d_raw:?}/{w_raw:?}: analytic {va:.3} vs switch {vs:.3}"
        );
        assert!(
            (va - vc).abs() < 0.1,
            "{d_raw:?}/{w_raw:?}: analytic {va:.3} vs circuit {vc:.3}"
        );
        assert!(
            (vs - vc).abs() < 0.1,
            "{d_raw:?}/{w_raw:?}: switch {vs:.3} vs circuit {vc:.3}"
        );
    }
}

/// The switch model's PSS shortcut must agree with brute-force mssim
/// simulation of a literal resistor-switch network (independent physics
/// implementations of the same abstraction).
#[test]
fn switch_model_matches_direct_rc_simulation() {
    use mssim::prelude::*;

    let tech = Technology::umc65_like();
    let duty = 0.3;
    let freq = 10e6;
    let vdd = 2.5;
    let cout = 1e-12;
    let r_eff = tech.rout.value() + tech.ron_p().value(); // single path

    // Switch model: one cell driving high during the input's low phase.
    let node = PwmNode::inverter(&tech, Some(tech.rout.value()), cout, duty, freq, vdd);
    let pss_avg = node.steady_state_average();

    // Direct mssim: an ideal square source through R into C. To mirror
    // the inverter's inversion, drive with the complement duty. Use one
    // average resistance (the model's g_high/g_low differ slightly, so
    // allow a loose tolerance).
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    let out = ckt.node("out");
    ckt.vsource(
        "V1",
        src,
        Circuit::GND,
        Waveform::pwm(vdd, freq, 1.0 - duty),
    );
    ckt.resistor("R1", src, out, r_eff);
    ckt.capacitor("C1", out, Circuit::GND, cout);
    let period = 1.0 / freq;
    let result = Session::new(&ckt)
        .transient(&Transient::new(period / 400.0, 40.0 * period).use_initial_conditions())
        .unwrap();
    let direct_avg = result.voltage(out).steady_state_average(period, 4);

    assert!(
        (pss_avg - direct_avg).abs() < 0.05,
        "PSS {pss_avg:.4} vs direct RC sim {direct_avg:.4}"
    );
}

/// DC corner: with inputs parked at the rails, the transistor-level adder
/// must sit exactly at the conductance-weighted average that Eq. 2
/// predicts for 0 %/100 % duty cycles.
#[test]
fn dc_corner_agrees_with_eq2() {
    use mssim::prelude::*;
    let tech = Technology::umc65_like();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    let adder = pwmcell::WeightedAdder::build(
        &mut ckt,
        &tech,
        "a",
        vdd,
        &[7, 2, 1],
        pwmcell::AdderSpec::paper_3x3(),
    );
    // Input 0 high, inputs 1 & 2 low.
    for (i, lv) in [2.5, 0.0, 0.0].into_iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::dc(lv),
        );
    }
    let op = Session::new(&ckt).dc_operating_point().unwrap();
    let expect = pwmcell::analytic::adder_vout(2.5, &[1.0, 0.0, 0.0], &[7, 2, 1], 3);
    let got = op.voltage(adder.output);
    assert!(
        (got - expect).abs() < 0.05,
        "DC corner: {got:.3} vs Eq.2 {expect:.3}"
    );
}
