* Fig.2 transcoding inverter, DC=25%, 500MHz
* exported by mssim
VVDD vdd 0 DC 2.5
VVIN in 0 PULSE(0 2.5 0e0 2.0000000000000002e-11 2.0000000000000002e-11 4.8e-10 2e-9)
Minv_MP inv_drv in vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Minv_MN inv_drv in 0 0 mn_200u450 W=3.2e-7 L=1.2e-6
Cinv_Cp inv_drv 0 2e-15
Rinv_Rout inv_drv inv_out 100000
Cinv_Cout inv_out 0 1e-12
.model mn_200u450 NMOS (LEVEL=1 VTO=0.45 KP=2e-4 LAMBDA=0.02)
.model mp_80u450 PMOS (LEVEL=1 VTO=-0.45 KP=8e-5 LAMBDA=0.02)
.end
