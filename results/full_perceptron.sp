* Full Fig.1 perceptron, Table II row 1
* exported by mssim
VVDD vdd 0 DC 2.5
Mp_add_c0b0_nd_MPA p_add_c0b0_nd_y p_add_in0 vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c0b0_nd_MPB p_add_c0b0_nd_y vdd vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c0b0_nd_MNA p_add_c0b0_nd_y p_add_in0 p_add_c0b0_nd_m p_add_c0b0_nd_m mn_200u450 W=6.4e-7 L=1.2e-6
Mp_add_c0b0_nd_MNB p_add_c0b0_nd_m vdd 0 0 mn_200u450 W=6.4e-7 L=1.2e-6
Cp_add_c0b0_nd_Cp p_add_c0b0_nd_y 0 2e-15
Mp_add_c0b0_iv_MP p_add_c0b0_iv_y p_add_c0b0_nd_y vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c0b0_iv_MN p_add_c0b0_iv_y p_add_c0b0_nd_y 0 0 mn_200u450 W=3.2e-7 L=1.2e-6
Cp_add_c0b0_iv_Cp p_add_c0b0_iv_y 0 2e-15
Rp_add_R0b0 p_add_c0b0_iv_y p_add_out 100000
Mp_add_c0b1_nd_MPA p_add_c0b1_nd_y p_add_in0 vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c0b1_nd_MPB p_add_c0b1_nd_y vdd vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c0b1_nd_MNA p_add_c0b1_nd_y p_add_in0 p_add_c0b1_nd_m p_add_c0b1_nd_m mn_200u450 W=1.28e-6 L=1.2e-6
Mp_add_c0b1_nd_MNB p_add_c0b1_nd_m vdd 0 0 mn_200u450 W=1.28e-6 L=1.2e-6
Cp_add_c0b1_nd_Cp p_add_c0b1_nd_y 0 4e-15
Mp_add_c0b1_iv_MP p_add_c0b1_iv_y p_add_c0b1_nd_y vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c0b1_iv_MN p_add_c0b1_iv_y p_add_c0b1_nd_y 0 0 mn_200u450 W=6.4e-7 L=1.2e-6
Cp_add_c0b1_iv_Cp p_add_c0b1_iv_y 0 4e-15
Rp_add_R0b1 p_add_c0b1_iv_y p_add_out 50000
Mp_add_c0b2_nd_MPA p_add_c0b2_nd_y p_add_in0 vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c0b2_nd_MPB p_add_c0b2_nd_y vdd vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c0b2_nd_MNA p_add_c0b2_nd_y p_add_in0 p_add_c0b2_nd_m p_add_c0b2_nd_m mn_200u450 W=2.56e-6 L=1.2e-6
Mp_add_c0b2_nd_MNB p_add_c0b2_nd_m vdd 0 0 mn_200u450 W=2.56e-6 L=1.2e-6
Cp_add_c0b2_nd_Cp p_add_c0b2_nd_y 0 8e-15
Mp_add_c0b2_iv_MP p_add_c0b2_iv_y p_add_c0b2_nd_y vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c0b2_iv_MN p_add_c0b2_iv_y p_add_c0b2_nd_y 0 0 mn_200u450 W=1.28e-6 L=1.2e-6
Cp_add_c0b2_iv_Cp p_add_c0b2_iv_y 0 8e-15
Rp_add_R0b2 p_add_c0b2_iv_y p_add_out 25000
Mp_add_c1b0_nd_MPA p_add_c1b0_nd_y p_add_in1 vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c1b0_nd_MPB p_add_c1b0_nd_y vdd vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c1b0_nd_MNA p_add_c1b0_nd_y p_add_in1 p_add_c1b0_nd_m p_add_c1b0_nd_m mn_200u450 W=6.4e-7 L=1.2e-6
Mp_add_c1b0_nd_MNB p_add_c1b0_nd_m vdd 0 0 mn_200u450 W=6.4e-7 L=1.2e-6
Cp_add_c1b0_nd_Cp p_add_c1b0_nd_y 0 2e-15
Mp_add_c1b0_iv_MP p_add_c1b0_iv_y p_add_c1b0_nd_y vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c1b0_iv_MN p_add_c1b0_iv_y p_add_c1b0_nd_y 0 0 mn_200u450 W=3.2e-7 L=1.2e-6
Cp_add_c1b0_iv_Cp p_add_c1b0_iv_y 0 2e-15
Rp_add_R1b0 p_add_c1b0_iv_y p_add_out 100000
Mp_add_c1b1_nd_MPA p_add_c1b1_nd_y p_add_in1 vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c1b1_nd_MPB p_add_c1b1_nd_y vdd vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c1b1_nd_MNA p_add_c1b1_nd_y p_add_in1 p_add_c1b1_nd_m p_add_c1b1_nd_m mn_200u450 W=1.28e-6 L=1.2e-6
Mp_add_c1b1_nd_MNB p_add_c1b1_nd_m vdd 0 0 mn_200u450 W=1.28e-6 L=1.2e-6
Cp_add_c1b1_nd_Cp p_add_c1b1_nd_y 0 4e-15
Mp_add_c1b1_iv_MP p_add_c1b1_iv_y p_add_c1b1_nd_y vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c1b1_iv_MN p_add_c1b1_iv_y p_add_c1b1_nd_y 0 0 mn_200u450 W=6.4e-7 L=1.2e-6
Cp_add_c1b1_iv_Cp p_add_c1b1_iv_y 0 4e-15
Rp_add_R1b1 p_add_c1b1_iv_y p_add_out 50000
Mp_add_c1b2_nd_MPA p_add_c1b2_nd_y p_add_in1 vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c1b2_nd_MPB p_add_c1b2_nd_y vdd vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c1b2_nd_MNA p_add_c1b2_nd_y p_add_in1 p_add_c1b2_nd_m p_add_c1b2_nd_m mn_200u450 W=2.56e-6 L=1.2e-6
Mp_add_c1b2_nd_MNB p_add_c1b2_nd_m vdd 0 0 mn_200u450 W=2.56e-6 L=1.2e-6
Cp_add_c1b2_nd_Cp p_add_c1b2_nd_y 0 8e-15
Mp_add_c1b2_iv_MP p_add_c1b2_iv_y p_add_c1b2_nd_y vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c1b2_iv_MN p_add_c1b2_iv_y p_add_c1b2_nd_y 0 0 mn_200u450 W=1.28e-6 L=1.2e-6
Cp_add_c1b2_iv_Cp p_add_c1b2_iv_y 0 8e-15
Rp_add_R1b2 p_add_c1b2_iv_y p_add_out 25000
Mp_add_c2b0_nd_MPA p_add_c2b0_nd_y p_add_in2 vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c2b0_nd_MPB p_add_c2b0_nd_y vdd vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c2b0_nd_MNA p_add_c2b0_nd_y p_add_in2 p_add_c2b0_nd_m p_add_c2b0_nd_m mn_200u450 W=6.4e-7 L=1.2e-6
Mp_add_c2b0_nd_MNB p_add_c2b0_nd_m vdd 0 0 mn_200u450 W=6.4e-7 L=1.2e-6
Cp_add_c2b0_nd_Cp p_add_c2b0_nd_y 0 2e-15
Mp_add_c2b0_iv_MP p_add_c2b0_iv_y p_add_c2b0_nd_y vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_add_c2b0_iv_MN p_add_c2b0_iv_y p_add_c2b0_nd_y 0 0 mn_200u450 W=3.2e-7 L=1.2e-6
Cp_add_c2b0_iv_Cp p_add_c2b0_iv_y 0 2e-15
Rp_add_R2b0 p_add_c2b0_iv_y p_add_out 100000
Mp_add_c2b1_nd_MPA p_add_c2b1_nd_y p_add_in2 vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c2b1_nd_MPB p_add_c2b1_nd_y vdd vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c2b1_nd_MNA p_add_c2b1_nd_y p_add_in2 p_add_c2b1_nd_m p_add_c2b1_nd_m mn_200u450 W=1.28e-6 L=1.2e-6
Mp_add_c2b1_nd_MNB p_add_c2b1_nd_m vdd 0 0 mn_200u450 W=1.28e-6 L=1.2e-6
Cp_add_c2b1_nd_Cp p_add_c2b1_nd_y 0 4e-15
Mp_add_c2b1_iv_MP p_add_c2b1_iv_y p_add_c2b1_nd_y vdd vdd mp_80u450 W=1.73e-6 L=1.2e-6
Mp_add_c2b1_iv_MN p_add_c2b1_iv_y p_add_c2b1_nd_y 0 0 mn_200u450 W=6.4e-7 L=1.2e-6
Cp_add_c2b1_iv_Cp p_add_c2b1_iv_y 0 4e-15
Rp_add_R2b1 p_add_c2b1_iv_y p_add_out 50000
Mp_add_c2b2_nd_MPA p_add_c2b2_nd_y p_add_in2 vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c2b2_nd_MPB p_add_c2b2_nd_y vdd vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c2b2_nd_MNA p_add_c2b2_nd_y p_add_in2 p_add_c2b2_nd_m p_add_c2b2_nd_m mn_200u450 W=2.56e-6 L=1.2e-6
Mp_add_c2b2_nd_MNB p_add_c2b2_nd_m vdd 0 0 mn_200u450 W=2.56e-6 L=1.2e-6
Cp_add_c2b2_nd_Cp p_add_c2b2_nd_y 0 8e-15
Mp_add_c2b2_iv_MP p_add_c2b2_iv_y p_add_c2b2_nd_y vdd vdd mp_80u450 W=3.46e-6 L=1.2e-6
Mp_add_c2b2_iv_MN p_add_c2b2_iv_y p_add_c2b2_nd_y 0 0 mn_200u450 W=1.28e-6 L=1.2e-6
Cp_add_c2b2_iv_Cp p_add_c2b2_iv_y 0 8e-15
Rp_add_R2b2 p_add_c2b2_iv_y p_add_out 25000
Cp_add_Cout p_add_out 0 1e-11
Rp_Rrt vdd p_ref 100000
Rp_Rrb p_ref 0 100000
Cp_Cref p_ref 0 1e-13
Mp_cmp_MMir p_cmp_bias p_cmp_bias vdd vdd mp_80u450 W=6.055e-6 L=1.2e-6
Rp_cmp_Rb p_cmp_bias 0 230000
Mp_cmp_MTail p_cmp_tail p_cmp_bias vdd vdd mp_80u450 W=6.055e-6 L=1.2e-6
Mp_cmp_MPp p_cmp_dp p_add_out p_cmp_tail p_cmp_tail mp_80u450 W=8.65e-6 L=1.2e-6
Mp_cmp_MPn p_cmp_dn p_ref p_cmp_tail p_cmp_tail mp_80u450 W=8.65e-6 L=1.2e-6
Rp_cmp_Rlp p_cmp_dp 0 320000
Rp_cmp_Rln p_cmp_dn 0 320000
Mp_cmp_i1_MP p_cmp_i1_y p_cmp_dn vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_cmp_i1_MN p_cmp_i1_y p_cmp_dn 0 0 mn_200u450 W=3.2e-7 L=1.2e-6
Cp_cmp_i1_Cp p_cmp_i1_y 0 2e-15
Mp_cmp_i2_MP p_cmp_i2_y p_cmp_i1_y vdd vdd mp_80u450 W=8.65e-7 L=1.2e-6
Mp_cmp_i2_MN p_cmp_i2_y p_cmp_i1_y 0 0 mn_200u450 W=3.2e-7 L=1.2e-6
Cp_cmp_i2_Cp p_cmp_i2_y 0 2e-15
VVIN0 p_add_in0 0 PULSE(0 2.5 0e0 2.0000000000000002e-11 2.0000000000000002e-11 1.38e-9 2e-9)
VVIN1 p_add_in1 0 PULSE(0 2.5 0e0 2.0000000000000002e-11 2.0000000000000002e-11 1.5800000000000003e-9 2e-9)
VVIN2 p_add_in2 0 PULSE(0 2.5 0e0 2.0000000000000002e-11 2.0000000000000002e-11 1.7800000000000003e-9 2e-9)
.model mn_200u450 NMOS (LEVEL=1 VTO=0.45 KP=2e-4 LAMBDA=0.02)
.model mp_80u450 PMOS (LEVEL=1 VTO=-0.45 KP=8e-5 LAMBDA=0.02)
.end
