//! Umbrella crate for the PWM mixed-signal perceptron reproduction.
//!
//! This crate re-exports the workspace members so the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/` can use a
//! single dependency. Library users should depend on the individual crates
//! ([`mssim`], [`pwmcell`], [`pwm_perceptron`], [`gatesim`], [`baseline`])
//! directly.

#![forbid(unsafe_code)]

pub use baseline;
pub use gatesim;
pub use mssim;
pub use pwm_perceptron;
pub use pwmcell;
