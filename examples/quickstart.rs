//! Quickstart: build a PWM perceptron, classify, and peek under the hood.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pwm_perceptron::eval::{AnalyticEvaluator, Evaluator, SwitchLevelEvaluator};
use pwm_perceptron::{DutyCycle, PwmPerceptron, Reference, WeightVector};
use pwmcell::analytic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The temporal encoding -------------------------------------
    // Inputs are duty cycles; weights are 3-bit integers enabling the
    // binary-scaled AND cells of the paper's Fig. 3 adder.
    let weights = WeightVector::new(vec![7, 7, 7], 3)?;
    let x = [
        DutyCycle::new(0.70),
        DutyCycle::new(0.80),
        DutyCycle::new(0.90),
    ];

    // --- 2. The ideal model (paper Eq. 2) ------------------------------
    let ideal = analytic::adder_vout(2.5, &[0.7, 0.8, 0.9], &[7, 7, 7], 3);
    println!("Eq. 2 ideal output:            {ideal:.3} V (paper Table II row 1: 2.00 V)");

    // --- 3. A perceptron at two fidelity tiers -------------------------
    let mut fast = PwmPerceptron::new(
        AnalyticEvaluator::paper(),
        weights.clone(),
        Reference::ratiometric(0.5), // threshold = Vdd/2, supply-tracking
    );
    println!(
        "analytic evaluator:            {:.3} V → fires: {}",
        fast.forward(&x)?.value(),
        fast.classify(&x)?
    );

    let mut accurate = PwmPerceptron::new(
        SwitchLevelEvaluator::paper(),
        weights.clone(),
        Reference::ratiometric(0.5),
    );
    println!(
        "switch-level evaluator:        {:.3} V → fires: {}",
        accurate.forward(&x)?.value(),
        accurate.classify(&x)?
    );

    // --- 4. Power elasticity in one line --------------------------------
    // Halve the supply: the absolute output halves, but the *decision*
    // against the ratiometric reference is unchanged.
    let mut low_vdd = PwmPerceptron::new(
        SwitchLevelEvaluator::paper().with_vdd(mssim::units::Volts(1.25)),
        weights,
        Reference::ratiometric(0.5),
    );
    println!(
        "at Vdd = 1.25 V:               {:.3} V → fires: {} (same decision)",
        low_vdd.forward(&x)?.value(),
        low_vdd.classify(&x)?
    );

    // --- 5. Cost of the hardware ---------------------------------------
    println!(
        "transistors in the 3×3 adder:  {}",
        pwmcell::AdderSpec::paper_3x3().transistor_count()
    );
    let _ = SwitchLevelEvaluator::paper().vdd();
    Ok(())
}
