//! XOR with two layers of mixed-signal perceptrons.
//!
//! A single perceptron cannot compute XOR; two layers of the paper's
//! differential adder cells can — with the comparator decisions re-encoded
//! as near-rail duty cycles between layers, so every inter-layer signal
//! stays a supply-robust temporal code. The whole network keeps working
//! when the supply is halved.
//!
//! ```text
//! cargo run --release --example xor_mlp
//! ```

use mssim::units::Volts;
use pwm_perceptron::eval::SwitchLevelEvaluator;
use pwm_perceptron::layer::{ENCODE_HIGH, ENCODE_LOW};
use pwm_perceptron::{DutyCycle, Mlp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mlp = Mlp::xor();
    println!(
        "two-layer XOR network: 3 differential neurons, {} transistors\n",
        mlp.transistor_count()
    );
    println!(
        "hidden neuron 0 (OR):   {:?}",
        mlp.hidden().neurons()[0].as_slice()
    );
    println!(
        "hidden neuron 1 (NAND): {:?}",
        mlp.hidden().neurons()[1].as_slice()
    );
    println!(
        "output neuron (AND):    {:?}\n",
        mlp.output().neurons()[0].as_slice()
    );

    let logic = |b: bool| DutyCycle::new(if b { ENCODE_HIGH } else { ENCODE_LOW });

    for vdd in [2.5, 1.25] {
        let evaluator = SwitchLevelEvaluator::paper().with_vdd(Volts(vdd));
        println!("at Vdd = {vdd} V (switch-level evaluation):");
        println!("   a  b | hidden(OR,NAND) | XOR");
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let x = [logic(a), logic(b)];
            let hidden = mlp.hidden().forward(&evaluator, &x)?;
            let y = mlp.classify(&evaluator, &x)?;
            println!(
                "   {}  {} |     {:5} {:5}   | {}  {}",
                a as u8,
                b as u8,
                hidden[0],
                hidden[1],
                y as u8,
                if y == (a ^ b) { "✓" } else { "✗" }
            );
            assert_eq!(y, a ^ b, "XOR must hold at {vdd} V");
        }
        println!();
    }
    println!("the non-linearly-separable function survives a halved supply —");
    println!("every inter-layer signal is a duty cycle, so nothing depends on Vdd.");
    Ok(())
}
