//! A micro-edge sensor filter, verified down to the transistors.
//!
//! Trains a 3-input event filter with the fast switch-level evaluator,
//! then **re-verifies a handful of decisions at transistor level** (full
//! mssim transient of the 54-transistor adder) and reports the energy of
//! one decision.
//!
//! ```text
//! cargo run --release --example sensor_filter
//! ```

use mssim::units::Seconds;
use pwm_perceptron::dataset::Dataset;
use pwm_perceptron::energy::{decision_time, DecisionEnergy};
use pwm_perceptron::eval::{CircuitEvaluator, SwitchLevelEvaluator};
use pwm_perceptron::train::{train, TrainConfig};
use pwm_perceptron::{PwmPerceptron, Reference, WeightVector};
use pwmcell::{AdderTestbench, SimQuality, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::umc65_like();

    // 1. Train with the switch-level model (fast).
    let data = Dataset::sensor_events(200, 11);
    let (train_set, test_set) = data.split(0.75, 5);
    let mut p = PwmPerceptron::new(
        SwitchLevelEvaluator::new(tech.clone()),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    let report = train(&mut p, &train_set, &TrainConfig::default())?;
    println!(
        "trained: weights {} reference {:?}",
        p.weights(),
        p.reference()
    );
    println!(
        "accuracy: train {:.1}%, test {:.1}%",
        report.final_accuracy * 100.0,
        p.accuracy(&test_set)? * 100.0
    );

    // 2. Verify a few decisions at transistor level.
    let mut verified = PwmPerceptron::new(
        CircuitEvaluator::new(tech.clone(), SimQuality::fast()),
        p.weights().clone(),
        p.reference(),
    );
    let mut agree = 0;
    let check = test_set.samples().iter().take(6);
    println!("\ntransistor-level spot checks:");
    for (i, sample) in check.enumerate() {
        let fast = p.classify(&sample.duties)?;
        let slow = verified.classify(&sample.duties)?;
        let truth = sample.label;
        if fast == slow {
            agree += 1;
        }
        println!(
            "  sample {i}: switch-level {fast}, transistor-level {slow}, truth {truth} {}",
            if fast == slow {
                "✓"
            } else {
                "⚠ tier mismatch"
            }
        );
    }
    println!("tiers agree on {agree}/6 spot checks");

    // 3. Energy of one decision at transistor level.
    let tb = AdderTestbench::paper(&tech);
    let m = tb.measure(
        &[0.7, 0.5, 0.3],
        p.weights().as_slice(),
        &SimQuality::fast(),
    )?;
    let tau = tech.cout_adder.value() * (tech.rout.value() + 9e3) / 21.0;
    let t_decide = decision_time(
        Seconds(tau),
        tech.frequency.period(),
        0.01, // settle within 1 %
    );
    let budget = DecisionEnergy::new(m.supply_power, t_decide);
    println!(
        "\none decision: {:.1} µW × {:.0} ns = {:.1} pJ",
        budget.power.value() * 1e6,
        budget.decision_time.value() * 1e9,
        budget.energy.value() * 1e12
    );
    Ok(())
}
