//! A 1-D edge detector — the "image processing at the micro-edge" use
//! case from the paper's introduction.
//!
//! A differential perceptron with antisymmetric weights `[−7, 0, +7]`
//! slides over pixel triplets: it fires on rising edges (right pixel much
//! brighter than left). Pixels are encoded as duty cycles, the window
//! sum happens in the temporal domain, and the detector keeps working at
//! half supply — all with two 3×3 adders' worth of hardware.
//!
//! ```text
//! cargo run --release --example edge_detector
//! ```

use mssim::units::Volts;
use pwm_perceptron::encode::LinearEncoder;
use pwm_perceptron::eval::SwitchLevelEvaluator;
use pwm_perceptron::{DifferentialPerceptron, SignedWeightVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic scan line: dark floor with two bright objects, plus
    // sensor noise.
    let mut rng = StdRng::seed_from_u64(7);
    let mut pixels = vec![0.15f64; 40];
    for p in pixels[10..18].iter_mut() {
        *p = 0.85;
    }
    for p in pixels[28..33].iter_mut() {
        *p = 0.70;
    }
    for p in pixels.iter_mut() {
        *p = (*p + rng.gen_range(-0.04..0.04)).clamp(0.0, 1.0);
    }

    // The detector: a Sobel-like antisymmetric kernel in 3-bit weights.
    let kernel = SignedWeightVector::new(vec![-7, 0, 7], 3)?;
    let encoder = LinearEncoder::unit();
    let detect = |vdd: f64| -> Result<Vec<usize>, pwm_perceptron::CoreError> {
        let evaluator = SwitchLevelEvaluator::paper().with_vdd(Volts(vdd));
        let p = DifferentialPerceptron::new(evaluator, kernel.clone());
        let mut edges = Vec::new();
        for (i, window) in pixels.windows(3).enumerate() {
            let duties = encoder.encode_slice(window);
            // Fire only on a decisive differential (>0.15·Vdd margin
            // suppresses noise-induced micro-edges).
            let v = p.forward(&duties)?;
            if v.value() > 0.15 * vdd {
                edges.push(i + 1); // centre pixel of the window
            }
        }
        Ok(edges)
    };

    let nominal = detect(2.5)?;
    let brownout = detect(1.25)?;

    println!("scan line (40 px, two bright objects):");
    let line: String = pixels
        .iter()
        .map(|&p| if p > 0.5 { '#' } else { '.' })
        .collect();
    println!("  {line}");
    let mut marks = vec![' '; pixels.len()];
    for &e in &nominal {
        marks[e] = '^';
    }
    println!("  {}", marks.iter().collect::<String>());
    println!("rising edges at 2.50 V: {nominal:?}");
    println!("rising edges at 1.25 V: {brownout:?}");
    assert_eq!(nominal, brownout, "detection must survive the brown-out");
    println!("\nidentical detections at half supply — the differential temporal");
    println!("encoding cancels Vdd exactly (both adder halves scale together).");
    Ok(())
}
