//! The full signal chain: digital PWM generator → mixed-signal perceptron.
//!
//! The paper's conclusion proposes pairing the perceptron with a
//! power-elastic PWM generator built from a loadable modulo-N counter
//! (reference [8]). This example runs that chain: duty cycles are
//! *generated* by the gate-level counter (so they are quantised to
//! `M/2^bits`), measured from the simulated waveform, and fed into the
//! perceptron. It then shows how the counter's bit width trades duty
//! resolution against classification fidelity.
//!
//! ```text
//! cargo run --release --example kessels_pwm_chain
//! ```

use gatesim::kessels::{measure_duty, KesselsPwm};
use gatesim::Netlist;
use pwm_perceptron::eval::SwitchLevelEvaluator;
use pwm_perceptron::{DutyCycle, PwmPerceptron, Reference, WeightVector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Target (analog) duty cycles we want to encode.
    let targets = [0.70, 0.80, 0.90];
    let weights = WeightVector::new(vec![7, 7, 7], 3)?;

    for bits in [3u32, 5, 8] {
        // One generator per input channel (they share a structure).
        let mut nl = Netlist::new();
        let pwm = KesselsPwm::build(&mut nl, bits);
        println!(
            "\n{}-bit counter PWM generator: {} transistors, duty step {:.2}%",
            bits,
            nl.transistor_count(),
            100.0 / pwm.modulus() as f64
        );

        // Load the nearest threshold for each target and *measure* the
        // duty the gate-level simulation actually produces.
        let mut measured = Vec::new();
        for &t in &targets {
            let m = (t * pwm.modulus() as f64).round() as u64;
            let duty = measure_duty(&nl, &pwm, m, 2, 1_000);
            measured.push(DutyCycle::new(duty));
            println!("  target {t:.3} → M={m:>3} → generated {duty:.4}");
        }

        // Feed the generated duties into the perceptron.
        let mut p = PwmPerceptron::new(
            SwitchLevelEvaluator::paper(),
            weights.clone(),
            Reference::ratiometric(0.5),
        );
        let v = p.forward(&measured)?;
        let fired = p.classify(&measured)?;
        println!(
            "  adder output {:.3} V (ideal continuous-duty value 2.00 V) → fires: {fired}",
            v.value()
        );
    }

    println!(
        "\nCoarse counters quantise the inputs but the decision is robust; \
         8 bits reproduces the continuous case to a few millivolts."
    );
    Ok(())
}
