//! A three-class spectral classifier using winner-take-all.
//!
//! Three weighted adders share six duty-cycle inputs (think: energy in
//! six filter bands of an acoustic sensor); each adder is trained to peak
//! for one band pattern, and a comparator tree picks the winner. Because
//! every adder output is ratiometric in Vdd, the *argmax* survives supply
//! collapse — multi-class power elasticity for free.
//!
//! ```text
//! cargo run --release --example spectral_classifier
//! ```

use mssim::units::Volts;
use pwm_perceptron::eval::SwitchLevelEvaluator;
use pwm_perceptron::multiclass::{banded_dataset, train_wta, WtaClassifier};
use pwm_perceptron::WeightVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = 3;
    let dim = 6;
    let train_set = banded_dataset(150, dim, classes, 11);
    let test_set = banded_dataset(90, dim, classes, 99);

    let mut wta = WtaClassifier::new(
        SwitchLevelEvaluator::paper(),
        vec![WeightVector::zeros(dim, 3); classes],
    )?;
    let train_acc = train_wta(&mut wta, &train_set, 40, 1.0, 7)?;
    println!(
        "trained 3-class WTA bank ({} adders × {} inputs, {} transistors total)",
        classes,
        dim,
        classes * pwmcell::AdderSpec::new(dim, 3).transistor_count()
    );
    for (c, w) in wta.classes().iter().enumerate() {
        println!("  class {c} weights: {w}");
    }
    println!("train accuracy: {:.1}%", train_acc * 100.0);
    println!("test accuracy:  {:.1}%", wta.accuracy(&test_set)? * 100.0);

    // The brown-out check: re-evaluate the whole test set at 1.25 V.
    let low = WtaClassifier::new(
        SwitchLevelEvaluator::paper().with_vdd(Volts(1.25)),
        wta.classes().to_vec(),
    )?;
    let mut flips = 0;
    for (duties, _) in &test_set {
        if wta.classify(duties)? != low.classify(duties)? {
            flips += 1;
        }
    }
    println!(
        "decisions changed at half supply: {flips}/{} — the argmax is ratiometric",
        test_set.len()
    );
    assert_eq!(flips, 0);
    Ok(())
}
