//! The transcoding inverter, from netlist to Fig. 4.
//!
//! Builds the paper's Fig. 2 circuit directly on the `mssim` simulator,
//! sweeps the input duty cycle for the three load configurations, and
//! prints the transfer table — a miniature of the paper's Fig. 4 showing
//! why the 100 kΩ output resistor linearises the transfer.
//!
//! ```text
//! cargo run --release --example inverter_transcoding
//! ```

use pwmcell::{analytic, InverterTestbench, MeasureSpec, SimQuality, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::umc65_like();
    println!(
        "Fig. 2 transcoding inverter — W(N)={:.0} nm, W(P)={:.0} nm, L={:.1} µm, \
         Cout={}, f={}",
        tech.nmos.w * 1e9,
        tech.pmos.w * 1e9,
        tech.nmos.l * 1e6,
        tech.cout_inverter,
        tech.frequency
    );
    println!(
        "on-resistances at 2.5 V drive: Ron(N) = {:.0}, Ron(P) = {:.0}\n",
        tech.ron_n(),
        tech.ron_p()
    );

    let benches = [
        ("no load", InverterTestbench::without_load(&tech)),
        (
            "5 kΩ",
            InverterTestbench::with_rout(&tech, Some(mssim::units::Ohms(5e3))),
        ),
        ("100 kΩ", InverterTestbench::new(&tech)),
    ];
    let quality = SimQuality::fast();

    println!(" DC %   no load    5 kΩ    100 kΩ    ideal");
    println!(" ----   -------   ------   ------    -----");
    let mut worst = [0.0f64; 3];
    for duty_pct in (0..=100).step_by(10) {
        let duty = duty_pct as f64 / 100.0;
        let ideal = analytic::inverter_vout(tech.vdd.value(), duty);
        let mut row = [0.0f64; 3];
        for (k, (_, tb)) in benches.iter().enumerate() {
            row[k] = tb.measure(&MeasureSpec::duty(duty), &quality)?.vout.value();
            worst[k] = worst[k].max((row[k] - ideal).abs());
        }
        println!(
            " {duty_pct:>4}   {:7.3}   {:6.3}   {:6.3}    {ideal:5.3}",
            row[0], row[1], row[2]
        );
    }
    println!(
        "\nmax deviation from the ideal line: no load {:.0} mV, 5 kΩ {:.0} mV, 100 kΩ {:.0} mV",
        worst[0] * 1e3,
        worst[1] * 1e3,
        worst[2] * 1e3
    );
    println!("→ the large output resistor swamps the transistors' nonlinear Ron (paper §II).");
    Ok(())
}
