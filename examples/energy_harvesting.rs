//! Classifying through a sagging energy-harvester supply.
//!
//! A sensor-event classifier is trained once at the nominal 2.5 V, then
//! the supply is dragged through a solar harvester profile (1.2–3.8 V)
//! while the classifier keeps running. A **ratiometric** comparator
//! reference rides the supply and keeps the accuracy flat; an **absolute**
//! reference collapses — the paper's power-elasticity argument end to end.
//!
//! ```text
//! cargo run --release --example energy_harvesting
//! ```

use mssim::units::Volts;
use pwm_perceptron::dataset::Dataset;
use pwm_perceptron::elasticity::{accuracy_vs_vdd, HarvesterProfile};
use pwm_perceptron::eval::SwitchLevelEvaluator;
use pwm_perceptron::train::{train, TrainConfig};
use pwm_perceptron::{PwmPerceptron, Reference, WeightVector};
use pwmcell::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::umc65_like();

    // Train a sensor-event filter at nominal supply with the
    // switch-level (hardware-in-the-loop) evaluator.
    let data = Dataset::sensor_events(240, 7);
    let (train_set, test_set) = data.split(0.7, 99);
    let mut p = PwmPerceptron::new(
        SwitchLevelEvaluator::new(tech.clone()),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    let report = train(&mut p, &train_set, &TrainConfig::default())?;
    println!(
        "trained at 2.5 V: train {:.1}%, test {:.1}%",
        report.final_accuracy * 100.0,
        p.accuracy(&test_set)? * 100.0
    );

    // A cloudy afternoon: the harvester output swings 2.5 ± 1.3 V.
    let profile = HarvesterProfile::Solar {
        mean: 2.5,
        swing: 1.3,
        period: 60.0,
    };
    let supplies = profile.sample(60.0, 9);
    println!("\nsupply profile over one cloud cycle: {supplies:.3?}");

    let weights = p.weights().clone();
    let ratiometric = accuracy_vs_vdd(
        &tech,
        &weights,
        p.reference(), // the trained ratiometric reference
        &test_set,
        &supplies,
    )?;
    // The same weights with the reference frozen at its 2.5 V absolute
    // value — what a bandgap-referenced comparator would do.
    let frozen = p.reference().resolve(Volts(2.5));
    let absolute = accuracy_vs_vdd(
        &tech,
        &weights,
        Reference::absolute(frozen),
        &test_set,
        &supplies,
    )?;

    println!("\n  Vdd V   ratiometric   absolute-ref");
    println!("  -----   -----------   ------------");
    for (r, a) in ratiometric.iter().zip(&absolute) {
        println!(
            "  {:5.2}   {:10.1}%   {:11.1}%",
            r.vdd,
            r.accuracy * 100.0,
            a.accuracy * 100.0
        );
    }

    let worst_ratio = ratiometric
        .iter()
        .map(|p| p.accuracy)
        .fold(f64::INFINITY, f64::min);
    let worst_abs = absolute
        .iter()
        .map(|p| p.accuracy)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nworst-case accuracy: ratiometric {:.1}% vs absolute {:.1}% — \
         derive your comparator reference from the rail!",
        worst_ratio * 100.0,
        worst_abs * 100.0
    );
    Ok(())
}
